"""StateStore / TrackerContext / report plumbing tests."""

import pytest

from repro.alias import AliasGraph, Trail
from repro.core import AnalysisConfig
from repro.core.report import AnalysisResult, AnalysisStats, BugReport
from repro.ir import INT, Instruction, Move, PointerType, SourceLoc, Var, const_int
from repro.typestate import (
    BugKind,
    PossibleBug,
    StateStore,
    TrackerContext,
    TypestateManager,
    default_checkers,
)

P = PointerType(INT)


def make_context(alias_aware=True):
    trail = Trail()
    graph = AliasGraph(trail) if alias_aware else None
    store = StateStore(trail)
    reports = []
    ctx = TrackerContext(
        graph=graph,
        store=store,
        alias_aware=alias_aware,
        report_fn=reports.append,
        base_of_fn=lambda name: None,
        known_function_fn=lambda name: False,
    )
    return ctx, trail, reports


def var(name):
    return Var(name, P, source_name=name)


def test_store_get_set_roundtrip():
    ctx, trail, _ = make_context()
    a = var("a")
    ctx.set("chk", a, ("S1", None))
    assert ctx.get("chk", a) == ("S1", None)
    assert ctx.get("other", a) is None


def test_store_undo_restores_previous_value():
    ctx, trail, _ = make_context()
    a = var("a")
    ctx.set("chk", a, "first")
    mark = trail.mark()
    ctx.set("chk", a, "second")
    assert ctx.get("chk", a) == "second"
    trail.undo_to(mark)
    assert ctx.get("chk", a) == "first"


def test_aware_keys_shared_across_aliases():
    ctx, trail, _ = make_context()
    a, b = var("a"), var("b")
    ctx.graph.handle_move(b, a)
    ctx.set("chk", a, "state")
    assert ctx.get("chk", b) == "state"
    assert ctx.fanout(a) == 2


def test_na_keys_are_per_name():
    ctx, trail, _ = make_context(alias_aware=False)
    a, b = var("a"), var("b")
    ctx.set("chk", a, "state")
    assert ctx.get("chk", b) is None
    assert ctx.fanout(a) == 1
    assert ctx.alias_names(a) == ("a",)


def test_na_sync_on_move_copies_states():
    ctx, trail, _ = make_context(alias_aware=False)
    manager = TypestateManager(default_checkers())
    a, b = var("a"), var("b")
    ctx.set("npd", a, ("SN", None))
    manager.sync_on_move(ctx, b, a)
    assert ctx.get("npd", b) == ("SN", None)


def test_store_counters_track_fanout():
    ctx, trail, _ = make_context()
    a, b = var("a"), var("b")
    ctx.graph.handle_move(b, a)
    before_aware = ctx.store.aware_updates
    before_unaware = ctx.store.unaware_updates
    ctx.set("chk", a, "x")
    assert ctx.store.aware_updates == before_aware + 1
    assert ctx.store.unaware_updates == before_unaware + 2  # alias set size


def test_items_for_filters_by_checker():
    ctx, trail, _ = make_context()
    a = var("a")
    ctx.set("one", a, "v1")
    ctx.set("two", a, "v2")
    items = ctx.store.items_for("one")
    assert [value for _, value in items] == ["v1"]


def test_report_stamps_entry_function():
    ctx, trail, reports = make_context()
    ctx.entry_function = "probe"
    inst = Move(var("a"), const_int(1))
    ctx.report(PossibleBug(BugKind.NPD, "npd", "a", inst, inst, "boom"))
    assert reports[0].entry_function == "probe"


def test_possible_bug_dedup_key():
    inst1 = Move(var("a"), const_int(1))
    inst2 = Move(var("a"), const_int(2))
    bug1 = PossibleBug(BugKind.NPD, "npd", "a", inst1, inst2, "m")
    bug2 = PossibleBug(BugKind.NPD, "npd", "a", inst1, inst2, "other message")
    assert bug1.dedup_key == bug2.dedup_key
    bug3 = PossibleBug(BugKind.NPD, "npd", "a", inst2, inst1, "m")
    assert bug1.dedup_key != bug3.dedup_key


def test_bug_report_from_possible():
    src = Move(var("a"), const_int(1), SourceLoc("drv.c", 10))
    sink = Move(var("a"), const_int(2), SourceLoc("drv.c", 20))
    bug = PossibleBug(BugKind.ML, "ml", "a", src, sink, "leaks", entry_function="top")
    report = BugReport.from_possible(bug)
    assert report.location == "drv.c:20"
    assert report.source_line == 10
    rendered = report.render()
    assert "MEMORY LEAK" in rendered and "drv.c:20" in rendered


def test_analysis_result_summary_and_kind_counts():
    src = Move(var("a"), const_int(1), SourceLoc("drv.c", 1))
    reports = [
        BugReport.from_possible(PossibleBug(BugKind.NPD, "npd", "a", src, src, "x")),
        BugReport.from_possible(PossibleBug(BugKind.NPD, "npd", "b", src, src, "y")),
        BugReport.from_possible(PossibleBug(BugKind.ML, "ml", "c", src, src, "z")),
    ]
    result = AnalysisResult(reports=reports, stats=AnalysisStats())
    assert result.kind_counts()[BugKind.NPD] == 2
    assert len(result.by_kind(BugKind.ML)) == 1
    summary = result.summary()
    assert "3 bugs" in summary and "NPD=2" in summary


def test_grouped_by_source_collects_shared_root_causes():
    src1 = Move(var("a"), const_int(1), SourceLoc("drv.c", 5))
    sink1 = Move(var("a"), const_int(2), SourceLoc("drv.c", 10))
    sink2 = Move(var("a"), const_int(3), SourceLoc("drv.c", 20))
    other = Move(var("b"), const_int(4), SourceLoc("drv.c", 30))
    reports = [
        BugReport.from_possible(PossibleBug(BugKind.NPD, "npd", "a", src1, sink1, "x")),
        BugReport.from_possible(PossibleBug(BugKind.NPD, "npd", "a", src1, sink2, "y")),
        BugReport.from_possible(PossibleBug(BugKind.NPD, "npd", "b", other, other, "z")),
    ]
    result = AnalysisResult(reports=reports, stats=AnalysisStats())
    groups = result.grouped_by_source()
    assert len(groups) == 2
    assert len(groups[("drv.c", 5, "npd")]) == 2


def test_config_na_clone_keeps_other_fields():
    config = AnalysisConfig(max_paths_per_entry=7, validate_paths=False)
    clone = config.for_pata_na()
    assert clone.alias_aware is False
    assert clone.max_paths_per_entry == 7
    assert clone.validate_paths is False
    assert config.alias_aware is True  # original untouched
