"""Differential testing: mini-C → IR → interpreter vs. Python semantics.

Hypothesis generates random integer expressions and small statement
programs; each is compiled through the full frontend and executed by the
interpreter, and the result is compared against direct Python evaluation
with C semantics.  One test exercises the lexer, parser, lowering and
interpreter end to end.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.interp import Machine, run_entry
from repro.lang import compile_program


def c_div(a, b):
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a, b):
    return a - c_div(a, b) * b


# -- expression generator ----------------------------------------------------------

_leaf = st.one_of(
    st.integers(min_value=0, max_value=50).map(str),
    st.sampled_from(["a", "b"]),
)


def _expr(depth):
    if depth == 0:
        return _leaf
    sub = _expr(depth - 1)
    return st.one_of(
        _leaf,
        st.tuples(sub, st.sampled_from(["+", "-", "*"]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
        st.tuples(sub, st.sampled_from(["<", "<=", ">", ">=", "==", "!="]), sub).map(
            lambda t: f"({t[0]} {t[1]} {t[2]})"
        ),
    )


def _py_eval(expr, a, b):
    # Mini-C comparisons yield 0/1 ints; Python's yield bools — coerce.
    namespace = {"a": a, "b": b}
    value = eval(  # noqa: S307 - test-only, generated input
        expr.replace("==", "=="), {}, namespace
    )
    return int(value)


@settings(max_examples=200, deadline=None)
@given(_expr(3), st.integers(min_value=-20, max_value=20), st.integers(min_value=-20, max_value=20))
def test_expression_evaluation_matches_python(expr, a, b):
    source = f"int f(int a, int b) {{ return {expr}; }}"
    program = compile_program([("d.c", source)])
    result, fault, _ = run_entry(program, "f", [a, b])
    assert fault is None
    assert result == _py_eval(expr, a, b)


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=-5, max_value=5),
)
def test_division_matches_c_semantics(a, b, c):
    assume(b != 0)
    source = "int f(int a, int b) { return a / b + a % b; }"
    program = compile_program([("d.c", source)])
    result, fault, _ = run_entry(program, "f", [a, b])
    assert fault is None
    assert result == c_div(a, b) + c_mod(a, b)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
def test_while_loop_sum_matches_python(n, limit):
    source = """
int f(int n, int limit) {
    int s = 0;
    int i = 0;
    while (i < n) {
        s = s + i;
        if (s > limit)
            break;
        i = i + 1;
    }
    return s;
}
"""
    program = compile_program([("d.c", source)])
    result, fault, _ = run_entry(program, "f", [n, limit])
    assert fault is None
    s = i = 0
    while i < n:
        s += i
        if s > limit:
            break
        i += 1
    assert result == s


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=-9, max_value=9), min_size=1, max_size=6))
def test_array_writes_and_reads_match(values):
    writes = "\n".join(f"    buf[{i}] = {v};" for i, v in enumerate(values))
    reads = " + ".join(f"buf[{i}]" for i in range(len(values)))
    source = f"int f(void) {{ int buf[8];\n{writes}\n    return {reads}; }}"
    program = compile_program([("d.c", source)])
    result, fault, _ = run_entry(program, "f")
    assert fault is None
    assert result == sum(values)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-10, max_value=10), st.integers(min_value=-10, max_value=10))
def test_ternary_and_short_circuit_match(a, b):
    source = """
int f(int a, int b) {
    int big = (a > b) ? a : b;
    int both = (a > 0 && b > 0) ? 1 : 0;
    int either = (a > 0 || b > 0) ? 1 : 0;
    return big * 100 + both * 10 + either;
}
"""
    program = compile_program([("d.c", source)])
    result, fault, _ = run_entry(program, "f", [a, b])
    assert fault is None
    expected = max(a, b) * 100 + (10 if a > 0 and b > 0 else 0) + (1 if a > 0 or b > 0 else 0)
    assert result == expected


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=8))
def test_recursive_function_matches(n):
    source = "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }"
    program = compile_program([("d.c", source)])
    result, fault, _ = run_entry(program, "fib", [n])
    assert fault is None

    def fib(k):
        return k if k < 2 else fib(k - 1) + fib(k - 2)

    assert result == fib(n)


@settings(max_examples=80, deadline=None)
@given(_expr(3), st.integers(min_value=-10, max_value=10), st.integers(min_value=-10, max_value=10))
def test_ir_passes_preserve_expression_semantics(expr, a, b):
    """Property: optimized IR computes the same value as unoptimized."""
    from repro.ir import optimize_program

    source = f"int f(int a, int b) {{ return {expr}; }}"
    plain = compile_program([("d.c", source)])
    optimized = compile_program([("d.c", source)])
    optimize_program(optimized)
    r1, f1, _ = run_entry(plain, "f", [a, b])
    r2, f2, _ = run_entry(optimized, "f", [a, b])
    assert f1 is None and f2 is None
    assert r1 == r2


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-10, max_value=10))
def test_struct_field_roundtrip(v):
    source = """
struct box { int lo; int hi; };
int f(int v) {
    struct box b;
    b.lo = v;
    b.hi = v * 2;
    return b.hi - b.lo;
}
"""
    program = compile_program([("d.c", source)])
    result, fault, _ = run_entry(program, "f", [v])
    assert fault is None
    assert result == v
