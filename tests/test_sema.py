"""Lint / semantic-diagnostics tests."""

from repro.lang.sema import check_source


def codes(source, known=None):
    return [d.code for d in check_source(source, known_functions=known)]


def diag_for(source, code):
    return [d for d in check_source(source) if d.code == code]


def test_clean_function_has_no_diagnostics():
    source = """
int add(int a, int b) {
    int s = a + b;
    return s;
}
"""
    assert codes(source) == []


def test_call_arity_mismatch():
    source = """
static int helper(int a, int b) { return a + b; }
int f(void) { return helper(1); }
"""
    (d,) = diag_for(source, "call-arity")
    assert "helper" in d.message and d.line == 3


def test_variadic_calls_not_arity_checked():
    source = """
static int logf2(int level, ...) { return level; }
int f(void) { return logf2(1, 2, 3); }
"""
    assert "call-arity" not in codes(source)


def test_implicit_declaration_flagged_once():
    source = """
int f(void) { mystery(); mystery(); return 0; }
"""
    assert codes(source).count("implicit-decl") == 1


def test_intrinsics_not_flagged_as_implicit():
    source = "void f(int n) { char *p = kmalloc(n); kfree(p); }"
    assert "implicit-decl" not in codes(source)


def test_known_functions_parameter():
    source = "int f(void) { return external_helper(); }"
    assert "implicit-decl" in codes(source)
    assert "implicit-decl" not in codes(source, known={"external_helper"})


def test_undeclared_variable_use():
    source = "int f(void) { return ghost_value; }"
    (d,) = diag_for(source, "undeclared-var")
    assert "ghost_value" in d.message


def test_unused_local_flagged():
    source = "int f(int a) { int unused_thing = a; return a; }"
    (d,) = diag_for(source, "unused-var")
    assert "unused_thing" in d.message


def test_parameters_exempt_from_unused():
    source = "int f(int never_touched) { return 0; }"
    assert "unused-var" not in codes(source)


def test_read_through_member_counts_as_use():
    source = """
struct s { int v; };
int f(struct s *p) { struct s *q = p; return q->v; }
"""
    assert "unused-var" not in codes(source)


def test_unreachable_after_return():
    source = """
int f(int a) {
    return a;
    a = a + 1;
    a = a + 2;
}
"""
    hits = diag_for(source, "unreachable")
    assert len(hits) == 1  # one report per dead run
    assert hits[0].line == 4


def test_label_makes_code_reachable_again():
    source = """
int f(int a) {
    if (a) goto out;
    return 0;
out:
    return a;
}
"""
    assert "unreachable" not in codes(source)


def test_goto_unknown_label():
    source = "int f(void) { goto nowhere; return 0; }"
    assert "undeclared-var" in codes(source)


def test_missing_return_flagged():
    source = """
int f(int a) {
    if (a)
        return 1;
}
"""
    assert "missing-return" in codes(source)


def test_void_function_not_flagged():
    source = "void f(int a) { if (a) return; }"
    assert "missing-return" not in codes(source)


def test_if_else_both_return_ok():
    source = "int f(int a) { if (a) return 1; else return 2; }"
    assert "missing-return" not in codes(source)


def test_duplicate_definition():
    source = """
int f(void) { return 1; }
int f(void) { return 2; }
"""
    assert "duplicate-def" in codes(source)


def test_diagnostics_carry_location():
    source = "int f(void) {\n    return ghost;\n}"
    (d,) = check_source(source, "unit.c")
    assert d.filename == "unit.c" and d.line == 2
    assert "unit.c:2" in str(d)
