"""CFG utilities: predecessors, orderings, dominators, paths, call graph."""

from repro import ir
from repro.cfg import (
    CallGraph,
    back_edges,
    count_paths,
    dominates,
    dominators,
    enumerate_paths,
    immediate_dominators,
    mark_interface_functions,
    predecessors,
    reachable_blocks,
    reverse_postorder,
)
from repro.lang import compile_program, compile_source


def diamond_function():
    """entry -> (then|else) -> join -> ret."""
    func = ir.Function("d", [ir.Var("d.c", ir.INT)], ir.INT)
    b = ir.IRBuilder(func)
    entry = b.new_block("entry")
    then_b = b.new_block("then")
    else_b = b.new_block("else")
    join = b.new_block("join")
    b.position_at(entry)
    cond = b.binop("ne", func.params[0], ir.const_int(0))
    b.branch(cond, then_b, else_b)
    b.position_at(then_b)
    b.jump(join)
    b.position_at(else_b)
    b.jump(join)
    b.position_at(join)
    b.ret(ir.const_int(0))
    return func, entry, then_b, else_b, join


def test_predecessors_of_join():
    func, entry, then_b, else_b, join = diamond_function()
    preds = predecessors(func)
    assert set(preds[join]) == {then_b, else_b}
    assert preds[entry] == []


def test_reverse_postorder_entry_first_join_last():
    func, entry, _, _, join = diamond_function()
    order = reverse_postorder(func)
    assert order[0] is entry and order[-1] is join


def test_reachable_blocks_excludes_orphans():
    func, *_ = diamond_function()
    orphan = func.add_block("orphan")
    orphan.set_terminator(ir.Ret(ir.const_int(1)))
    assert orphan not in reachable_blocks(func)


def test_back_edges_detect_loop():
    module = compile_source("int f(int n) { int s = 0; while (n > 0) n = n - 1; return s; }")
    func = module.functions["f"]
    edges = back_edges(func)
    assert len(edges) == 1
    source, target = next(iter(edges))
    assert "while.cond" in target.name


def test_diamond_has_no_back_edges():
    func, *_ = diamond_function()
    assert back_edges(func) == set()


def test_immediate_dominators_diamond():
    func, entry, then_b, else_b, join = diamond_function()
    idom = immediate_dominators(func)
    assert idom[entry] is None
    assert idom[then_b] is entry and idom[else_b] is entry
    assert idom[join] is entry


def test_dominator_sets_and_query():
    func, entry, then_b, _, join = diamond_function()
    doms = dominators(func)
    assert dominates(doms, entry, join)
    assert not dominates(doms, then_b, join)
    assert dominates(doms, join, join)


def test_enumerate_paths_diamond_yields_two():
    func, *_ = diamond_function()
    assert count_paths(func) == 2


def test_enumerate_paths_loop_unrolled_once():
    module = compile_source("int f(int n) { int s = 0; while (n > 0) s = s + 1; return s; }")
    func = module.functions["f"]
    paths = list(enumerate_paths(func))
    # Zero-iteration path and single-iteration path (unroll once).
    assert 1 <= len(paths) <= 3


def test_enumerate_paths_respects_budget():
    source = "int f(int a) { " + " ".join(f"if (a == {i}) a = a + 1;" for i in range(12)) + " return a; }"
    func = compile_source(source).functions["f"]
    assert count_paths(func, max_paths=10) == 10


def test_path_steps_record_branch_direction():
    func, *_ = diamond_function()
    for path in enumerate_paths(func):
        assert path.steps[0].branch_taken in (True, False)


def _two_file_program():
    return compile_program([
        ("a.c", "int helper(int x) { return x + 1; }\nint top(int x) { return helper(x); }"),
        ("b.c", "static int reg_probe(int x) { return helper(x); }\n"
                "struct ops { int (*probe)(int x); };\n"
                "static struct ops o = { .probe = reg_probe };"),
    ])


def test_callgraph_edges_cross_module():
    program = _two_file_program()
    cg = CallGraph(program)
    assert "helper" in cg.callees_of("top")
    assert "top" in cg.callers_of("helper")
    assert "reg_probe" in cg.callers_of("helper")


def test_entry_functions_are_callerless_or_interface():
    program = _two_file_program()
    cg = CallGraph(program)
    entries = {f.name for f in cg.entry_functions()}
    assert "top" in entries        # no caller
    assert "reg_probe" in entries  # interface registration
    assert "helper" not in entries


def test_mark_interface_functions_counts():
    program = _two_file_program()
    count = mark_interface_functions(program)
    assert count == 1
    assert program.lookup("reg_probe").is_interface


def test_recursive_functions_detected():
    program = compile_program([
        ("r.c",
         "int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }\n"
         "int even(int n) { if (n == 0) return 1; return odd(n - 1); }\n"
         "int odd(int n) { if (n == 0) return 0; return even(n - 1); }\n"
         "int plain(int n) { return n; }"),
    ])
    cg = CallGraph(program)
    rec = cg.recursive_functions()
    assert "fact" in rec
    assert {"even", "odd"} <= rec
    assert "plain" not in rec


def test_transitive_callees():
    program = _two_file_program()
    cg = CallGraph(program)
    assert "helper" in cg.transitive_callees("top")
