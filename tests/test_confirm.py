"""Dynamic confirmation tests: static reports reproduced at runtime."""

import random

import pytest

from repro import PATA
from repro.corpus import ZEPHYR, generate, reachable_truth
from repro.corpus.patterns import BUG_PATTERNS, COMMON_DECLS
from repro.interp import DynamicConfirmer
from repro.lang import compile_program
from repro.typestate import BugKind


def confirmations_for(source):
    program = compile_program([("t.c", source)])
    result = PATA.with_all_checkers().analyze(program)
    confirmer = DynamicConfirmer(program)
    return result, confirmer.confirm_all(result.reports)


def test_npd_report_confirmed_with_null_witness():
    result, confirmations = confirmations_for(
        "struct s { int v; };\n"
        "int f(struct s *p) { if (!p) { return p->v; } return 0; }"
    )
    (c,) = confirmations
    assert c.confirmed
    assert "null" in c.witness
    assert c.fault is not None and c.fault.kind is BugKind.NPD


def test_uva_report_confirmed():
    result, confirmations = confirmations_for(
        "int f(int c) { int x; if (c > 3) x = 1; return x; }"
    )
    uva = [c for c in confirmations if c.report.kind is BugKind.UVA]
    assert uva and uva[0].confirmed


def test_ml_report_confirmed_via_leak_scan():
    result, confirmations = confirmations_for(
        "int f(int n, int bad) {\n"
        "    char *p = malloc(n);\n"
        "    if (!p) return -1;\n"
        "    if (bad) return -2;\n"
        "    free(p);\n"
        "    return 0;\n"
        "}"
    )
    ml = [c for c in confirmations if c.report.kind is BugKind.ML]
    assert ml and ml[0].confirmed


def test_dbz_report_confirmed():
    result, confirmations = confirmations_for(
        "static int count(int m) { if (m == 0) return 0; return m; }\n"
        "int f(int total, int m) { int c = count(m); return total / c; }"
    )
    dbz = [c for c in confirmations if c.report.kind is BugKind.DIV_BY_ZERO]
    assert dbz and dbz[0].confirmed


def test_aiu_report_confirmed():
    result, confirmations = confirmations_for(
        "static int table[8];\n"
        "static int find(int k) { if (k > 7) return -1; return k; }\n"
        "int f(int k) { int idx = find(k); return table[idx]; }"
    )
    aiu = [c for c in confirmations if c.report.kind is BugKind.ARRAY_UNDERFLOW]
    assert aiu and aiu[0].confirmed


def test_unconfirmable_when_entry_missing():
    program = compile_program([("t.c", "int f(int *p) { if (!p) return *p; return 0; }")])
    result = PATA().analyze(program)
    report = result.reports[0]
    report.entry_function = "ghost"
    confirmer = DynamicConfirmer(program)
    assert not confirmer.confirm(report).confirmed


def test_run_budget_respected():
    source = "struct s { int v; };\nint f(struct s *a, struct s *b, struct s *c, struct s *d) { if (!a) return a->v; return 0; }"
    program = compile_program([("t.c", source)])
    result = PATA().analyze(program)
    confirmer = DynamicConfirmer(program, max_runs=5)
    confirmation = confirmer.confirm(result.reports[0])
    assert confirmation.runs <= 5


@pytest.mark.slow
def test_most_corpus_reports_confirm_dynamically():
    """The end-to-end soundness check: on a corpus, the large majority of
    PATA's *real* (ground-truth-matching) reports reproduce at runtime."""
    corpus = generate(ZEPHYR)
    program = compile_program(corpus.compiled_sources())
    result = PATA.with_all_checkers().analyze(program)
    real_reports = [
        r for r in result.reports
        if any(g.covers(r.kind, r.sink_file, r.sink_line) for g in corpus.ground_truth)
    ]
    assert real_reports
    confirmer = DynamicConfirmer(program)
    confirmed = sum(1 for c in confirmer.confirm_all(real_reports) if c.confirmed)
    assert confirmed / len(real_reports) >= 0.6
