"""End-to-end user journeys through the CLI, exactly as documented."""

import json
import subprocess
import sys

import pytest

from repro.cli import main


def test_generate_then_check_round_trip(tmp_path, capsys):
    """`repro-pata corpus --out DIR` then `repro-pata check DIR/**.c`:
    every bug the checker flags in the written tree must be locatable,
    and the ground-truth file must account for the real ones."""
    code = main(["corpus", "--os", "tencentos", "--scale", "0.5", "--out", str(tmp_path)])
    assert code == 0
    capsys.readouterr()

    truth = json.loads((tmp_path / "ground_truth.json").read_text())
    files = sorted(str(p) for p in tmp_path.rglob("*.c"))
    assert files

    code = main(["check", "--all-checkers", "--json", *files])
    payload = json.loads(capsys.readouterr().out)
    assert code in (0, 1)

    primary = {e["kind"]: 0 for e in truth}
    by_loc = {}
    for entry in truth:
        by_loc.setdefault((entry["kind"], entry["path"]), []).append(entry)

    real = 0
    for bug in payload["bugs"]:
        # The CLI saw absolute paths; ground truth stores corpus-relative.
        rel = bug["file"][len(str(tmp_path)) + 1:]
        candidates = by_loc.get((bug["kind"], rel), [])
        if any(e["line_start"] <= bug["line"] <= e["line_end"] for e in candidates):
            real += 1
    assert real >= 1
    # Recall sanity: at least half of the compiled-in primary-kind truth
    # is rediscovered from the on-disk tree alone.
    findable = [e for e in truth if e["pattern"] != "npd_easy_uncompiled"]
    assert real >= len(findable) // 2


def test_check_confirm_json_fields(tmp_path, capsys):
    path = tmp_path / "drv.c"
    path.write_text(
        "struct s { int v; };\n"
        "int f(struct s *p) { if (!p) { return p->v; } return 0; }\n"
    )
    code = main(["check", "--json", "--confirm", str(path)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    (bug,) = payload["bugs"]
    assert bug["confirmed"] is True
    assert "null" in bug["witness"]


def test_module_invocation_works():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "--version"],
        capture_output=True, text=True,
    )
    assert proc.returncode == 0
    assert "repro" in proc.stdout


def test_na_flag_changes_verdicts(tmp_path, capsys):
    """The README's Fig. 3 walkthrough via the CLI: default finds the
    alias bug, --na does not."""
    path = tmp_path / "cfg.c"
    path.write_text("""
struct srv { int frnd; };
struct model { struct srv *user_data; };
static void send_status(struct model *m) {
    struct srv *cfg = m->user_data;
    int x = cfg->frnd;
}
static void friend_set(struct model *m) {
    struct srv *cfg = m->user_data;
    if (!cfg) { goto send; }
    cfg->frnd = 1;
send:
    send_status(m);
}
struct ops { void (*set)(struct model *m); };
static struct ops o = { .set = friend_set };
""")
    assert main(["check", str(path)]) == 1
    capsys.readouterr()
    assert main(["check", "--na", str(path)]) == 0
