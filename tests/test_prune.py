"""Checker-relevance pre-analysis (P1.5) tests.

Three layers of coverage:

* unit tests of the event scan / summary fixpoint / pruning decisions;
* checker metadata: every shipped checker declares its event kinds
  (the pre-analysis shuts itself off otherwise);
* differential suite: with identical configs, pruned and unpruned runs
  must produce byte-identical reports on every corpus — across checker
  sets, ``optimize_ir`` on/off, and worker counts.
"""

import dataclasses
import json

import pytest

from repro import PATA, AnalysisConfig
from repro.cli import main as cli_main
from repro.core import InformationCollector, PathExplorer
from repro.corpus import PROFILES_BY_NAME, generate
from repro.lang import compile_program
from repro.presolve import (
    EventKind,
    EventSummaryIndex,
    RelevancePreAnalysis,
    ScanContext,
)
from repro.typestate import default_checkers
from repro.typestate.checkers import PairedAPIChecker, all_checkers, checkers_from_spec


def _ctx(collector):
    return ScanContext(
        may_return_negative=collector.may_return_negative,
        may_return_zero=collector.may_return_zero,
    )


# ---------------------------------------------------------------------------
# Event scan + summary fixpoint
# ---------------------------------------------------------------------------

SCAN_SOURCE = """
struct s { int v; };
static int do_alloc(struct s *out) {
    struct s *p = malloc(8);
    if (!p) { return -1; }
    p->v = 1;
    return 0;
}
int entry_alloc(struct s *o) { return do_alloc(o); }
int entry_pure(int a, int b) {
    int c = a + b;
    return c * 2;
}
int entry_deref(struct s *p) {
    if (!p) { return p->v; }
    return 0;
}
"""


def _index_for(source):
    program = compile_program([("scan.c", source)])
    collector = InformationCollector(program)
    return EventSummaryIndex(program, scan_ctx=_ctx(collector)), program


def test_direct_scan_finds_instruction_events():
    index, _ = _index_for(SCAN_SOURCE)
    direct = index.direct_events("entry_deref")
    assert direct & EventKind.DEREF
    assert direct & EventKind.BRANCH_NULL
    assert not (direct & EventKind.ALLOC_HEAP)


def test_pure_arithmetic_has_no_checker_triggers():
    index, _ = _index_for(SCAN_SOURCE)
    direct = index.direct_events("entry_pure")
    for kind in (EventKind.DEREF, EventKind.ALLOC_HEAP, EventKind.FREE,
                 EventKind.ASSIGN_NULL, EventKind.DECL_LOCAL, EventKind.LOCK):
        assert not (direct & kind)


def test_region_events_close_over_callees():
    index, _ = _index_for(SCAN_SOURCE)
    # entry_alloc never allocates directly; its callee does.
    assert not (index.direct_events("entry_alloc") & EventKind.ALLOC_HEAP)
    assert index.region_events("entry_alloc") & EventKind.ALLOC_HEAP
    assert index.region_events("entry_alloc") & EventKind.DEREF  # p->v store path


def test_deep_call_chain_summaries_reach_fixpoint():
    chain = "\n".join(
        f"int f{i}(int *p) {{ return f{i + 1}(p); }}" for i in range(8)
    ) + "\nint f8(int *p) { return *p; }"
    index, _ = _index_for(chain)
    assert index.region_events("f0") & EventKind.DEREF
    assert not (index.direct_events("f0") & EventKind.DEREF)


INDIRECT_SOURCE = """
struct s { int v; };
static int handler(struct s *p) { struct s *q = malloc(8); return 0; }
struct ops { int (*h)(struct s *p); };
static struct ops o = { .h = handler };
int dispatch(struct ops *ops, struct s *p) {
    return ops->h(p);
}
"""


def test_indirect_pool_only_with_resolution_enabled():
    program = compile_program([("ind.c", INDIRECT_SOURCE)])
    collector = InformationCollector(program)
    off = EventSummaryIndex(program, scan_ctx=_ctx(collector))
    on = EventSummaryIndex(
        program, scan_ctx=_ctx(collector), resolve_function_pointers=True
    )
    assert off.indirect_pool == EventKind.NONE
    assert on.indirect_pool & EventKind.ALLOC_HEAP
    # With resolution, dispatch's region includes the registered target's.
    assert on.region_events("dispatch") & EventKind.ALLOC_HEAP


# ---------------------------------------------------------------------------
# Checker metadata (every shipped checker declares its kinds)
# ---------------------------------------------------------------------------


def _shipped_checkers():
    checkers = checkers_from_spec("default") + checkers_from_spec("all")
    checkers.append(PairedAPIChecker())
    return checkers


@pytest.mark.parametrize(
    "checker", _shipped_checkers(), ids=lambda c: type(c).__name__
)
def test_every_shipped_checker_declares_event_kinds(checker):
    assert checker.relevant_events != EventKind.NONE
    assert checker.trigger_events != EventKind.NONE
    assert checker.sink_events != EventKind.NONE
    # Declared triggers/sinks are part of the relevant set.
    assert checker.relevant_events & checker.trigger_events
    assert checker.relevant_events & checker.sink_events


def test_undeclared_checker_disables_both_layers():
    class OpaqueChecker:
        name = "opaque"
        trigger_events = EventKind.NONE
        sink_events = EventKind.NONE

    program = compile_program([("scan.c", SCAN_SOURCE)])
    collector = InformationCollector(program)
    relevance = RelevancePreAnalysis(
        program, default_checkers() + [OpaqueChecker()], _ctx(collector)
    )
    assert not relevance.supported
    entries = collector.entry_functions()
    kept, skipped = relevance.partition_entries(entries)
    assert [f.name for f in kept] == [f.name for f in entries]
    assert skipped == []
    assert relevance.dead_blocks(entries[0]) == frozenset()


# ---------------------------------------------------------------------------
# Entry pruning
# ---------------------------------------------------------------------------


def test_irrelevant_entries_skipped_and_rows_preserved():
    program = compile_program([("scan.c", SCAN_SOURCE)])
    on = PATA(config=AnalysisConfig(prune=True)).analyze(program)
    off = PATA(config=AnalysisConfig(prune=False)).analyze(program)
    assert [r.render() for r in on.reports] == [r.render() for r in off.reports]
    assert on.stats.entries_skipped >= 1
    rows = {e.name: e for e in on.stats.per_entry}
    assert rows["entry_pure"].skipped
    assert rows["entry_pure"].paths == 0
    assert not rows["entry_deref"].skipped
    # per_entry order matches the unpruned run's entry order.
    assert [e.name for e in on.stats.per_entry] == [e.name for e in off.stats.per_entry]


def test_entry_relevance_requires_trigger_and_sink():
    # A deref with no possible null source arms nothing: DEREF (NPD sink)
    # without ASSIGN_NULL/BRANCH_NULL (NPD triggers) is irrelevant.
    source = """
struct s { int v; };
int reads_field(struct s *p) { return p->v; }
"""
    program = compile_program([("onlysink.c", source)])
    collector = InformationCollector(program)
    relevance = RelevancePreAnalysis(program, default_checkers(), _ctx(collector))
    entry = collector.entry_functions()[0]
    assert not relevance.is_entry_relevant(entry)


# ---------------------------------------------------------------------------
# Block pruning
# ---------------------------------------------------------------------------

BRANCHY_SOURCE = """
struct s { int v; };
int branchy(struct s *p, int mode) {
    if (!p) { return -1; }
    if (mode == 1) {
        int acc = 0;
        acc = acc + mode;
        acc = acc * 2;
        return acc;
    }
    if (mode == 2) {
        int acc2 = 0;
        acc2 = acc2 + 7;
        return acc2;
    }
    return p->v;
}
"""


def test_dead_blocks_prune_paths_without_losing_reports():
    program = compile_program([("branchy.c", BRANCHY_SOURCE)])
    collector = InformationCollector(program)
    relevance = RelevancePreAnalysis(program, default_checkers(), _ctx(collector))
    entry = collector.entry_functions()[0]
    assert relevance.is_entry_relevant(entry)

    on = PATA(config=AnalysisConfig(prune=True)).analyze(program)
    off = PATA(config=AnalysisConfig(prune=False)).analyze(program)
    assert [r.render() for r in on.reports] == [r.render() for r in off.reports]
    assert on.stats.paths_pruned > 0 or on.stats.blocks_pruned > 0


def test_ml_armed_entries_keep_all_ret_reaching_blocks():
    # The leak sweep's sink is the Ret terminator, so an ML-armed entry
    # must not prune any block that reaches a return.
    source = """
int leaky(int a) {
    int *p = malloc(8);
    if (a) { return 1; }
    return 0;
}
"""
    program = compile_program([("leak.c", source)])
    collector = InformationCollector(program)
    relevance = RelevancePreAnalysis(program, default_checkers(), _ctx(collector))
    entry = collector.entry_functions()[0]
    assert relevance.dead_blocks(entry) == frozenset()
    on = PATA(config=AnalysisConfig(prune=True)).analyze(program)
    off = PATA(config=AnalysisConfig(prune=False)).analyze(program)
    assert [r.render() for r in on.reports] == [r.render() for r in off.reports]
    assert len(on.reports) >= 1  # the leak is still found


# ---------------------------------------------------------------------------
# Differential suite: pruned vs unpruned reports byte-identical
# ---------------------------------------------------------------------------


def _fingerprint(result):
    """Reports rendered byte-for-byte (the preservation contract)."""
    return [r.render() for r in result.reports]


def _stats_fingerprint(stats):
    """Stats minus timings and the pruning counters themselves (those
    legitimately differ between pruned and unpruned runs)."""
    data = dataclasses.asdict(stats)
    for key in list(data):
        if key.endswith("_seconds"):
            data[key] = 0
    for key in ("workers_used", "batches_dispatched", "entries_skipped",
                "blocks_pruned", "paths_pruned", "explored_paths",
                "executed_steps", "typestates_aware", "typestates_unaware"):
        data[key] = 0
    data["per_entry"] = None
    return data


@pytest.mark.parametrize("os_name,scale", [("zephyr", 0.4), ("riot", 0.4)])
@pytest.mark.parametrize("optimize_ir", [False, True])
def test_differential_prune_vs_no_prune_on_corpus(os_name, scale, optimize_ir):
    corpus = generate(PROFILES_BY_NAME[os_name].scaled(scale))
    program_sources = corpus.compiled_sources()
    on = PATA(config=AnalysisConfig(prune=True, optimize_ir=optimize_ir))
    off = PATA(config=AnalysisConfig(prune=False, optimize_ir=optimize_ir))
    r_on = on.analyze(compile_program(program_sources))
    r_off = off.analyze(compile_program(program_sources))
    assert _fingerprint(r_on) == _fingerprint(r_off)
    assert _stats_fingerprint(r_on.stats) == _stats_fingerprint(r_off.stats)
    # The point of the phase: strictly less exploration, never more.
    assert r_on.stats.explored_paths <= r_off.stats.explored_paths
    assert r_on.stats.entries_skipped > 0


@pytest.mark.slow
@pytest.mark.parametrize("os_name,scale", [("linux", 0.3), ("tencentos", 0.3)])
def test_differential_all_checkers_on_corpus(os_name, scale):
    corpus = generate(PROFILES_BY_NAME[os_name].scaled(scale))
    program_sources = corpus.compiled_sources()
    r_on = PATA.with_all_checkers(
        config=AnalysisConfig(prune=True)
    ).analyze(compile_program(program_sources))
    r_off = PATA.with_all_checkers(
        config=AnalysisConfig(prune=False)
    ).analyze(compile_program(program_sources))
    assert _fingerprint(r_on) == _fingerprint(r_off)
    assert _stats_fingerprint(r_on.stats) == _stats_fingerprint(r_off.stats)
    assert r_on.stats.explored_paths <= r_off.stats.explored_paths


@pytest.mark.slow
def test_prune_composes_with_worker_sharding():
    """Entry pruning happens before sharding and workers rebuild their
    own pre-analysis; both must agree with the sequential pruned run."""
    corpus = generate(PROFILES_BY_NAME["zephyr"].scaled(0.6))
    program_sources = corpus.compiled_sources()
    seq = PATA(config=AnalysisConfig(prune=True, workers=1)).analyze(
        compile_program(program_sources)
    )
    par = PATA(config=AnalysisConfig(prune=True, workers=4)).analyze(
        compile_program(program_sources)
    )
    unpruned = PATA(config=AnalysisConfig(prune=False, workers=1)).analyze(
        compile_program(program_sources)
    )
    assert par.stats.workers_used > 1
    assert _fingerprint(seq) == _fingerprint(par) == _fingerprint(unpruned)
    # Worker-side pruning counters must match the sequential run exactly.
    seq_rows = [(e.name, e.paths, e.paths_pruned, e.blocks_pruned, e.skipped)
                for e in seq.stats.per_entry]
    par_rows = [(e.name, e.paths, e.paths_pruned, e.blocks_pruned, e.skipped)
                for e in par.stats.per_entry]
    assert seq_rows == par_rows


def test_differential_with_function_pointer_resolution():
    program_sources = [("ind.c", INDIRECT_SOURCE), ("scan.c", SCAN_SOURCE)]
    cfg_on = AnalysisConfig(prune=True, resolve_function_pointers=True)
    cfg_off = AnalysisConfig(prune=False, resolve_function_pointers=True)
    r_on = PATA(config=cfg_on).analyze(compile_program(program_sources))
    r_off = PATA(config=cfg_off).analyze(compile_program(program_sources))
    assert _fingerprint(r_on) == _fingerprint(r_off)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def test_cli_reports_prune_stats_and_escape_hatch(tmp_path, capsys):
    target = tmp_path / "scan.c"
    target.write_text(SCAN_SOURCE)

    cli_main(["check", str(target), "--json", "--stats"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["entries_skipped"] >= 1
    skipped_rows = [e for e in payload["stats"]["per_entry"] if e["skipped"]]
    assert any(e["entry"] == "entry_pure" for e in skipped_rows)

    cli_main(["check", str(target), "--json", "--stats", "--no-prune"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["stats"]["entries_skipped"] == 0
    assert all(not e["skipped"] for e in payload["stats"]["per_entry"])


def test_cli_stats_table_marks_skipped_entries(tmp_path, capsys):
    target = tmp_path / "scan.c"
    target.write_text(SCAN_SOURCE)
    cli_main(["check", str(target), "--stats"])
    out = capsys.readouterr().out
    assert "pruned" in out
    assert "skipped" in out
