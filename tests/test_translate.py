"""Path-to-constraints translation tests (Table 3, Definitions 4/5)."""

from repro.ir import (
    BinOp,
    Branch,
    Const,
    Gep,
    INT,
    Load,
    Malloc,
    Move,
    PointerType,
    Store,
    Var,
    VOID_PTR,
    const_int,
)
from repro.smt import solve, translate_trace

P = PointerType(INT)


def v(name, ty=INT):
    return Var(name, ty, source_name=name)


def _branch_on(cmp_dst, then_name="t", else_name="e"):
    class _B:  # tiny stand-in blocks for Branch targets
        def __init__(self, name):
            self.name = name

    return Branch(cmp_dst, _B(then_name), _B(else_name))


def test_const_move_emits_equality():
    trace = [("inst", Move(v("a"), const_int(4)))]
    t = translate_trace(trace)
    assert len(t.atoms) == 1
    assert solve(t.atoms).is_sat


def test_var_move_emits_no_constraint_when_aware():
    trace = [("inst", Move(v("a"), v("b")))]
    t = translate_trace(trace)
    assert t.atoms == []
    assert t.aware_constraints == 0
    assert t.unaware_constraints >= 1


def test_na_translation_emits_move_equalities():
    trace = [("inst", Move(v("a"), v("b")))]
    t = translate_trace(trace, alias_aware=False)
    assert len(t.atoms) == 1


def test_branch_constraint_from_comparison():
    cmp_dst = v("%t1")
    a, b = v("a"), v("b")
    cmp = BinOp(cmp_dst, "lt", a, b)
    branch = _branch_on(cmp_dst)
    trace = [("inst", cmp), ("branch", branch, True), ("inst", Move(a, const_int(5)))]
    t = translate_trace(trace)
    sol = solve(t.atoms)
    assert sol.is_sat


def test_branch_negated_when_not_taken():
    cmp_dst = v("%t1")
    a = v("a")
    cmp = BinOp(cmp_dst, "lt", a, const_int(0))
    branch = _branch_on(cmp_dst)
    # a < 0 NOT taken  =>  a >= 0; then a == -5 contradicts.
    trace = [
        ("inst", Move(a, const_int(-5))),
        ("inst", cmp),
        ("branch", branch, False),
    ]
    t = translate_trace(trace)
    assert solve(t.atoms).is_unsat


def test_fig9_contradiction_detected_alias_aware():
    """p->f = 0 on the q==NULL path, then t=p and t->f != 0: UNSAT."""
    p, q, t = v("p", P), v("q", P), v("t", P)
    gp, gt = v("%g1", P), v("%g2", P)
    cmp1, cmp2 = v("%c1"), v("%c2")
    ld = v("%ld1")
    cmp_q = BinOp(cmp1, "eq", q, Const(0, VOID_PTR))
    gep_p = Gep(gp, p, "f")
    store0 = Store(gp, const_int(0))
    move_t = Move(t, p)
    gep_t = Gep(gt, t, "f")
    load_f = Load(ld, gt)
    cmp_f = BinOp(cmp2, "ne", ld, const_int(0))
    trace = [
        ("inst", cmp_q),
        ("branch", _branch_on(cmp1), True),
        ("inst", gep_p),
        ("inst", store0),
        ("inst", move_t),
        ("inst", gep_t),
        ("inst", load_f),
        ("inst", cmp_f),
        ("branch", _branch_on(cmp2), True),
    ]
    t_res = translate_trace(trace)
    assert solve(t_res.atoms).is_unsat


def test_fig9_not_detected_without_aliasing():
    """The same trace under the NA translation stays (wrongly) feasible:
    t->f and p->f get distinct symbols — exactly Fig. 9(b)."""
    p, q, t = v("p", P), v("q", P), v("t", P)
    gp, gt = v("%g1", P), v("%g2", P)
    cmp1, cmp2 = v("%c1"), v("%c2")
    ld = v("%ld1")
    trace = [
        ("inst", BinOp(cmp1, "eq", q, Const(0, VOID_PTR))),
        ("branch", _branch_on(cmp1), True),
        ("inst", Gep(gp, p, "f")),
        ("inst", Store(gp, const_int(0))),
        ("inst", Move(t, p)),
        ("inst", Gep(gt, t, "f")),
        ("inst", Load(ld, gt)),
        ("inst", BinOp(cmp2, "ne", ld, const_int(0))),
        ("branch", _branch_on(cmp2), True),
    ]
    t_res = translate_trace(trace, alias_aware=False)
    assert solve(t_res.atoms).feasible


def test_aware_constraints_fewer_than_unaware():
    a, b, c = v("a", P), v("b", P), v("c", P)
    trace = [
        ("inst", Move(a, b)),
        ("param", c, a),
        ("retval", b, c),
        ("inst", Move(a, const_int(3))),
    ]
    t = translate_trace(trace)
    assert t.aware_constraints < t.unaware_constraints


def test_strong_update_gets_fresh_symbol():
    a = v("a")
    trace = [
        ("inst", Move(a, const_int(1))),
        ("inst", Move(a, const_int(2))),
    ]
    t = translate_trace(trace)
    # Both constraints must be simultaneously satisfiable (SSA-style).
    assert solve(t.atoms).is_sat


def test_repeated_branch_is_havocked():
    cmp_dst = v("%t1")
    i = v("i")
    cmp = BinOp(cmp_dst, "lt", i, const_int(4))
    branch = _branch_on(cmp_dst)
    trace = [
        ("inst", Move(i, const_int(0))),
        ("inst", cmp),
        ("branch", branch, True),   # first: 0 < 4 ok
        ("branch", branch, False),  # loop exit re-encounter: dropped
    ]
    t = translate_trace(trace)
    assert solve(t.atoms).is_sat  # would be UNSAT if both were emitted


def test_extra_requirement_appended():
    idx = v("idx")
    trace = [("inst", Move(idx, const_int(3)))]
    t = translate_trace(trace, extra_requirement=("lt", "idx", 0))
    assert solve(t.atoms).is_unsat  # idx==3 contradicts idx<0


def test_extra_requirement_on_unseen_var_is_noop():
    trace = [("inst", Move(v("a"), const_int(1)))]
    t = translate_trace(trace, extra_requirement=("lt", "ghost", 0))
    assert solve(t.atoms).is_sat


def test_malloc_may_fail_unconstrained():
    heap = v("%h1", P)
    cmp_dst = v("%c1")
    m = Malloc(heap, const_int(8))
    cmp = BinOp(cmp_dst, "eq", heap, Const(0, VOID_PTR))
    trace = [("inst", m), ("inst", cmp), ("branch", _branch_on(cmp_dst), True)]
    t = translate_trace(trace)
    assert solve(t.atoms).is_sat  # NULL return is possible


def test_nonfailing_alloc_is_nonnull():
    heap = v("%h1", P)
    cmp_dst = v("%c1")
    m = Malloc(heap, const_int(8), may_fail=False)
    cmp = BinOp(cmp_dst, "eq", heap, Const(0, VOID_PTR))
    trace = [("inst", m), ("inst", cmp), ("branch", _branch_on(cmp_dst), True)]
    t = translate_trace(trace)
    assert solve(t.atoms).is_unsat
