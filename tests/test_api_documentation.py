"""Documentation quality gates: every public item carries a docstring,
and the public API surface stays importable as advertised."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.ir", "repro.lang", "repro.cfg", "repro.alias",
    "repro.typestate", "repro.typestate.checkers", "repro.smt",
    "repro.core", "repro.pointsto", "repro.vfg", "repro.baselines",
    "repro.corpus", "repro.evaluation", "repro.interp",
]


def _walk_modules():
    for name in PACKAGES:
        module = importlib.import_module(name)
        yield module
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                yield importlib.import_module(f"{name}.{info.name}")


def test_every_module_has_docstring():
    for module in _walk_modules():
        assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


def test_every_public_class_has_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if obj.__module__ != module.__name__:
                continue  # re-export
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"classes without docstrings: {missing}"


def test_every_public_function_has_docstring():
    missing = []
    for module in _walk_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if obj.__module__ != module.__name__:
                continue
            if not (obj.__doc__ and obj.__doc__.strip()):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"functions without docstrings: {missing}"


def test_dunder_all_entries_resolve():
    for module in _walk_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            assert hasattr(module, name), f"{module.__name__}.__all__ lists missing {name!r}"


def test_top_level_api_shape():
    for name in ("PATA", "AnalysisConfig", "AnalysisResult", "BugReport",
                 "compile_program", "compile_source", "BugKind",
                 "all_checkers", "default_checkers", "__version__"):
        assert hasattr(repro, name)
