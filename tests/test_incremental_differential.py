"""Warm-start differential suite (the incremental cache's soundness bar).

For every checker spec, a corpus analyzed **cold** (empty cache),
**warm** (fully populated cache), and **mixed** (half the cache objects
deleted, so cached and freshly explored entries interleave) must produce
byte-identical reports — and the deterministic stats totals must agree
— at workers 1 and workers 4.  The mixed leg is the sharp edge: it
exercises outcome rehydration, per-entry dedup reconciliation, and
cross-entry race matching over a blend of cached and fresh SharedAccess
tuples.
"""

import dataclasses

import pytest

from repro import PATA, AnalysisConfig
from repro.corpus import PROFILES_BY_NAME, generate
from repro.incremental import compile_with_cache, open_store
from repro.lang import compile_program

SPECS = ["default", "all", "npd,uva", "race", "taint,npd"]

_DETERMINISTIC_TOTALS = (
    "explored_paths", "executed_steps", "typestates_aware",
    "typestates_unaware", "dropped_repeated_bugs", "dropped_false_bugs",
    "validated_paths", "budget_exhausted_entries", "entries_skipped",
    "blocks_pruned", "paths_pruned", "shared_accesses", "race_pairs_matched",
)


@pytest.fixture(scope="module")
def corpus_sources():
    profile = PROFILES_BY_NAME["zephyr"].scaled(0.25)
    return generate(profile).compiled_sources()


def _run(sources, spec, workers, cache_dir=None):
    config = AnalysisConfig(workers=workers, cache_dir=cache_dir,
                            cache_mode="rw" if cache_dir else "off")
    pata = PATA(config=config, checker_spec=spec)
    if config.cache_active():
        store = open_store(cache_dir, "rw")
        program = compile_with_cache(sources, store)
        if store is not None:
            store.commit()
        return pata.analyze(program)
    return pata.analyze(compile_program(sources))


def _text(result):
    return "\n\n".join(r.render() for r in result.reports)


def _delete_half(cache_dir):
    import pathlib

    objects = sorted(pathlib.Path(cache_dir).rglob("*.bin"))
    assert objects, "differential mixed leg needs a populated cache"
    for path in objects[::2]:
        path.unlink()


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("spec", SPECS)
def test_cold_warm_mixed_reports_identical(corpus_sources, tmp_path, spec, workers):
    cache = str(tmp_path / f"cache-{spec.replace(',', '_')}-{workers}")
    baseline = _run(corpus_sources, spec, workers)
    cold = _run(corpus_sources, spec, workers, cache)
    warm = _run(corpus_sources, spec, workers, cache)
    _delete_half(cache)
    mixed = _run(corpus_sources, spec, workers, cache)

    expected = _text(baseline)
    assert _text(cold) == expected
    assert _text(warm) == expected
    assert _text(mixed) == expected

    assert warm.stats.entries_reanalyzed == 0
    assert warm.stats.entries_cached > 0
    # The mixed run blends cached and freshly explored entries.
    assert mixed.stats.entries_cached + mixed.stats.entries_reanalyzed > 0

    for run in (cold, warm, mixed):
        for name in _DETERMINISTIC_TOTALS:
            assert getattr(run.stats, name) == getattr(baseline.stats, name), (
                f"{name} diverged under spec={spec} workers={workers}"
            )


def test_warm_cache_crosses_worker_counts(corpus_sources, tmp_path):
    """A cache written by a sequential run must warm a parallel run and
    vice versa — summaries are keyed on content, never on sharding."""
    cache = str(tmp_path / "cache")
    baseline = _run(corpus_sources, "all", 1)
    cold_seq = _run(corpus_sources, "all", 1, cache)
    warm_par = _run(corpus_sources, "all", 4, cache)
    assert _text(warm_par) == _text(cold_seq) == _text(baseline)
    assert warm_par.stats.entries_reanalyzed == 0

    other = str(tmp_path / "cache-par")
    cold_par = _run(corpus_sources, "all", 4, other)
    warm_seq = _run(corpus_sources, "all", 1, other)
    assert _text(warm_seq) == _text(cold_par) == _text(baseline)
    assert warm_seq.stats.entries_reanalyzed == 0


def test_edited_function_differential(corpus_sources, tmp_path):
    """After editing one source file, the warm run must equal a from-
    scratch run of the edited program, re-analyzing only a subset."""
    cache = str(tmp_path / "cache")
    cold = _run(corpus_sources, "all", 1, cache)
    total = cold.stats.entries_reanalyzed
    name, text = corpus_sources[1]
    edited = list(corpus_sources)
    edited[1] = (name, text.replace("return 0;", "return 0 + 0;", 1))
    baseline = _run(edited, "all", 1)
    warm = _run(edited, "all", 1, cache)
    assert _text(warm) == _text(baseline)
    assert warm.stats.entries_reanalyzed < total
