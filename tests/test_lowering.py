"""Mini-C → IR lowering tests: the instruction shapes PATA consumes."""

import pytest

from repro import ir
from repro.errors import SemaError
from repro.lang import compile_source


def lower(source, filename="t.c"):
    module = compile_source(source, filename)
    ir.assert_valid(module)
    return module


def insts_of(module, func_name):
    return list(module.functions[func_name].instructions())


def kinds(module, func_name):
    return [type(i).__name__ for i in insts_of(module, func_name)]


def test_scalar_assignment_is_move():
    module = lower("void f(int a) { int b = a; }")
    moves = [i for i in insts_of(module, "f") if isinstance(i, ir.Move)]
    assert any(m.dst.source_name == "b" for m in moves)


def test_uninitialized_scalar_emits_decl_local():
    module = lower("void f(void) { int x; }")
    assert "DeclLocal" in kinds(module, "f")


def test_field_read_is_gep_then_load():
    module = lower("struct s { int f; }; int g(struct s *p) { return p->f; }")
    names = kinds(module, "g")
    gep_index = names.index("Gep")
    assert names[gep_index + 1] == "Load"
    gep = insts_of(module, "g")[gep_index]
    assert gep.field == "f"


def test_field_write_is_gep_then_store():
    module = lower("struct s { int f; }; void g(struct s *p) { p->f = 3; }")
    names = kinds(module, "g")
    assert "Gep" in names and "Store" in names


def test_deref_read_and_write():
    module = lower("void f(int *p, int v) { int a = *p; *p = v; }")
    names = kinds(module, "f")
    assert "Load" in names and "Store" in names


def test_address_taken_local_gets_slot():
    module = lower("void f(void) { int x; int *p = &x; *p = 1; }")
    names = kinds(module, "f")
    assert "Alloc" in names  # x lives in memory because &x exists


def test_struct_local_gets_slot_and_field_geps():
    module = lower("struct s { int a; }; int f(void) { struct s v; v.a = 1; return v.a; }")
    names = kinds(module, "f")
    assert names.count("Gep") >= 2 and "Alloc" in names


def test_array_constant_index_label():
    module = lower("int f(void) { int arr[4]; arr[2] = 5; return arr[2]; }")
    geps = [i for i in insts_of(module, "f") if isinstance(i, ir.Gep)]
    assert all(g.field == "[2]" for g in geps)


def test_array_nonconstant_indexes_get_distinct_labels():
    # The §5.2 array-insensitivity: arr[i+1] and arr[j] have different
    # access-path labels even if j == i+1.
    module = lower("int f(int i) { int arr[4]; int j = i + 1; arr[j] = 1; return arr[i + 1]; }")
    geps = [i for i in insts_of(module, "f") if isinstance(i, ir.Gep)]
    labels = {g.field for g in geps}
    assert len(labels) == 2


def test_branch_condition_lowered_to_comparison():
    module = lower("int f(int *p) { if (!p) return 1; return 0; }")
    cmps = [i for i in insts_of(module, "f") if isinstance(i, ir.BinOp) and i.is_comparison]
    assert len(cmps) == 1
    cmp = cmps[0]
    # "!p" lowers to a null comparison (eq with swapped arms or ne).
    assert cmp.op in ("eq", "ne")
    assert ir.is_null_const(cmp.rhs)


def test_pointer_truthiness_compares_against_null():
    module = lower("int f(int *p) { if (p) return 1; return 0; }")
    cmp = next(i for i in insts_of(module, "f") if isinstance(i, ir.BinOp))
    assert cmp.op == "ne" and ir.is_null_const(cmp.rhs)


def test_short_circuit_and_produces_two_branches():
    module = lower("int f(int a, int b) { if (a && b) return 1; return 0; }")
    func = module.functions["f"]
    branches = [b.terminator for b in func.blocks if isinstance(b.terminator, ir.Branch)]
    assert len(branches) == 2


def test_logical_or_in_value_context():
    module = lower("int f(int a, int b) { int c = a || b; return c; }")
    func = module.functions["f"]
    assert any("$sc" in (i.dst.name if hasattr(i, "dst") and i.dst else "") for i in func.instructions() if isinstance(i, ir.Move))


def test_while_loop_structure():
    module = lower("int f(int n) { int s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }")
    func = module.functions["f"]
    block_names = [b.name for b in func.blocks]
    assert any("while.cond" in n for n in block_names)
    assert any("while.body" in n for n in block_names)


def test_for_loop_has_step_block():
    module = lower("int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }")
    names = [b.name for b in module.functions["f"].blocks]
    assert any("for.step" in n for n in names)


def test_goto_to_forward_label():
    module = lower("int f(int a) { if (a) goto out; a = 2; out: return a; }")
    names = [b.name for b in module.functions["f"].blocks]
    assert any("label.out" in n for n in names)


def test_switch_dispatch_chain():
    module = lower(
        "int f(int t) { int r; switch (t) { case 1: r = 1; break; default: r = 0; break; } return r; }"
    )
    func = module.functions["f"]
    cmps = [i for i in func.instructions() if isinstance(i, ir.BinOp) and i.op == "eq"]
    assert len(cmps) >= 1


def test_switch_fallthrough():
    module = lower(
        "int f(int t) { int r = 0; switch (t) { case 1: r = 1; case 2: r = r + 10; break; } return r; }"
    )
    func = module.functions["f"]
    case1 = next(b for b in func.blocks if b.name.startswith("case.1"))
    assert isinstance(case1.terminator, ir.Jump)
    assert case1.terminator.target.name.startswith("case.2")


def test_malloc_intrinsic():
    module = lower("void f(int n) { char *p = malloc(n); }")
    mallocs = [i for i in insts_of(module, "f") if isinstance(i, ir.Malloc)]
    assert len(mallocs) == 1 and mallocs[0].may_fail and not mallocs[0].zeroed


def test_kzalloc_is_zeroing():
    module = lower("void f(int n) { char *p = kzalloc(n); }")
    (m,) = [i for i in insts_of(module, "f") if isinstance(i, ir.Malloc)]
    assert m.zeroed


def test_free_intrinsic():
    module = lower("void f(char *p) { kfree(p); }")
    assert any(isinstance(i, ir.Free) for i in insts_of(module, "f"))


def test_memset_intrinsic():
    module = lower("void f(char *p, int n) { memset(p, 0, n); }")
    assert any(isinstance(i, ir.MemSet) for i in insts_of(module, "f"))


def test_lock_unlock_intrinsics():
    module = lower("struct s { int lock; }; void f(struct s *p) { spin_lock(&p->lock); spin_unlock(&p->lock); }")
    locks = [i for i in insts_of(module, "f") if isinstance(i, ir.LockOp)]
    assert [l.acquire for l in locks] == [True, False]


def test_unknown_call_is_plain_call():
    module = lower("int f(int x) { return mystery(x); }")
    calls = [i for i in insts_of(module, "f") if isinstance(i, ir.Call)]
    assert calls and calls[0].callee == "mystery"


def test_interface_registration_detected():
    module = lower(
        "struct dev { int x; };\n"
        "static int my_probe(struct dev *d) { return 0; }\n"
        "struct drv { int (*probe)(struct dev *d); };\n"
        "static struct drv driver = { .probe = my_probe };"
    )
    assert module.functions["my_probe"].is_interface
    assert module.registrations[0].function == "my_probe"


def test_function_pointer_call_is_indirect():
    module = lower(
        "struct ops { int (*run)(int v); };\n"
        "int f(struct ops *o) { return o->run(3); }"
    )
    assert any(isinstance(i, ir.CallIndirect) for i in insts_of(module, "f"))


def test_global_scalar_read_write():
    module = lower("int counter; void f(void) { counter = counter + 1; }")
    assert "@counter" in module.globals
    moves = [i for i in insts_of(module, "f") if isinstance(i, ir.Move)]
    assert any(m.dst.name == "@counter" for m in moves)


def test_global_struct_accessed_through_address():
    module = lower("struct s { int f; }; static struct s g; int r(void) { return g.f; }")
    geps = [i for i in insts_of(module, "r") if isinstance(i, ir.Gep)]
    assert geps and geps[0].base.name == "@g"


def test_global_pointer_assignment_is_move():
    module = lower(
        "struct s { int f; }; struct s *head;\n"
        "void push(struct s *n) { head = n; }"
    )
    moves = [i for i in insts_of(module, "push") if isinstance(i, ir.Move)]
    assert any(m.dst.name == "@head" and isinstance(m.src, ir.Var) for m in moves)


def test_null_assignment_typed_as_pointer():
    module = lower("void f(void) { char *p = NULL; }")
    move = next(i for i in insts_of(module, "f") if isinstance(i, ir.Move))
    assert ir.is_null_const(move.src)


def test_return_value_lowered():
    module = lower("int f(void) { return 42; }")
    term = module.functions["f"].entry.terminator
    assert isinstance(term, ir.Ret) and term.value.value == 42


def test_implicit_void_return_added():
    module = lower("void f(int a) { if (a) { g(); } }")
    for block in module.functions["f"].blocks:
        assert block.is_terminated


def test_ternary_value():
    module = lower("int f(int a) { return a ? 10 : 20; }")
    func = module.functions["f"]
    assert len(func.blocks) >= 4  # cond, then, else, end


def test_increment_updates_and_returns():
    module = lower("int f(int a) { int b = a++; return a + b; }")
    adds = [i for i in insts_of(module, "f") if isinstance(i, ir.BinOp) and i.op == "add"]
    assert len(adds) >= 2


def test_address_of_unknown_variable_raises_sema_error():
    with pytest.raises(SemaError):
        compile_source("int f(void) { return *(&undefined_var); }")


def test_address_of_register_variable_handled_by_prepass():
    # &x forces x into a slot even though x is scalar.
    module = lower("int f(void) { int x = 1; int *p = &x; return *p; }")
    assert any(isinstance(i, ir.Alloc) for i in insts_of(module, "f"))


def test_enum_constants_resolve():
    module = lower("enum mode { OFF, ON = 7 }; int f(void) { return ON; }")
    term = module.functions["f"].entry.terminator
    assert term.value.value == 7


def test_sizeof_struct_estimates():
    module = lower("struct s { int a; int b; }; int f(void) { return sizeof(struct s); }")
    term = module.functions["f"].entry.terminator
    assert term.value.value == 16


def test_source_lines_preserved_in_locs():
    module = lower("int f(int *p) {\n    return *p;\n}\n", "locs.c")
    load = next(i for i in insts_of(module, "f") if isinstance(i, ir.Load))
    assert load.loc.filename == "locs.c" and load.loc.line == 2
