"""Parallel determinism for every checker-spec string.

``workers=1`` and ``workers=4`` must produce byte-identical reports for
every form :func:`~repro.typestate.checkers.checkers_from_spec` accepts —
single names, aliases, and comma lists including the taint checker.
Workers rebuild their checker sets from the spec string, so any
instance-level state the rebuild gets wrong (e.g. the taint checker's
spec-dependent trigger mask) shows up here as a report mismatch.
"""

import pytest

from repro import PATA, AnalysisConfig
from repro.corpus import PROFILES_BY_NAME, RACELAB, TAINTLAB, generate
from repro.lang import compile_program
from repro.typestate import BugKind, CHECKER_NAMES

SPECS = list(CHECKER_NAMES) + [
    "default", "all", "default,taint", "all,taint", "default,race", "all,taint,race",
]


def _mixed_program():
    """Taint- and race-heavy corpora plus a slice of the mixed-kind
    tencentos corpus, so every checker in every spec has material to
    fire on — including P2.5's cross-entry shared-access matching."""
    sources = []
    sources.extend(generate(TAINTLAB).compiled_sources())
    sources.extend(generate(RACELAB).compiled_sources())
    tencentos = PROFILES_BY_NAME["tencentos"].scaled(0.35)
    sources.extend(generate(tencentos).compiled_sources())
    return compile_program(sources)


@pytest.fixture(scope="module")
def mixed_program():
    return _mixed_program()


def _render(result):
    return [r.render() for r in result.reports]


@pytest.mark.parametrize("spec", SPECS)
def test_workers_1_vs_4_byte_identical(mixed_program, spec):
    sequential = PATA(
        checker_spec=spec, config=AnalysisConfig(workers=1)
    ).analyze(mixed_program)
    parallel = PATA(
        checker_spec=spec, config=AnalysisConfig(workers=4)
    ).analyze(mixed_program)
    assert parallel.stats.workers_used > 1
    assert _render(sequential) == _render(parallel)
    assert sequential.stats.explored_paths == parallel.stats.explored_paths
    assert sequential.stats.entries_skipped == parallel.stats.entries_skipped


def test_race_cross_entry_matching_deterministic(mixed_program):
    """P2.5 pairs accesses recorded by *different* workers: the merged
    access stream, the matched pairs, and the final reports must not
    depend on which process explored which entry."""
    sequential = PATA(
        checker_spec="race", config=AnalysisConfig(workers=1)
    ).analyze(mixed_program)
    parallel = PATA(
        checker_spec="race", config=AnalysisConfig(workers=4)
    ).analyze(mixed_program)
    race_reports = [r for r in sequential.reports if r.kind is BugKind.RACE]
    assert race_reports, "differential is vacuous without race findings"
    # Every report pairs two entries (the cross-entry contract).
    assert all(" vs " in r.entry_function for r in race_reports)
    assert _render(sequential) == _render(parallel)
    assert sequential.stats.shared_accesses == parallel.stats.shared_accesses
    assert sequential.stats.race_pairs_matched == parallel.stats.race_pairs_matched


def test_taint_spec_reports_survive_the_union_spec(mixed_program):
    """Sanity: 'all,taint' finds at least every taint report the solo
    'taint' run finds (checker sets compose, they don't interfere)."""
    solo = PATA(checker_spec="taint").analyze(mixed_program)
    union = PATA(checker_spec="all,taint").analyze(mixed_program)
    solo_rendered = set(_render(solo))
    union_rendered = set(_render(union))
    assert solo_rendered <= union_rendered
