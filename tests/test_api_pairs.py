"""Paired-API checker tests (the §7 API-rule-checking client)."""

from repro.core import AnalysisConfig, BugFilter, InformationCollector, PathExplorer
from repro.lang import compile_program
from repro.typestate import PairedAPIChecker


def run(source, **checker_kwargs):
    program = compile_program([("drv.c", source)])
    collector = InformationCollector(program)
    explorer = PathExplorer(program, AnalysisConfig(), [PairedAPIChecker(**checker_kwargs)])
    for entry in collector.entry_functions():
        explorer.explore(entry)
    return BugFilter().run(explorer.possible_bugs).reports


ENTRY_REG = """
struct drv {{ int (*p)(struct device *d, int flag); }};
static struct drv reg = {{ .p = {fn} }};
"""


def wrap(body, fn="probe"):
    return "struct device { int id; };\n" + body + ENTRY_REG.format(fn=fn)


def test_balanced_pair_clean():
    reports = run(wrap("""
int probe(struct device *dev, int flag) {
    request_irq(dev);
    free_irq(dev);
    return 0;
}
"""))
    assert reports == []


def test_unreleased_on_error_path():
    reports = run(wrap("""
int probe(struct device *dev, int flag) {
    request_irq(dev);
    if (flag < 0)
        return -1;
    free_irq(dev);
    return 0;
}
"""))
    assert len(reports) == 1
    assert "never released" in reports[0].message


def test_release_through_alias_is_seen():
    """The release goes through a different variable — alias awareness."""
    reports = run(wrap("""
int probe(struct device *dev, int flag) {
    struct device *handle = dev;
    request_irq(handle);
    free_irq(dev);
    return 0;
}
"""))
    assert reports == []


def test_double_acquire_reported():
    reports = run(wrap("""
int probe(struct device *dev, int flag) {
    request_irq(dev);
    if (flag)
        request_irq(dev);
    free_irq(dev);
    return 0;
}
"""))
    assert any("acquired twice" in r.message for r in reports)


def test_double_release_reported():
    reports = run(wrap("""
int probe(struct device *dev, int flag) {
    request_irq(dev);
    free_irq(dev);
    if (flag)
        free_irq(dev);
    return 0;
}
"""))
    assert any("released twice" in r.message for r in reports)


def test_handle_passed_onward_suppresses_unreleased():
    """The handle escapes into another external call that may release it:
    conservative silence."""
    reports = run(wrap("""
int probe(struct device *dev, int flag) {
    request_irq(dev);
    register_cleanup(dev);
    return 0;
}
"""))
    assert reports == []


def test_custom_api_table():
    reports = run(
        wrap("""
int probe(struct device *dev, int flag) {
    grab_widget(dev);
    if (flag)
        return -1;
    drop_widget(dev);
    return 0;
}
"""),
        acquire_apis={"grab_widget": 0},
        release_apis={"drop_widget": 0},
    )
    assert len(reports) == 1


def test_first_release_from_unknown_state_trusted():
    reports = run(wrap("""
int probe(struct device *dev, int flag) {
    free_irq(dev);
    return 0;
}
"""))
    assert reports == []


def test_infeasible_unreleased_path_filtered():
    """The error path is contradictory (flag>0 and flag<0): stage 2 drops
    the unreleased report."""
    reports = run(wrap("""
int probe(struct device *dev, int flag) {
    request_irq(dev);
    if (flag > 0) {
        if (flag < 0)
            return -1;
    }
    free_irq(dev);
    return 0;
}
"""))
    assert reports == []
