"""Interval domain unit tests."""

from repro.smt import Interval, NEG_INF, POS_INF
from repro.smt.intervals import apply_rel


def test_default_interval_is_top():
    iv = Interval()
    assert iv.lo == NEG_INF and iv.hi == POS_INF
    assert not iv.empty and iv.singleton is None


def test_tighten_monotone():
    iv = Interval()
    assert iv.tighten_lo(0)
    assert not iv.tighten_lo(-5)  # weaker bound: no change
    assert iv.tighten_hi(10)
    assert not iv.tighten_hi(11)
    assert iv.lo == 0 and iv.hi == 10


def test_empty_after_crossing_bounds():
    iv = Interval()
    iv.tighten_lo(5)
    iv.tighten_hi(3)
    assert iv.empty
    assert iv.width() == 0


def test_singleton_detection():
    iv = Interval(4, 4)
    assert iv.singleton == 4
    assert iv.contains(4) and not iv.contains(5)


def test_apply_rel_eq():
    iv = Interval()
    apply_rel(iv, "eq", 7)
    assert iv.singleton == 7


def test_apply_rel_strict_bounds():
    iv = Interval()
    apply_rel(iv, "lt", 5)
    apply_rel(iv, "gt", 1)
    assert (iv.lo, iv.hi) == (2, 4)


def test_apply_rel_inclusive_bounds():
    iv = Interval()
    apply_rel(iv, "le", 5)
    apply_rel(iv, "ge", 1)
    assert (iv.lo, iv.hi) == (1, 5)


def test_apply_rel_ne_trims_edges_only():
    iv = Interval(0, 3)
    assert apply_rel(iv, "ne", 0)
    assert iv.lo == 1
    assert not apply_rel(iv, "ne", 2)  # interior hole: unrepresentable
    assert apply_rel(iv, "ne", 3)
    assert (iv.lo, iv.hi) == (1, 2)


def test_width_counts_integers():
    assert Interval(2, 5).width() == 4


def test_copy_is_independent():
    iv = Interval(0, 5)
    clone = iv.copy()
    clone.tighten_lo(3)
    assert iv.lo == 0


def test_str_renders_infinities():
    assert "inf" in str(Interval())
    assert str(Interval(1, 2)) == "[1, 2]"
