"""IR construction, verification and printing tests."""

import pytest

from repro import ir
from repro.errors import IRError


def build_simple_function():
    func = ir.Function("f", [ir.Var("f.x", ir.INT, source_name="x")], ir.INT)
    builder = ir.IRBuilder(func)
    entry = builder.new_block("entry")
    builder.position_at(entry)
    t = builder.binop("add", func.params[0], ir.const_int(1))
    builder.ret(t)
    return func


def test_builder_produces_terminated_blocks():
    func = build_simple_function()
    assert func.entry.is_terminated
    assert ir.verify_function(func) == []


def test_temps_are_function_qualified():
    func = build_simple_function()
    (inst,) = func.entry.instructions
    assert inst.dst.name.startswith("%f.")


def test_append_after_terminator_raises():
    func = build_simple_function()
    builder = ir.IRBuilder(func)
    builder.position_at(func.entry)
    with pytest.raises(IRError):
        builder.move(ir.Var("f.y", ir.INT), ir.const_int(2))


def test_verifier_flags_missing_terminator():
    func = ir.Function("g", [], ir.VOID)
    func.add_block("entry")
    problems = ir.verify_function(func)
    assert any("lacks a terminator" in p for p in problems)


def test_verifier_flags_foreign_branch_target():
    func_a = ir.Function("a", [], ir.VOID)
    func_b = ir.Function("b", [], ir.VOID)
    block_a = func_a.add_block("entry")
    block_b = func_b.add_block("entry")
    block_a.set_terminator(ir.Jump(block_b))
    problems = ir.verify_function(func_a)
    assert any("foreign block" in p for p in problems)


def test_verifier_flags_double_defined_temp():
    func = ir.Function("h", [], ir.VOID)
    block = func.add_block("entry")
    temp = ir.Var("%h.t1", ir.INT)
    block.append(ir.Move(temp, ir.const_int(1)))
    block.append(ir.Move(temp, ir.const_int(2)))
    block.set_terminator(ir.Ret())
    problems = ir.verify_function(func)
    assert any("defined more than once" in p for p in problems)


def test_source_vars_may_be_redefined():
    func = ir.Function("h", [], ir.VOID)
    block = func.add_block("entry")
    var = ir.Var("h.x", ir.INT, source_name="x")
    block.append(ir.Move(var, ir.const_int(1)))
    block.append(ir.Move(var, ir.const_int(2)))
    block.set_terminator(ir.Ret())
    assert ir.verify_function(func) == []


def test_block_names_deduplicated():
    func = ir.Function("f", [], ir.VOID)
    b1 = func.add_block("loop")
    b2 = func.add_block("loop")
    assert b1.name != b2.name


def test_module_duplicate_definition_rejected():
    module = ir.Module("m")

    def make_def():
        func = ir.Function("f", [], ir.VOID)
        builder = ir.IRBuilder(func)
        builder.position_at(builder.new_block("entry"))
        builder.ret()
        return func

    module.add_function(make_def())
    with pytest.raises(IRError):
        module.add_function(make_def())


def test_declaration_then_definition_ok():
    module = ir.Module("m")
    module.add_function(ir.Function("f", [], ir.VOID))  # declaration
    definition = ir.Function("f", [], ir.VOID)
    builder = ir.IRBuilder(definition)
    builder.position_at(builder.new_block("entry"))
    builder.ret()
    module.add_function(definition)
    assert not module.functions["f"].is_declaration


def test_program_lookup_across_modules():
    m1, m2 = ir.Module("a.c"), ir.Module("b.c")
    func = ir.Function("shared", [], ir.VOID)
    builder = ir.IRBuilder(func)
    builder.position_at(builder.new_block("entry"))
    builder.ret()
    m1.add_function(ir.Function("shared", [], ir.VOID))
    m2.add_function(func)
    program = ir.Program([m1, m2])
    assert program.lookup("shared") is func
    assert program.lookup("missing") is None


def test_registration_marks_interface():
    module = ir.Module("m")
    func = ir.Function("probe_fn", [], ir.INT)
    builder = ir.IRBuilder(func)
    builder.position_at(builder.new_block("entry"))
    builder.ret(ir.const_int(0))
    module.add_function(func)
    module.add_registration(ir.InterfaceRegistration("drv", None, "probe", "probe_fn"))
    assert func.is_interface


def test_struct_type_nominal_equality():
    s1 = ir.StructType("dev")
    s1.set_fields({"x": ir.INT})
    s2 = ir.StructType("dev")
    assert s1 == s2 and hash(s1) == hash(s2)
    with pytest.raises(ValueError):
        s1.set_fields({"y": ir.INT})


def test_null_const_detection():
    assert ir.is_null_const(ir.Const(0, ir.VOID_PTR))
    assert not ir.is_null_const(ir.Const(0, ir.INT))
    assert not ir.is_null_const(ir.Const(4, ir.VOID_PTR))


def test_printer_round_trips_key_syntax():
    func = build_simple_function()
    text = ir.format_function(func)
    assert "define i32 @f" in text
    assert "ret" in text


def test_binop_rejects_unknown_operator():
    with pytest.raises(ValueError):
        ir.BinOp(ir.Var("%t", ir.INT), "bogus", ir.const_int(1), ir.const_int(2))


def test_instruction_uids_unique():
    a = ir.Move(ir.Var("x", ir.INT), ir.const_int(1))
    b = ir.Move(ir.Var("x", ir.INT), ir.const_int(1))
    assert a.uid != b.uid
