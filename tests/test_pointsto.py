"""Points-to analyses (the baselines' aliasing substrate)."""

import pytest

from repro.lang import compile_program
from repro.pointsto import AndersenPointsTo, FlowSensitivePointsTo, MemoryBudgetExceeded


def solved(source):
    program = compile_program([("t.c", source)])
    return program, AndersenPointsTo(program).solve()


def test_malloc_creates_object():
    program, pts = solved("void f(void) { char *p = malloc(8); }")
    assert len(pts.points_to("f.p")) == 1


def test_copy_propagates_objects():
    program, pts = solved("void f(void) { char *p = malloc(8); char *q = p; }")
    assert pts.points_to("f.q") == pts.points_to("f.p")
    assert pts.may_alias("f.p", "f.q")


def test_two_allocations_do_not_alias():
    program, pts = solved("void f(void) { char *p = malloc(8); char *q = malloc(8); }")
    assert not pts.may_alias("f.p", "f.q")


def test_store_load_through_pointer():
    source = """
void f(void) {
    char *obj = malloc(8);
    char **slot = malloc(8);
    *slot = obj;
    char *out = *slot;
}
"""
    program, pts = solved(source)
    assert pts.may_alias("f.obj", "f.out")


def test_field_sensitive_geps():
    source = """
struct s { int a; int b; };
void f(void) {
    struct s *p = malloc(16);
    int *pa = &p->a;
    int *pb = &p->b;
    int *pa2 = &p->a;
}
"""
    program, pts = solved(source)
    assert pts.may_alias("f.pa", "f.pa2")
    assert not pts.may_alias("f.pa", "f.pb")


def test_call_propagates_arguments():
    source = """
static void sink(char *x) { }
void f(void) {
    char *p = malloc(8);
    sink(p);
}
"""
    program, pts = solved(source)
    assert pts.may_alias("f.p", "sink.x")


def test_return_value_propagates():
    source = """
static char *make(void) { char *p = malloc(8); return p; }
void f(void) { char *q = make(); }
"""
    program, pts = solved(source)
    assert pts.may_alias("make.p", "f.q")


def test_interface_params_have_empty_points_to():
    """The D1 failure (Fig. 1): no caller ⇒ empty set ⇒ aliases missed."""
    source = """
struct dev { int x; };
static int probe(struct dev *pdev) { struct dev *d = pdev; return 0; }
struct drv { int (*probe)(struct dev *p); };
static struct drv driver = { .probe = probe };
"""
    program, pts = solved(source)
    assert pts.points_to("probe.pdev") == frozenset()
    # d copies pdev, so it is empty too — and notably NOT may_alias.
    assert not pts.may_alias("probe.pdev", "probe.d") or pts.points_to("probe.d")


def test_address_of_global():
    source = "int g; void f(void) { int *p = &g; int *q = &g; }"
    program, pts = solved(source)
    assert pts.may_alias("f.p", "f.q")


def test_memory_budget_raises():
    source = """
void f(void) {
    char *a = malloc(8); char *b = malloc(8); char *c = malloc(8);
    char *x = a; char *y = b; char *z = c;
}
"""
    program = compile_program([("t.c", source)])
    with pytest.raises(MemoryBudgetExceeded):
        AndersenPointsTo(program, max_pts_entries=2).solve()


def test_flow_sensitive_strong_update():
    source = """
void f(void) {
    char *p = malloc(8);
    char *q = malloc(8);
    char *t = p;
    t = q;
    char *u = t;
}
"""
    program = compile_program([("t.c", source)])
    base = AndersenPointsTo(program).solve()
    fs = FlowSensitivePointsTo(base)
    func = program.lookup("f")
    # Flow-insensitively t may point to both objects...
    assert len(base.points_to("f.t")) == 2
    # ...but at the end of the entry block the strong update leaves only q's.
    entry = func.entry
    assert len(fs.points_to_at(func, entry.uid, "f.t")) == 1


def test_flow_sensitive_falls_back_to_base():
    source = "void f(char **pp) { char *v = *pp; }"
    program = compile_program([("t.c", source)])
    base = AndersenPointsTo(program).solve()
    fs = FlowSensitivePointsTo(base)
    func = program.lookup("f")
    assert fs.points_to_at(func, func.entry.uid, "f.v") == base.points_to("f.v")
