"""Parser unit tests for mini-C."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import parse


def decls_of(source):
    return parse(source).decls


def only_func(source, name=None):
    for decl in decls_of(source):
        if isinstance(decl, ast.FunctionDef) and (name is None or decl.name == name):
            return decl
    raise AssertionError("no function found")


def test_struct_definition():
    (struct,) = decls_of("struct point { int x; int y; };")
    assert isinstance(struct, ast.StructDef)
    assert struct.name == "point"
    assert [f.name for f in struct.fields] == ["x", "y"]


def test_struct_with_pointer_and_array_fields():
    (struct,) = decls_of("struct s { struct s *next; int data[8]; };")
    next_field, data_field = struct.fields
    assert next_field.type.pointer_depth == 1
    assert data_field.type.array_dims == (8,)


def test_struct_multi_declarator_field():
    (struct,) = decls_of("struct s { int a, b, *c; };")
    assert [f.name for f in struct.fields] == ["a", "b", "c"]
    assert struct.fields[2].type.pointer_depth == 1


def test_forward_struct_declaration():
    (decl,) = decls_of("struct opaque;")
    assert isinstance(decl, ast.StructDef)
    assert decl.name == "@forward struct opaque"


def test_function_definition_params():
    func = only_func("static int f(struct s *p, int n) { return n; }")
    assert func.is_static
    assert [p.name for p in func.params] == ["p", "n"]
    assert func.params[0].type.pointer_depth == 1


def test_function_void_params_and_variadic():
    func = only_func("int g(void) { return 0; }")
    assert func.params == []
    variadic = only_func("int printf_like(char *fmt, ...) { return 0; }")
    assert variadic.variadic


def test_function_prototype_has_no_body():
    func = only_func("int h(int a);")
    assert func.body is None


def test_typedef_registers_name():
    unit = parse("typedef struct foo foo_t; foo_t *make(void) { return NULL; }")
    func = next(d for d in unit.decls if isinstance(d, ast.FunctionDef))
    assert func.return_type.base == "foo_t"
    assert func.return_type.pointer_depth == 1


def test_enum_lowered_to_constants():
    (decl,) = decls_of("enum state { IDLE, BUSY = 5, DONE };")
    names = [f.name for f in decl.fields]
    values = [f.init.expr.value for f in decl.fields]
    assert names == ["IDLE", "BUSY", "DONE"]
    assert values == [0, 5, 6]


def test_global_with_designated_initializer():
    unit = parse(
        "struct ops { int (*run)(int x); };\n"
        "static struct ops my_ops = { .run = handler };"
    )
    gvar = next(d for d in unit.decls if isinstance(d, ast.GlobalVar))
    assert gvar.declarator.init.fields[0][0] == "run"


def test_if_else_chain():
    func = only_func("void f(int a) { if (a) { g(); } else if (a > 1) h(); else k(); }")
    stmt = func.body.statements[0]
    assert isinstance(stmt, ast.IfStmt)
    assert isinstance(stmt.else_body, ast.IfStmt)


def test_while_and_do_while():
    func = only_func("void f(void) { while (1) g(); do h(); while (0); }")
    w, dw = func.body.statements
    assert isinstance(w, ast.WhileStmt) and not w.is_do_while
    assert isinstance(dw, ast.WhileStmt) and dw.is_do_while


def test_for_loop_with_declaration():
    func = only_func("void f(int n) { for (int i = 0; i < n; i++) g(i); }")
    loop = func.body.statements[0]
    assert isinstance(loop, ast.ForStmt)
    assert isinstance(loop.init, ast.DeclStmt)
    assert loop.cond is not None and loop.step is not None


def test_goto_and_labels():
    func = only_func("int f(int a) { if (a) goto out; return 1; out: return 0; }")
    kinds = [type(s).__name__ for s in func.body.statements]
    assert "LabelStmt" in kinds


def test_switch_with_cases_and_default():
    func = only_func(
        "int f(int t) { switch (t) { case 1: return 1; case 2: break; default: return 9; } return 0; }"
    )
    switch = func.body.statements[0]
    assert isinstance(switch, ast.SwitchStmt)
    labels = [label for label, _ in switch.cases]
    assert labels == [1, 2, None]


def test_precedence_multiplication_binds_tighter():
    func = only_func("int f(int a, int b) { return a + b * 2; }")
    ret = func.body.statements[0]
    assert isinstance(ret.value, ast.Binary) and ret.value.op == "+"
    assert isinstance(ret.value.rhs, ast.Binary) and ret.value.rhs.op == "*"


def test_precedence_logical_vs_comparison():
    func = only_func("int f(int a, int b) { return a < 1 && b > 2; }")
    expr = func.body.statements[0].value
    assert expr.op == "&&"
    assert expr.lhs.op == "<" and expr.rhs.op == ">"


def test_unary_deref_and_address():
    func = only_func("void f(int *p, int x) { *p = x; p = &x; }")
    assign1 = func.body.statements[0].expr
    assert isinstance(assign1.target, ast.Unary) and assign1.target.op == "*"
    assign2 = func.body.statements[1].expr
    assert isinstance(assign2.value, ast.Unary) and assign2.value.op == "&"


def test_member_and_arrow_chains():
    func = only_func("int f(struct s *p) { return p->inner.value; }")
    expr = func.body.statements[0].value
    assert isinstance(expr, ast.Member) and not expr.arrow
    assert isinstance(expr.base, ast.Member) and expr.base.arrow


def test_array_indexing_expression():
    func = only_func("int f(int *a, int i) { return a[i + 1]; }")
    expr = func.body.statements[0].value
    assert isinstance(expr, ast.IndexExpr)
    assert isinstance(expr.index, ast.Binary)


def test_call_with_arguments():
    func = only_func("void f(int a) { g(a, 1, h(a)); }")
    call = func.body.statements[0].expr
    assert isinstance(call, ast.CallExpr) and len(call.args) == 3
    assert isinstance(call.args[2], ast.CallExpr)


def test_ternary_expression():
    func = only_func("int f(int a) { return a ? 1 : 2; }")
    expr = func.body.statements[0].value
    assert isinstance(expr, ast.Ternary)


def test_cast_expression():
    func = only_func("struct t *f(void *p) { return (struct t *)p; }")
    expr = func.body.statements[0].value
    assert isinstance(expr, ast.Cast)
    assert expr.target_type.pointer_depth == 1


def test_sizeof_type_and_expression():
    func = only_func("int f(int x) { return sizeof(struct s) + sizeof x; }")
    expr = func.body.statements[0].value
    assert isinstance(expr.lhs, ast.SizeOf) and expr.lhs.target_type is not None
    assert isinstance(expr.rhs, ast.SizeOf) and expr.rhs.operand is not None


def test_compound_assignment_operators():
    func = only_func("void f(int a) { a += 2; a <<= 1; }")
    first = func.body.statements[0].expr
    assert isinstance(first, ast.Assign) and first.op == "+"
    second = func.body.statements[1].expr
    assert second.op == "<<"


def test_increment_decrement_forms():
    func = only_func("void f(int a) { a++; ++a; a--; }")
    ops = [s.expr.op for s in func.body.statements]
    assert ops == ["p++", "++", "p--"]


def test_function_pointer_field():
    (struct,) = decls_of("struct ops { int (*probe)(struct dev *d); };")
    field = struct.fields[0]
    assert field.name == "probe"
    assert field.type.func_params is not None


def test_parse_error_reports_location():
    with pytest.raises(ParseError) as exc:
        parse("int f( { }", filename="bad.c")
    assert "bad.c" in str(exc.value)


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse("int f(void) { return 0 }")


def test_multi_declarator_global_flattened():
    unit = parse("int a = 1, b = 2;")
    names = [d.declarator.name for d in unit.decls if isinstance(d, ast.GlobalVar)]
    assert names == ["a", "b"]


def test_source_lines_recorded():
    unit = parse("int a;\nint b;\n")
    assert unit.source_lines >= 2
