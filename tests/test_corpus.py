"""Corpus generator and ground-truth matching tests."""

import random

from repro import PATA
from repro.corpus import (
    ALL_PROFILES,
    LINUX,
    ZEPHYR,
    generate,
    is_confirmed,
    match_findings,
    reachable_truth,
)
from repro.corpus.patterns import BAIT_PATTERNS, BUG_PATTERNS, COMMON_DECLS
from repro.lang import compile_program
from repro.typestate import BugKind

SMALL = ZEPHYR.scaled(0.6)


def test_generation_is_deterministic():
    a = generate(SMALL)
    b = generate(SMALL)
    assert [f.source for f in a.files] == [f.source for f in b.files]
    assert [(g.uid, g.line_start) for g in a.ground_truth] == [
        (g.uid, g.line_start) for g in b.ground_truth
    ]


def test_every_file_compiles():
    corpus = generate(SMALL)
    program = compile_program(corpus.all_sources())
    assert len(program.modules) == len(corpus.files)


def test_scaled_profile_shrinks():
    full = generate(ZEPHYR)
    half = generate(ZEPHYR.scaled(0.5))
    assert len(half.files) < len(full.files)


def test_kind_mix_quota_includes_rare_kinds():
    corpus = generate(LINUX.scaled(0.5))
    kinds = {g.kind for g in corpus.ground_truth}
    assert BugKind.ML in kinds  # low-weight kinds must not starve


def test_excluded_files_marked():
    corpus = generate(LINUX.scaled(0.5))
    assert any(not f.compiled for f in corpus.files)
    assert corpus.compiled_lines() < corpus.total_lines()


def test_excluded_file_bugs_are_easy_syntactic_kind():
    corpus = generate(LINUX.scaled(0.5))
    compiled_paths = {f.path for f in corpus.compiled_files()}
    for gt in corpus.ground_truth:
        if gt.path not in compiled_paths:
            assert gt.pattern == "npd_easy_uncompiled"


def test_ground_truth_lines_inside_files():
    corpus = generate(SMALL)
    by_path = {f.path: f for f in corpus.files}
    for gt in corpus.ground_truth:
        f = by_path[gt.path]
        assert 1 <= gt.line_start <= gt.line_end <= f.line_count


def test_bait_regions_recorded():
    corpus = generate(SMALL)
    assert corpus.bait_regions
    by_path = {f.path: f for f in corpus.files}
    for bait in corpus.bait_regions:
        assert bait.path in by_path


def test_categories_follow_layout():
    corpus = generate(SMALL)
    layout_categories = {entry[1] for entry in SMALL.layout}
    assert {f.category for f in corpus.files} <= layout_categories


def test_match_findings_classifies_tp_and_fp():
    corpus = generate(SMALL)
    gt = corpus.ground_truth[0]
    findings = [
        (gt.kind, gt.path, gt.line_start),      # true positive
        (gt.kind, gt.path, gt.line_start),      # duplicate: still one bug
        (BugKind.NPD, "nowhere.c", 1),          # false positive
    ]
    result = match_findings(findings, corpus)
    assert result.real == 1
    assert result.false_positives == 1
    assert result.found == 2
    assert gt.uid in result.matched_uids


def test_match_findings_restrict_kinds():
    corpus = generate(SMALL)
    findings = [(BugKind.DOUBLE_LOCK, "x.c", 1)]
    result = match_findings(findings, corpus, restrict_kinds=(BugKind.NPD,))
    assert result.found == 0


def test_confirmed_subset_is_deterministic_and_partial():
    flags = [is_confirmed(f"linux-bug-{i}") for i in range(200)]
    assert flags == [is_confirmed(f"linux-bug-{i}") for i in range(200)]
    assert 0 < sum(flags) < len(flags)


def test_reachable_truth_filters_kind_and_compilation():
    corpus = generate(LINUX.scaled(0.5))
    primary = reachable_truth(corpus, (BugKind.NPD, BugKind.UVA, BugKind.ML))
    assert all(g.kind in (BugKind.NPD, BugKind.UVA, BugKind.ML) for g in primary)
    compiled_paths = {f.path for f in corpus.compiled_files()}
    assert all(g.path in compiled_paths for g in primary)


def test_all_bug_patterns_found_by_pata():
    """Every injected-bug pattern must be detectable by PATA with the
    right checker set — otherwise the corpus measures nothing."""
    rng = random.Random(11)
    for kind_name, fns in BUG_PATTERNS.items():
        for fn in fns:
            snippet = fn("88011", rng)
            src = COMMON_DECLS + "\n" + "\n".join(snippet.lines) + "\n"
            # "all,taint,race": the TNT/RACE patterns need the opt-in
            # taint and race checkers.
            result = PATA(checker_spec="all,taint,race").analyze_sources([("p.c", src)])
            decls = COMMON_DECLS.count("\n") + 1
            for kind, start, end, _req in snippet.bugs:
                lo, hi = decls + start + 1, decls + end + 1
                assert any(
                    r.kind is kind and lo <= r.sink_line <= hi for r in result.reports
                ), f"{fn.__name__} not detected"


def test_infeasible_baits_filtered_by_pata():
    """The designed-to-be-dropped baits must not survive validation; the
    deliberately-unfixable ones (§5.2 loop/array FPs) must."""
    rng = random.Random(12)
    expected_fp = {"bait_loop_init", "bait_array_index_alias"}
    for fn in BAIT_PATTERNS:
        snippet = fn("88012", rng)
        src = COMMON_DECLS + "\n" + "\n".join(snippet.lines) + "\n"
        result = PATA.with_all_checkers().analyze_sources([("b.c", src)])
        if snippet.pattern in expected_fp:
            assert result.reports, f"{fn.__name__} should stay a (designed) FP"
        else:
            assert not result.reports, f"{fn.__name__} leaked: {result.reports}"


def test_pata_recall_and_precision_on_small_corpus():
    corpus = generate(SMALL)
    program = compile_program(corpus.compiled_sources())
    result = PATA.with_all_checkers().analyze(program)
    findings = [(r.kind, r.sink_file, r.sink_line) for r in result.reports]
    match = match_findings(findings, corpus)
    truth = reachable_truth(corpus, list(BugKind))
    assert match.real == len(truth)  # full recall on reachable truth
    assert match.false_positive_rate <= 0.45


def test_corpus_is_lint_clean():
    """The generator must emit idiomatic code: zero source diagnostics."""
    from repro.lang.sema import check_source

    corpus = generate(SMALL)
    for f in corpus.files:
        assert check_source(f.source, f.path) == []


def test_all_profiles_generate():
    for profile in ALL_PROFILES:
        corpus = generate(profile.scaled(0.15))
        assert corpus.files
        compile_program(corpus.all_sources())
