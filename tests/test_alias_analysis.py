"""Path-based alias analysis driver tests (Fig. 6 / Fig. 7)."""

from repro.alias import PathAliasAnalysis
from repro.cfg import CallGraph
from repro.lang import compile_program


def analyze(source, entry_name):
    program = compile_program([("t.c", source)])
    entry = program.lookup(entry_name)
    return PathAliasAnalysis(program), program, entry


FIG7_SOURCE = """
struct obj { struct inner *s; };
struct inner { int v; };

static void bar(struct obj *p) {
    struct inner *t = p->s;
    int a = t->v;
}

void foo(struct obj *p) {
    struct inner *t = p->s;
    if (!t)
        bar(p);
    else {
        int a = t->v;
    }
}
"""


def test_fig7_interprocedural_alias():
    analysis, program, entry = analyze(FIG7_SOURCE, "foo")
    # On the path through bar, foo's t and bar's t both name *(&p->s).
    assert analysis.must_alias_on_some_path(entry, "foo.t", "bar.t")


def test_fig7_param_aliases_across_call():
    analysis, program, entry = analyze(FIG7_SOURCE, "foo")
    assert analysis.must_alias_on_some_path(entry, "foo.p", "bar.p")


def test_alias_is_per_path():
    source = """
struct s { int v; };
void f(struct s *a, struct s *b, int c) {
    struct s *t;
    if (c)
        t = a;
    else
        t = b;
    int x = t->v;
}
"""
    analysis, program, entry = analyze(source, "f")
    results = analysis.analyze(entry)
    assert len(results) == 2
    verdicts = set()
    for result in results:
        aliases_a = "f.a" in result.aliases_of("f.t")
        aliases_b = "f.b" in result.aliases_of("f.t")
        verdicts.add((aliases_a, aliases_b))
        # Never both on one path: path-sensitivity beats the may-alias join.
        assert not (aliases_a and aliases_b)
    assert (True, False) in verdicts and (False, True) in verdicts


def test_observer_called_per_instruction():
    source = "int f(int a) { int b = a + 1; return b; }"
    analysis, program, entry = analyze(source, "f")
    seen = []
    analysis.analyze(entry, observer=lambda inst, graph: seen.append(type(inst).__name__))
    assert "BinOp" in seen and "Move" in seen


def test_return_value_aliases_receiver():
    source = """
struct s { int v; };
static struct s *ident(struct s *p) { return p; }
void top(struct s *q) {
    struct s *r = ident(q);
    int x = r->v;
}
"""
    analysis, program, entry = analyze(source, "top")
    assert analysis.must_alias_on_some_path(entry, "top.q", "top.r")


def test_loop_unrolled_once_limits_paths():
    source = """
void f(int n) {
    int s = 0;
    while (n > 0) {
        s = s + 1;
        n = n - 1;
    }
}
"""
    analysis, program, entry = analyze(source, "f")
    results = analysis.analyze(entry)
    assert 1 <= len(results) <= 3
