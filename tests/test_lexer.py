"""Lexer unit tests."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import Lexer, parse_int_literal, tokenize


def kinds_and_texts(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]  # drop EOF


def test_identifiers_and_keywords():
    toks = kinds_and_texts("int foo struct _bar baz42")
    assert toks == [
        ("kw", "int"), ("id", "foo"), ("kw", "struct"),
        ("id", "_bar"), ("id", "baz42"),
    ]


def test_numbers_decimal_and_hex():
    toks = kinds_and_texts("42 0x1F 0 123456789")
    assert all(k == "num" for k, _ in toks)
    assert [parse_int_literal(t) for _, t in toks] == [42, 31, 0, 123456789]


def test_integer_suffixes_are_consumed():
    assert parse_int_literal("42UL") == 42
    assert parse_int_literal("0x10u") == 16
    toks = kinds_and_texts("7ULL")
    assert toks == [("num", "7ULL")]


def test_multichar_punctuation_maximal_munch():
    toks = [t.text for t in tokenize("a->b >>= c << d <= e == f && g")[:-1]]
    assert "->" in toks and ">>=" in toks and "<<" in toks
    assert "<=" in toks and "==" in toks and "&&" in toks


def test_line_comments_skipped():
    toks = kinds_and_texts("a // comment with * and /\nb")
    assert toks == [("id", "a"), ("id", "b")]


def test_block_comments_skipped_multiline():
    toks = kinds_and_texts("a /* line1\nline2 * / almost */ b")
    assert toks == [("id", "a"), ("id", "b")]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("a /* never closed")


def test_preprocessor_lines_ignored():
    toks = kinds_and_texts("#include <stdio.h>\nint x;\n#define FOO 1\ny")
    assert ("id", "x") in toks and ("id", "y") in toks
    assert all(t != "include" for _, t in toks)


def test_preprocessor_continuation():
    toks = kinds_and_texts("#define FOO \\\n  more\nint x;")
    assert toks[0] == ("kw", "int")


def test_string_literal():
    toks = tokenize('"hello world"')
    assert toks[0].kind == "string" and toks[0].text == "hello world"


def test_string_escapes():
    toks = tokenize(r'"a\"b"')
    assert toks[0].text == 'a"b'


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"no close')


def test_char_literal_and_escape():
    toks = tokenize(r"'a' '\n' '\0'")
    values = [t.text for t in toks[:-1]]
    assert values == ["a", "\n", "\0"]


def test_positions_track_lines_and_columns():
    toks = tokenize("a\n  b")
    assert toks[0].line == 1 and toks[0].column == 1
    assert toks[1].line == 2 and toks[1].column == 3


def test_unexpected_character_raises():
    with pytest.raises(LexError):
        tokenize("int a = 1 @ 2;")


def test_null_is_a_keyword():
    toks = kinds_and_texts("NULL")
    assert toks == [("kw", "NULL")]


def test_eof_token_terminates_stream():
    toks = tokenize("x")
    assert toks[-1].kind == "eof"
