"""SMT-lite solver tests: unit cases plus a brute-force property check."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.smt import App, Atom, Num, SolveResult, Sym, solve
from repro.smt.terms import eval_atom


def x(i):
    return Sym(i)


def test_empty_conjunction_sat():
    assert solve([]).is_sat


def test_constant_true_and_false_atoms():
    assert solve([Atom("eq", Num(1), Num(1))]).is_sat
    assert solve([Atom("eq", Num(1), Num(2))]).is_unsat


def test_single_equality_sat_with_model():
    sol = solve([Atom("eq", x(1), Num(5))])
    assert sol.is_sat and sol.model[1] == 5


def test_contradictory_equalities_unsat():
    sol = solve([Atom("eq", x(1), Num(5)), Atom("eq", x(1), Num(6))])
    assert sol.is_unsat


def test_equality_chain_propagates():
    atoms = [
        Atom("eq", x(1), x(2)),
        Atom("eq", x(2), x(3)),
        Atom("eq", x(3), Num(7)),
        Atom("eq", x(1), Num(8)),
    ]
    assert solve(atoms).is_unsat


def test_offset_equalities():
    # x1 = x2 + 3, x2 = 4 => x1 = 7; x1 != 7 contradicts.
    atoms = [
        Atom("eq", x(1), App("add", (x(2), Num(3)))),
        Atom("eq", x(2), Num(4)),
        Atom("ne", x(1), Num(7)),
    ]
    assert solve(atoms).is_unsat


def test_fig9_pattern_unsat():
    # R(p->f)==0 and R(t->f)!=0 with one shared symbol (aliased).
    field = x(10)
    atoms = [Atom("eq", field, Num(0)), Atom("ne", field, Num(0))]
    assert solve(atoms).is_unsat


def test_interval_conflict_unsat():
    atoms = [Atom("lt", x(1), Num(0)), Atom("gt", x(1), Num(10))]
    assert solve(atoms).is_unsat


def test_interval_squeeze_to_point():
    atoms = [Atom("ge", x(1), Num(3)), Atom("le", x(1), Num(3)), Atom("ne", x(1), Num(3))]
    assert solve(atoms).is_unsat


def test_difference_constraints_chain():
    # a < b, b < c, c < a is unsat.
    atoms = [Atom("lt", x(1), x(2)), Atom("lt", x(2), x(3)), Atom("lt", x(3), x(1))]
    sol = solve(atoms)
    # Pure difference cycles need bounds to surface in our interval pass;
    # the verdict must never be SAT.
    assert sol.result in (SolveResult.UNSAT, SolveResult.UNKNOWN)


def test_bounded_difference_cycle_unsat():
    atoms = [
        Atom("ge", x(1), Num(0)), Atom("le", x(1), Num(5)),
        Atom("ge", x(2), Num(0)), Atom("le", x(2), Num(5)),
        Atom("lt", x(1), x(2)), Atom("lt", x(2), x(1)),
    ]
    assert solve(atoms).is_unsat


def test_disequality_between_pinned_symbols():
    atoms = [Atom("eq", x(1), Num(2)), Atom("eq", x(2), Num(2)), Atom("ne", x(1), x(2))]
    assert solve(atoms).is_unsat


def test_same_class_disequality_unsat():
    atoms = [Atom("eq", x(1), x(2)), Atom("ne", x(1), x(2))]
    assert solve(atoms).is_unsat


def test_nonlinear_atoms_searched():
    # x * x == 9 with x in a small range.
    atoms = [
        Atom("ge", x(1), Num(-5)), Atom("le", x(1), Num(5)),
        Atom("eq", App("mul", (x(1), x(1))), Num(9)),
    ]
    sol = solve(atoms)
    assert sol.is_sat and abs(sol.model[1]) == 3


def test_nonlinear_unsat_over_finite_domain():
    atoms = [
        Atom("ge", x(1), Num(0)), Atom("le", x(1), Num(3)),
        Atom("eq", App("mul", (x(1), x(1))), Num(7)),
    ]
    sol = solve(atoms)
    assert sol.is_unsat


def test_division_by_zero_candidate_rejected():
    # x2 == 0 together with x1 == 10 / x2 is unsatisfiable (the division
    # is undefined); the solver must not produce a model.
    atoms = [Atom("eq", x(2), Num(0)), Atom("eq", x(1), App("div", (Num(10), x(2))))]
    sol = solve(atoms)
    assert not sol.is_sat


def test_branch_shaped_system_sat():
    # Typical translated path: t = a < b taken, a pinned.
    atoms = [Atom("lt", x(1), x(2)), Atom("eq", x(1), Num(3))]
    sol = solve(atoms)
    assert sol.is_sat
    assert sol.model[1] == 3 and sol.model[2] > 3


def test_feasible_reads_unsat_only():
    sat = solve([Atom("eq", x(1), Num(1))])
    unsat = solve([Atom("eq", Num(0), Num(1))])
    assert sat.feasible and not unsat.feasible


def test_model_satisfies_all_atoms():
    atoms = [
        Atom("eq", x(1), App("add", (x(2), Num(1)))),
        Atom("ge", x(2), Num(0)),
        Atom("lt", x(1), Num(10)),
        Atom("ne", x(2), Num(4)),
    ]
    sol = solve(atoms)
    assert sol.is_sat
    for atom in atoms:
        assert eval_atom(atom, sol.model) is True


# ---------------------------------------------------------------------------
# Property: agreement with brute force over a tiny domain
# ---------------------------------------------------------------------------

_DOMAIN = range(-3, 4)


def _brute_force_sat(atoms, num_syms):
    for values in itertools.product(_DOMAIN, repeat=num_syms):
        env = {i + 1: v for i, v in enumerate(values)}
        if all(eval_atom(a, env) is True for a in atoms):
            return True
    return False


_terms = st.one_of(
    st.integers(min_value=-3, max_value=3).map(Num),
    st.integers(min_value=1, max_value=3).map(Sym),
)
_ops = st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"])


@st.composite
def _bounded_systems(draw):
    """Random relational atoms plus box bounds keeping domains finite."""
    n = draw(st.integers(min_value=1, max_value=4))
    atoms = []
    for sym in range(1, 4):
        atoms.append(Atom("ge", Sym(sym), Num(-3)))
        atoms.append(Atom("le", Sym(sym), Num(3)))
    for _ in range(n):
        atoms.append(Atom(draw(_ops), draw(_terms), draw(_terms)))
    return atoms


@settings(max_examples=150, deadline=None)
@given(_bounded_systems())
def test_property_solver_agrees_with_brute_force(atoms):
    expected = _brute_force_sat(atoms, 3)
    sol = solve(atoms)
    if expected:
        # A satisfiable system must never be called UNSAT.
        assert not sol.is_unsat
        if sol.is_sat:
            assert all(eval_atom(a, sol.model) is True for a in atoms)
    else:
        # An unsatisfiable system must never get a (verified) model.
        assert not sol.is_sat
