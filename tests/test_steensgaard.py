"""The P1.7 tier: union-find laws, Steensgaard solving, partition facts.

Three layers, mirroring the module's structure:

* :class:`repro.pointsto.steensgaard.UnionFind` algebraic laws
  (idempotence, commutativity, find-after-union congruence) against a
  brute-force reference partition, in the style of
  ``test_smt_unionfind.py``;
* unit tests of the constraint generation on small C sources — what
  unifies, what flags, what survives as a singleton;
* the coarsening contract against Andersen on every corpus profile:
  Steensgaard is the *cheap* tier, so every pair Andersen deems
  may-alias must land in one Steensgaard cell.  (The converse is not a
  theorem — unification over-merges by design.)
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import ALL_PROFILES, generate
from repro.lang import compile_program
from repro.pointsto import (
    AndersenPointsTo,
    MayAliasPartition,
    SteensgaardPointsTo,
    UnionFind,
    build_partition,
)


# -- UnionFind laws ----------------------------------------------------------


def test_make_is_own_root():
    uf = UnionFind()
    a = uf.make()
    b = uf.make()
    assert uf.find(a) == a
    assert uf.find(b) == b
    assert len(uf) == 2


def test_union_merges_and_returns_surviving_root():
    uf = UnionFind()
    a, b = uf.make(), uf.make()
    root = uf.union(a, b)
    assert root in (a, b)
    assert uf.find(a) == uf.find(b) == root


def test_union_idempotent():
    uf = UnionFind()
    a, b = uf.make(), uf.make()
    first = uf.union(a, b)
    again = uf.union(a, b)
    assert first == again
    assert uf.same(a, b)


def test_union_self_is_identity():
    uf = UnionFind()
    a = uf.make()
    assert uf.union(a, a) == uf.find(a)


def test_same_is_transitive():
    uf = UnionFind()
    a, b, c = uf.make(), uf.make(), uf.make()
    uf.union(a, b)
    uf.union(b, c)
    assert uf.same(a, c)
    assert not uf.same(a, uf.make())


def test_union_by_size_attaches_smaller_under_larger():
    uf = UnionFind()
    a, b, c, d = (uf.make() for _ in range(4))
    big = uf.union(a, b)        # size-2 class
    assert uf.union(big, c) == big   # size 2 absorbs size 1
    assert uf.union(d, big) == big   # even given first, the big root survives


@st.composite
def _union_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    k = draw(st.integers(min_value=0, max_value=40))
    ops = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
        )
        for _ in range(k)
    ]
    return n, ops


def _reference_partition(n, ops):
    """Brute-force model: a list of disjoint sets, merged per op."""
    sets = [{i} for i in range(n)]
    for a, b in ops:
        sa = next(s for s in sets if a in s)
        sb = next(s for s in sets if b in s)
        if sa is not sb:
            sa |= sb
            sets.remove(sb)
    return sets


@settings(max_examples=200, deadline=None)
@given(_union_sequences())
def test_property_same_agrees_with_reference_model(seq):
    n, ops = seq
    uf = UnionFind()
    elems = [uf.make() for _ in range(n)]
    for a, b in ops:
        uf.union(elems[a], elems[b])
    sets = _reference_partition(n, ops)
    for i in range(n):
        for j in range(n):
            expected = any(i in s and j in s for s in sets)
            assert uf.same(elems[i], elems[j]) == expected


@settings(max_examples=200, deadline=None)
@given(_union_sequences())
def test_property_union_commutes(seq):
    """Flipping every union's argument order yields the same partition."""
    n, ops = seq
    left, right = UnionFind(), UnionFind()
    le = [left.make() for _ in range(n)]
    re = [right.make() for _ in range(n)]
    for a, b in ops:
        left.union(le[a], le[b])
        right.union(re[b], re[a])
    for i in range(n):
        for j in range(n):
            assert left.same(le[i], le[j]) == right.same(re[i], re[j])


@settings(max_examples=150, deadline=None)
@given(_union_sequences())
def test_property_find_after_union_congruence(seq):
    """After any op sequence, union's return value is the common root,
    and find is stable (two calls agree)."""
    n, ops = seq
    uf = UnionFind()
    elems = [uf.make() for _ in range(n)]
    for a, b in ops:
        root = uf.union(elems[a], elems[b])
        assert uf.find(elems[a]) == root
        assert uf.find(elems[b]) == root
        assert uf.find(root) == root
    for elem in elems:
        assert uf.find(elem) == uf.find(elem)


# -- constraint generation on small sources ---------------------------------


def _solved(source):
    program = compile_program([("t.c", source)])
    return program, SteensgaardPointsTo(program).solve()


def test_copy_unifies():
    _, pts = _solved("void f(void) { char *p = malloc(8); char *q = p; }")
    assert pts.may_alias("f.p", "f.q")


def test_unrelated_scalars_stay_apart():
    _, pts = _solved("void f(void) { int a = 1; int b = 2; }")
    assert not pts.may_alias("f.a", "f.b")


def test_may_alias_is_reflexive_and_unknown_names_are_disjoint():
    _, pts = _solved("void f(void) { int a = 1; }")
    assert pts.may_alias("f.a", "f.a")
    assert pts.may_alias("zzz", "zzz")
    assert not pts.may_alias("zzz", "f.a")


def test_store_load_through_pointer_unifies_values():
    # *p = a; b = *p  =>  a and b share p's pointee cell.
    _, pts = _solved(
        "void f(int *p) { int a = 1; *p = a; int b = *p; }"
    )
    assert pts.may_alias("f.a", "f.b")


def test_call_binding_unifies_param_with_argument():
    _, pts = _solved(
        "void g(int *x) { }\n"
        "void f(void) { int *p = malloc(8); g(p); }"
    )
    assert pts.may_alias("g.x", "f.p")


def test_return_binding_unifies_result_with_returned_var():
    _, pts = _solved(
        "int *h(void) { int *r = malloc(8); return r; }\n"
        "void f(void) { int *p = h(); }"
    )
    assert pts.may_alias("f.p", "h.r")


def test_field_edges_unify_per_label():
    _, pts = _solved(
        "struct s { int *a; int *b; };\n"
        "void f(struct s *o) { int *x = o->a; int *y = o->a; int *z = o->b; }"
    )
    assert pts.may_alias("f.x", "f.y")
    assert not pts.may_alias("f.x", "f.z")


# -- singleton fast-path facts -----------------------------------------------


def test_plain_scalars_are_singletons():
    program, _ = _solved("void f(void) { int a = 1; int b = 2; }")
    part = build_partition(program)
    assert part.is_singleton("f.a")
    assert part.is_singleton("f.b")


def test_computed_value_shares_a_cell_with_its_temp():
    # ``b = a + 2`` lowers through a temp the move unifies with ``b`` —
    # so computed destinations are two-element cells, not singletons,
    # while the purely-read operand stays singleton.
    program, _ = _solved("void f(void) { int a = 1; int b = a + 2; }")
    part = build_partition(program)
    assert part.is_singleton("f.a")
    assert not part.is_singleton("f.b")


def test_unified_variables_are_not_singletons():
    program, _ = _solved("void f(void) { char *p = malloc(8); char *q = p; }")
    part = build_partition(program)
    assert not part.is_singleton("f.p")
    assert not part.is_singleton("f.q")


def test_address_taken_disqualifies_both_sides():
    program, _ = _solved("void f(void) { int a = 1; int *p = &a; }")
    part = build_partition(program)
    assert not part.is_singleton("f.a")   # pointed-to: loads can join into it
    assert not part.is_singleton("f.p")   # carries a deref edge


def test_globals_are_never_singletons_and_root_shared_state():
    program, _ = _solved("int g;\nvoid f(void) { g = 1; int a = 2; }")
    part = build_partition(program)
    assert not part.is_singleton("@g")
    assert "@g" in part.shared_reaching
    assert part.is_singleton("f.a")
    assert "f.a" not in part.shared_reaching


def test_heap_pointer_reaches_shared():
    program, _ = _solved("void f(void) { char *p = malloc(8); }")
    part = build_partition(program)
    assert not part.is_singleton("f.p")
    assert "f.p" in part.shared_reaching


def test_singletons_by_function_partitions_the_singleton_set():
    program, _ = _solved(
        "void f(void) { int a = 1; }\n"
        "void g(void) { int b = 2; }"
    )
    part = build_partition(program)
    flattened = {
        name
        for names in part.singletons_by_function.values()
        for name in names
    }
    assert flattened == set(part.singletons)
    assert "f.a" in part.singletons_by_function.get("f", ())
    assert "g.b" in part.singletons_by_function.get("g", ())


# -- partition object --------------------------------------------------------


def test_partition_is_deterministic():
    source = (
        "int g;\n"
        "void f(void) { char *p = malloc(8); char *q = p; g = 1; }\n"
        "void h(int *x) { int a = *x; }"
    )
    one = build_partition(compile_program([("t.c", source)]))
    two = build_partition(compile_program([("t.c", source)]))
    assert one.cell_ids == two.cell_ids
    assert one.singletons == two.singletons
    assert one.stamp() == two.stamp()


def test_partition_stamp_tracks_content():
    a = build_partition(compile_program([("t.c", "void f(void) { int a = 1; }")]))
    b = build_partition(compile_program([("t.c", "void f(void) { int a = 1; int *p = &a; }")]))
    assert a.stamp() != b.stamp()


def test_partition_pickle_roundtrip():
    program, _ = _solved(
        "int g;\nvoid f(void) { char *p = malloc(8); char *q = p; int a = 1; }"
    )
    part = build_partition(program)
    clone = pickle.loads(pickle.dumps(part))
    assert isinstance(clone, MayAliasPartition)
    assert clone.cell_ids == part.cell_ids
    assert clone.singletons == part.singletons
    assert clone.singletons_by_function == part.singletons_by_function
    assert clone.cell_count == part.cell_count
    assert clone.shared_reaching == part.shared_reaching
    assert clone.may_alias("f.p", "f.q")


# -- coarsening contract vs Andersen -----------------------------------------


@pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
def test_steensgaard_coarsens_andersen_on_corpus(profile):
    """On every corpus profile: any pair of variables Andersen proves
    may-alias (their points-to sets intersect) must share one
    Steensgaard cell.  Grouping names by pointed-to object makes the
    check linear — all names pointing at one object are pairwise
    may-alias under Andersen, so each group must collapse into a single
    cell."""
    program = compile_program(generate(profile.scaled(0.3)).compiled_sources())
    andersen = AndersenPointsTo(program).solve()
    steens = SteensgaardPointsTo(program).solve()

    groups = {}
    for node, objs in andersen.pts.items():
        if isinstance(node, str):
            for obj in objs:
                groups.setdefault(obj, []).append(node)

    checked = 0
    for obj, names in groups.items():
        first = names[0]
        for other in names[1:]:
            checked += 1
            assert steens.may_alias(first, other), (
                profile.name, obj, first, other,
            )
    assert checked > 0, "coarsening check is vacuous without alias pairs"


def test_coarsening_is_strict_on_small_programs():
    """Sanity that the tiers differ: two call sites unify the parameter
    with both arguments, dragging the arguments into one cell —
    inclusion-based Andersen keeps their allocation sites apart.  So the
    coarsening direction tested above is the only one that holds."""
    source = (
        "void g(char *x) { }\n"
        "void f(void) { char *p = malloc(8); char *q = malloc(8); g(p); g(q); }"
    )
    program = compile_program([("t.c", source)])
    andersen = AndersenPointsTo(program).solve()
    steens = SteensgaardPointsTo(program).solve()
    assert andersen.may_alias("g.x", "f.p")
    assert andersen.may_alias("g.x", "f.q")
    assert steens.may_alias("g.x", "f.p")
    assert steens.may_alias("g.x", "f.q")
    assert steens.may_alias("f.p", "f.q")
    assert not andersen.may_alias("f.p", "f.q")
