"""The resident analysis daemon: session reuse soundness, the line-JSON
protocol, the FIFO scheduler (coalescing, timeouts, degradation, drain),
watch mode, and byte-identity between daemon responses and one-shot CLI
runs across alias tiers and worker counts."""

import json
import socket
import threading
import time

import pytest

from repro import PATA, AnalysisConfig
from repro.cli import check_output_text, main
from repro.core.report import AnalysisStats
from repro.lang import compile_program
from repro.serve import PataServer, ResidentStore, ServeClient, Session, WatchLoop
from repro.serve.protocol import (
    ProtocolError, decode, encode, job_key, validate_request,
)

BUGGY = """
struct s { int v; };
int f(struct s *p) {
    if (!p) {
        return p->v;
    }
    return 0;
}
"""

CLEAN = """
int g(int a) {
    return a + 1;
}
"""

# Race on an escaping heap object whose shared-state root is a
# ``heap#<uid>`` allocation-site name: both entries reach the allocation
# through the same helper, so the rendered message embeds an instruction
# uid.  This is the session-reuse soundness regression: uid counters used
# to be process-global, so a second in-process compile shifted every
# ``heap#N`` and the daemon's report bytes diverged from a one-shot run.
HEAP_RACE = """
struct buf { int len; int cap; };

struct buf *acquire(void) {
    struct buf *b = kzalloc(sizeof(struct buf));
    publish(b);
    return b;
}

int dev_write(void) {
    struct buf *b = acquire();
    if (!b)
        return -12;
    b->len = 1;
    return 0;
}

int dev_read(void) {
    struct buf *b = acquire();
    if (!b)
        return -11;
    return b->len;
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.c"
    path.write_text(BUGGY)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return path


@pytest.fixture
def race_file(tmp_path):
    path = tmp_path / "race.c"
    path.write_text(HEAP_RACE)
    return path


def one_shot_output(sources, checker_spec="default", **config):
    """The rendered report text a fresh ``PATA`` produces — what every
    resident-session run must match byte for byte."""
    program = compile_program(list(sources))
    result = PATA(config=AnalysisConfig(**config), checker_spec=checker_spec).analyze(program)
    return check_output_text(result)


# -- session reuse soundness -------------------------------------------------


class TestSessionReuse:
    def test_repeat_analyze_byte_identical(self):
        session = Session(checker_spec="race")
        first = session.analyze([("race.c", HEAP_RACE)])
        second = session.analyze([("race.c", HEAP_RACE)])
        assert check_output_text(first) == check_output_text(second)
        assert "heap#" in check_output_text(first)

    def test_session_matches_one_shot(self):
        session = Session(checker_spec="race")
        session.analyze([("race.c", HEAP_RACE)])  # warm the cache
        warm = session.analyze([("race.c", HEAP_RACE)])
        assert check_output_text(warm) == one_shot_output(
            [("race.c", HEAP_RACE)], checker_spec="race")

    def test_recompile_keeps_heap_uids_stable(self):
        """Two compiles in one process must render identical ``heap#N``
        roots — uid numbering is per-program, not process-global."""
        outputs = []
        for _ in range(2):
            program = compile_program([("race.c", HEAP_RACE)])
            result = PATA(checker_spec="race").analyze(program)
            outputs.append(check_output_text(result))
        assert outputs[0] == outputs[1]
        assert "heap#" in outputs[0]

    def test_identical_request_replays(self):
        """Tier 1: a byte-identical repeat skips analysis entirely and
        replays the memoized result."""
        session = Session()
        cold = session.analyze([("buggy.c", BUGGY), ("clean.c", CLEAN)])
        warm = session.analyze([("buggy.c", BUGGY), ("clean.c", CLEAN)])
        assert not cold.stats.request_replayed
        assert cold.stats.entries_reanalyzed > 0
        assert warm.stats.request_replayed
        assert warm.stats.entries_reanalyzed == 0
        assert warm.stats.cache_hits == 0  # the store was never touched
        assert warm.stats.requests_served == 2
        assert session.replays_served == 1

    def test_overlapping_request_takes_cache_tier(self):
        """Tier 2: a different file list misses the memo but resolves
        its modules (and shared facts) out of the resident store."""
        session = Session()
        session.analyze([("buggy.c", BUGGY), ("clean.c", CLEAN)])
        subset = session.analyze([("buggy.c", BUGGY)])
        assert not subset.stats.request_replayed
        assert subset.stats.cache_hits > 0  # buggy.c's module, at least
        assert session.replays_served == 0

    def test_edit_reanalyzes_only_dirtied_closure(self):
        # --no-prune so the clean module's entry stays analyzed (P1.5
        # would skip it and leave nothing to dirty).
        session = Session(config=AnalysisConfig(prune=False))
        session.analyze([("buggy.c", BUGGY), ("clean.c", CLEAN)])
        edited = CLEAN.replace("a + 1", "a + 2")
        delta = session.analyze([("buggy.c", BUGGY), ("clean.c", edited)])
        assert delta.stats.entries_reanalyzed == 1
        assert delta.stats.entries_cached >= 1

    def test_per_request_cache_deltas(self):
        """Store counters grow for the session's lifetime; each result
        must carry this request's delta, not the running total."""
        session = Session()
        cold = session.analyze([("buggy.c", BUGGY), ("clean.c", CLEAN)])
        subset = session.analyze([("buggy.c", BUGGY)])  # memo miss, cache hit
        assert cold.stats.cache_misses > 0
        assert subset.stats.cache_hits > 0
        # The store's counters are cumulative; the result's are not.
        assert session.store.misses == \
            cold.stats.cache_misses + subset.stats.cache_misses
        assert session.store.hits == \
            cold.stats.cache_hits + subset.stats.cache_hits

    def test_memo_is_bounded_and_recency_ordered(self):
        from repro.serve.session import MEMO_LIMIT

        session = Session()
        first = [("m0.c", CLEAN.replace("int g", "int g0"))]
        session.analyze(first)
        # Fill the memo past its bound with distinct requests.
        for i in range(1, MEMO_LIMIT + 1):
            session.analyze([("m.c", CLEAN.replace("a + 1", f"a + {i}"))])
        # ``first`` was the oldest entry: evicted, so it re-analyzes...
        assert not session.analyze(first).stats.request_replayed
        # ...and the re-insertion replays on the next repeat.
        assert session.analyze(first).stats.request_replayed

    def test_stats_carry_residency_fields(self):
        session = Session()
        result = session.analyze([("buggy.c", BUGGY)])
        stats = result.stats.to_dict()
        assert stats["requests_served"] == 1
        assert stats["resident_cache_entries"] == len(session.store) > 0
        assert stats["queue_wait_seconds"] == 0.0

    def test_analyze_paths_overlay_matches_disk(self, tmp_path, buggy_file, clean_file):
        """``check_diff`` semantics: an overlay source must yield the
        same bytes as writing it to disk first."""
        session = Session()
        overlay_result = session.analyze_paths(
            [str(buggy_file), str(clean_file)],
            overlay={str(clean_file): BUGGY.replace("int f", "int h")},
        )
        clean_file.write_text(BUGGY.replace("int f", "int h"))
        disk = one_shot_output(
            [(str(buggy_file), BUGGY),
             (str(clean_file), clean_file.read_text())])
        assert check_output_text(overlay_result) == disk

    def test_reset_drops_residency(self):
        session = Session()
        session.analyze([("buggy.c", BUGGY)])
        assert len(session.store) > 0
        session.reset()
        assert len(session.store) == 0
        result = session.analyze([("buggy.c", BUGGY)])
        assert result.stats.entries_reanalyzed > 0  # cold again


# -- resident store ----------------------------------------------------------


class TestResidentStore:
    def test_get_returns_fresh_copies(self):
        """Pickle round-trip on purpose: in-place rehydration of a
        fetched object must never mutate the resident copy."""
        store = ResidentStore()
        store.put("k", {"nested": [1, 2]})
        store.commit()
        first = store.get("k")
        first["nested"].append(3)
        assert store.get("k") == {"nested": [1, 2]}

    def test_staged_until_commit(self):
        """``put`` stages (readable at once, like a just-written cache
        file) but only ``commit`` publishes into the resident set."""
        store = ResidentStore()
        store.put("k", 1)
        assert store.get("k") == 1
        assert len(store) == 0
        assert store.occupancy()["staged"] == 1
        assert store.commit() == 1
        assert len(store) == 1
        assert store.occupancy()["staged"] == 0
        assert store.get("k") == 1 and store.hits == 2

    def test_missing_key_counts_a_miss(self):
        store = ResidentStore()
        assert store.get("absent") is None
        assert store.misses == 1 and store.hits == 0

    def test_put_never_overwrites(self):
        store = ResidentStore()
        store.put("k", "first")
        store.put("k", "second")
        store.commit()
        assert store.get("k") == "first"

    def test_occupancy(self):
        store = ResidentStore()
        store.put("k", "v")
        store.commit()
        occ = store.occupancy()
        assert occ["objects"] == 1
        assert occ["staged"] == 0
        assert occ["bytes"] > 0


# -- protocol ----------------------------------------------------------------


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        payload = {"op": "status", "id": 7}
        assert decode(encode(payload)) == payload

    def test_encode_is_deterministic(self):
        assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")

    def test_validate_ops(self):
        for op in ("check_module", "status", "shutdown"):
            assert validate_request({"op": op}) == op
        with pytest.raises(ProtocolError, match="unknown op"):
            validate_request({"op": "frobnicate"})
        with pytest.raises(ProtocolError, match="list of path strings"):
            validate_request({"op": "check_module", "files": "a.c"})
        with pytest.raises(ProtocolError, match="overlay"):
            validate_request({"op": "check_diff"})
        with pytest.raises(ProtocolError, match="source text"):
            validate_request({"op": "check_diff", "overlay": {"a.c": 3}})

    def test_job_key_coalesces_identical_work(self):
        assert job_key("check_module", ["a.c"], None) == \
            job_key("check_module", ["a.c"], None)
        assert job_key("check_module", ["a.c"], None) != \
            job_key("check_module", ["b.c"], None)
        assert job_key("check_module", ["a.c", "b.c"], None) != \
            job_key("check_module", ["b.c", "a.c"], None)
        assert job_key("check_diff", ["a.c"], {"a.c": "x"}) != \
            job_key("check_diff", ["a.c"], {"a.c": "y"})


# -- watch loop --------------------------------------------------------------


class TestWatchLoop:
    def test_poll_reports_content_changes(self, tmp_path):
        path = tmp_path / "w.c"
        path.write_text(CLEAN)
        loop = WatchLoop([str(path)])
        assert loop.poll_once() == []
        path.write_text(CLEAN + "\n// edit\n")
        assert loop.poll_once() == [str(path)]
        assert loop.poll_once() == []

    def test_poll_reports_deletion_and_reappearance(self, tmp_path):
        path = tmp_path / "w.c"
        path.write_text(CLEAN)
        loop = WatchLoop([str(path)])
        path.unlink()
        assert loop.poll_once() == [str(path)]
        assert loop.poll_once() == []
        path.write_text(CLEAN)
        assert loop.poll_once() == [str(path)]

    def test_wait_for_change_honors_stop(self, tmp_path):
        path = tmp_path / "w.c"
        path.write_text(CLEAN)
        loop = WatchLoop([str(path)], interval=0.01)
        assert loop.wait_for_change(should_stop=lambda: True) == []


# -- daemon ------------------------------------------------------------------


def start_server(tmp_path, files, **kwargs):
    server = PataServer(
        roots=[str(f) for f in files],
        socket_path=str(tmp_path / "pata.sock"),
        **kwargs,
    )
    server.start()
    return server


def submit(server, payload, timeout=60):
    with ServeClient(socket_path=server.socket_path, timeout=timeout) as client:
        return client.request(payload)


def drain(server):
    server.request_shutdown()
    server.serve_forever()
    server.close()


class TestDaemon:
    def test_check_module_matches_one_shot(self, tmp_path, buggy_file, clean_file):
        server = start_server(tmp_path, [buggy_file, clean_file])
        try:
            expected = one_shot_output(
                [(str(buggy_file), BUGGY), (str(clean_file), CLEAN)])
            response = submit(server, {"op": "check_module"})
            assert response["ok"]
            assert response["output"] == expected
            assert response["exit_code"] == 1
            assert response["bugs"] == 1
            assert response["reports"][0]["kind"] == "NPD"
            assert response["serve"]["queue_wait_seconds"] >= 0.0
            assert response["stats"]["queue_wait_seconds"] >= 0.0
            assert "per_entry" not in response["stats"]
        finally:
            drain(server)

    def test_warm_request_is_fully_cached(self, tmp_path, buggy_file):
        server = start_server(tmp_path, [buggy_file])
        try:
            cold = submit(server, {"op": "check_module"})
            warm = submit(server, {"op": "check_module"})
            assert cold["output"] == warm["output"]
            assert cold["serve"]["entries_reanalyzed"] > 0
            assert cold["serve"]["replayed"] is False
            assert warm["serve"]["entries_reanalyzed"] == 0
            assert warm["serve"]["cache_misses"] == 0
            assert warm["serve"]["replayed"] is True
            assert warm["serve"]["requests_served"] == 2
            assert warm["serve"]["resident_cache_entries"] > 0
        finally:
            drain(server)

    def test_check_files_subset(self, tmp_path, buggy_file, clean_file):
        server = start_server(tmp_path, [buggy_file, clean_file])
        try:
            response = submit(
                server, {"op": "check_module", "files": [str(clean_file)]})
            assert response["ok"]
            assert response["bugs"] == 0
            assert response["output"] == one_shot_output([(str(clean_file), CLEAN)])
        finally:
            drain(server)

    def test_check_diff_overlay_matches_disk(self, tmp_path, buggy_file, clean_file):
        server = start_server(tmp_path, [buggy_file, clean_file])
        try:
            edited = BUGGY.replace("int f", "int h")
            response = submit(
                server, {"op": "check_diff", "overlay": {str(clean_file): edited}})
            assert response["ok"]
            assert response["output"] == one_shot_output(
                [(str(buggy_file), BUGGY), (str(clean_file), edited)])
            # The overlay never touched the resident entries for the
            # on-disk contents: a plain check still matches the disk.
            plain = submit(server, {"op": "check_module"})
            assert plain["output"] == one_shot_output(
                [(str(buggy_file), BUGGY), (str(clean_file), CLEAN)])
        finally:
            drain(server)

    def test_per_entry_stats_opt_in(self, tmp_path, buggy_file):
        server = start_server(tmp_path, [buggy_file])
        try:
            response = submit(server, {"op": "check_module", "per_entry": True})
            assert response["stats"]["per_entry"]
        finally:
            drain(server)

    def test_status_endpoint(self, tmp_path, buggy_file):
        server = start_server(tmp_path, [buggy_file])
        try:
            submit(server, {"op": "check_module"})
            status = submit(server, {"op": "status"})
            assert status["ok"]
            assert status["requests_served"] == 1
            assert status["sessions_reset"] == 0
            assert status["queue_depth"] == 0
            assert status["resident_cache"]["objects"] > 0
            assert status["resident_cache"]["bytes"] > 0
            assert status["uptime_seconds"] >= 0.0
            assert status["watch"] is False
        finally:
            drain(server)

    def test_shutdown_drains_queued_requests(self, tmp_path, buggy_file):
        """Requests pipelined ahead of a shutdown still get answered;
        afterwards the listener is gone and the scheduler has exited."""
        server = start_server(tmp_path, [buggy_file])
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(server.socket_path)
        rfile = sock.makefile("rb")
        try:
            for ident, op in ((1, "check_module"), (2, "check_module"),
                              (3, "shutdown")):
                sock.sendall(encode({"op": op, "id": ident}))
            responses = {}
            for _ in range(3):
                responses.update({r["id"]: r for r in [decode(rfile.readline())]})
            assert set(responses) == {1, 2, 3}
            assert all(r["ok"] for r in responses.values())
            assert responses[3]["op"] == "shutdown"
        finally:
            rfile.close()
            sock.close()
        server.serve_forever()  # returns: scheduler drained
        with pytest.raises(OSError):
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(server.socket_path)
            finally:
                probe.close()
        server.close()

    def test_sigterm_path_drains(self, tmp_path, buggy_file):
        """``request_shutdown`` is the SIGTERM handler's body — the
        serve_forever loop must unwind without any client involved."""
        server = start_server(tmp_path, [buggy_file])
        server.request_shutdown()
        server.serve_forever()
        server.close()

    def test_protocol_error_responses(self, tmp_path, buggy_file):
        server = start_server(tmp_path, [buggy_file])
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(server.socket_path)
        rfile = sock.makefile("rb")
        try:
            sock.sendall(b"this is not json\n")
            error = decode(rfile.readline())
            assert not error["ok"] and "invalid JSON" in error["error"]
            sock.sendall(encode({"op": "frobnicate", "id": 9}))
            error = decode(rfile.readline())
            assert not error["ok"] and "unknown op" in error["error"]
        finally:
            rfile.close()
            sock.close()
            drain(server)

    def test_user_error_keeps_session(self, tmp_path, buggy_file):
        """A missing file is the client's problem: error response, no
        session reset, and the resident cache keeps serving."""
        server = start_server(tmp_path, [buggy_file])
        try:
            submit(server, {"op": "check_module"})
            session_before = server.session
            response = submit(
                server,
                {"op": "check_module", "files": [str(tmp_path / "gone.c")]})
            assert not response["ok"]
            assert server.session is session_before
            assert server.sessions_reset == 0
            warm = submit(server, {"op": "check_module"})
            assert warm["ok"] and warm["serve"]["entries_reanalyzed"] == 0
        finally:
            drain(server)

    def test_crash_degrades_to_fresh_session(self, tmp_path, buggy_file):
        server = start_server(tmp_path, [buggy_file])
        try:
            expected = submit(server, {"op": "check_module"})["output"]

            def explode(paths, overlay=None):
                raise RuntimeError("resident state corrupted")

            server.session.analyze_paths = explode
            response = submit(server, {"op": "check_module"})
            assert not response["ok"]
            assert "RuntimeError" in response["error"]
            assert server.sessions_reset == 1
            # The replacement session answers correctly (cold, but right).
            recovered = submit(server, {"op": "check_module"})
            assert recovered["ok"]
            assert recovered["output"] == expected
            assert recovered["serve"]["entries_reanalyzed"] > 0
        finally:
            drain(server)

    def test_timeout_degrades_to_fresh_session(self, tmp_path, buggy_file):
        server = start_server(tmp_path, [buggy_file], request_timeout=0.2)
        try:
            release = threading.Event()
            stuck = server.session

            def stall(paths, overlay=None):
                release.wait(30)
                return Session().analyze_paths(paths, overlay)

            stuck.analyze_paths = stall
            response = submit(server, {"op": "check_module"})
            release.set()  # let the abandoned thread finish and exit
            assert not response["ok"]
            assert response["timed_out"] is True
            assert server.requests_timed_out == 1
            assert server.sessions_reset == 1
            assert server.session is not stuck
            recovered = submit(server, {"op": "check_module"})
            assert recovered["ok"] and recovered["exit_code"] == 1
        finally:
            drain(server)

    def test_identical_queued_requests_coalesce(self, tmp_path, buggy_file, clean_file):
        server = start_server(tmp_path, [buggy_file, clean_file])
        try:
            release = threading.Event()
            original = server.session.analyze_paths
            state = {"first": True}

            def gated(paths, overlay=None):
                if state["first"]:
                    state["first"] = False
                    release.wait(30)
                return original(paths, overlay)

            server.session.analyze_paths = gated
            results = [None] * 4

            def client(i):
                results[i] = submit(server, {"op": "check_module"})

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(4)]
            threads[0].start()
            # Wait until the scheduler is inside request 0, then pile
            # three identical requests into the queue behind it.
            while state["first"]:
                time.sleep(0.005)
            for thread in threads[1:]:
                thread.start()
            deadline = time.monotonic() + 10
            while True:
                with server._cond:
                    if len(server._queue) == 3:
                        break
                assert time.monotonic() < deadline
                time.sleep(0.005)
            release.set()
            for thread in threads:
                thread.join(30)
            assert all(r["ok"] for r in results)
            assert len({r["output"] for r in results}) == 1
            assert server.requests_coalesced == 2
            coalesced = sorted(r["serve"]["coalesced"] for r in results)
            assert coalesced == [0, 2, 2, 2]  # run 1: solo; run 2: group of 3
        finally:
            drain(server)

    def test_watch_reanalyzes_dirtied_closure(self, tmp_path, buggy_file, clean_file):
        server = start_server(tmp_path, [buggy_file, clean_file],
                              watch=True, poll_interval=0.05)
        try:
            submit(server, {"op": "check_module"})  # warm
            clean_file.write_text(BUGGY.replace("int f", "int h"))
            deadline = time.monotonic() + 20
            while server.watch_runs == 0:
                assert time.monotonic() < deadline, "watch never fired"
                time.sleep(0.02)
            # The watch job already re-analyzed exactly the dirtied
            # module's entries, so a client request right after is warm
            # *and* sees the edit.
            response = submit(server, {"op": "check_module"})
            assert response["serve"]["entries_reanalyzed"] == 0
            assert response["bugs"] == 2
            assert response["output"] == one_shot_output(
                [(str(buggy_file), BUGGY),
                 (str(clean_file), clean_file.read_text())])
        finally:
            drain(server)


# -- byte-identity across configs (tiers x workers) and concurrency ----------


TIER_WORKER_GRID = [("off", 1), ("steens", 1), ("flow", 1),
                    ("off", 4), ("steens", 4), ("flow", 4)]


class TestByteIdentity:
    @pytest.mark.parametrize("tier,workers", TIER_WORKER_GRID)
    def test_daemon_matches_cli_across_configs(self, tmp_path, buggy_file,
                                               clean_file, race_file,
                                               tier, workers, capsys):
        files = [buggy_file, clean_file, race_file]
        args = ["check", "--all-checkers", "--no-prune",
                "--alias-tier", tier, "--workers", str(workers)]
        exit_code = main(args + [str(f) for f in files])
        expected = capsys.readouterr().out
        config = AnalysisConfig(alias_tier=tier, workers=workers, prune=False)
        server = start_server(tmp_path, files, config=config,
                              checker_spec="all")
        try:
            for _ in range(2):  # cold, then warm — both must match
                response = submit(server, {"op": "check_module"})
                assert response["ok"]
                assert response["output"] == expected
                assert response["exit_code"] == exit_code
        finally:
            drain(server)

    def test_concurrent_clients_same_and_overlapping(self, tmp_path,
                                                     buggy_file, clean_file):
        """Eight clients hammer one daemon with the full set, each
        subset, and a diff overlay; every response must equal the
        one-shot output for its request."""
        both = [str(buggy_file), str(clean_file)]
        edited = BUGGY.replace("int f", "int h")
        expected = {
            "both": one_shot_output([(both[0], BUGGY), (both[1], CLEAN)]),
            "buggy": one_shot_output([(both[0], BUGGY)]),
            "clean": one_shot_output([(both[1], CLEAN)]),
            "diff": one_shot_output([(both[0], BUGGY), (both[1], edited)]),
        }
        jobs = [
            ("both", {"op": "check_module"}),
            ("buggy", {"op": "check_module", "files": [both[0]]}),
            ("clean", {"op": "check_module", "files": [both[1]]}),
            ("diff", {"op": "check_diff", "overlay": {both[1]: edited}}),
        ] * 2
        server = start_server(tmp_path, [buggy_file, clean_file])
        try:
            results = [None] * len(jobs)

            def client(i, payload):
                results[i] = submit(server, dict(payload))

            threads = [threading.Thread(target=client, args=(i, payload))
                       for i, (_, payload) in enumerate(jobs)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            for (name, _), response in zip(jobs, results):
                assert response is not None and response["ok"]
                assert response["output"] == expected[name], name
            status = submit(server, {"op": "status"})
            assert status["requests_served"] == len(jobs)
        finally:
            drain(server)


# -- stats schema -------------------------------------------------------------


class TestStatsSchema:
    def test_new_fields_default_to_zero(self):
        stats = AnalysisStats().to_dict()
        assert stats["queue_wait_seconds"] == 0.0
        assert stats["requests_served"] == 0
        assert stats["resident_cache_entries"] == 0

    def test_one_shot_cli_stats_json_carries_fields(self, tmp_path, buggy_file,
                                                    capsys):
        stats_file = tmp_path / "stats.json"
        main(["check", "--stats-json", str(stats_file), str(buggy_file)])
        capsys.readouterr()
        payload = json.loads(stats_file.read_text())
        assert payload["queue_wait_seconds"] == 0.0
        assert payload["requests_served"] == 0
        assert payload["resident_cache_entries"] == 0


# -- CLI subcommands ----------------------------------------------------------


class TestServeCli:
    def test_serve_rejects_missing_file(self, tmp_path, capsys):
        code = main(["serve", str(tmp_path / "gone.c")])
        assert code == 2
        assert "no such file" in capsys.readouterr().err

    def test_serve_rejects_conflicting_checker_flags(self, buggy_file, capsys):
        code = main(["serve", "--all-checkers", "--checkers", "race",
                     str(buggy_file)])
        assert code == 2

    def test_submit_unreachable_server(self, tmp_path, capsys):
        code = main(["submit", "status",
                     "--socket", str(tmp_path / "nothing.sock")])
        assert code == 2
        assert "cannot reach server" in capsys.readouterr().err

    def test_submit_check_matches_check(self, tmp_path, buggy_file,
                                        clean_file, capsys):
        """End-to-end through the CLI surface: ``submit check_module``
        prints exactly what ``check`` prints and mirrors its exit code."""
        code = main(["check", str(buggy_file), str(clean_file)])
        expected = capsys.readouterr().out
        server = start_server(tmp_path, [buggy_file, clean_file])
        try:
            submit_code = main(["submit", "check_module",
                                "--socket", server.socket_path])
            out = capsys.readouterr().out
            assert out == expected
            assert submit_code == code == 1
            status_code = main(["submit", "status", "--json",
                                "--socket", server.socket_path])
            status = json.loads(capsys.readouterr().out)
            assert status_code == 0 and status["ok"]
            shutdown_code = main(["submit", "shutdown",
                                  "--socket", server.socket_path])
            payload = json.loads(capsys.readouterr().out)
            assert shutdown_code == 0 and payload["op"] == "shutdown"
            server.serve_forever()
        finally:
            server.close()

    def test_submit_check_diff_reads_client_side(self, tmp_path, buggy_file,
                                                 clean_file, capsys):
        server = start_server(tmp_path, [buggy_file, clean_file])
        try:
            code = main(["submit", "check_diff", str(clean_file),
                         "--socket", server.socket_path])
            out = capsys.readouterr().out
            assert code == 1  # root set still includes the buggy file
            assert out == one_shot_output(
                [(str(buggy_file), BUGGY), (str(clean_file), CLEAN)])
        finally:
            drain(server)
