"""Robustness properties: the pipeline must never crash on valid input.

Random corpora (any seed, any profile shape) and random trail usage must
run to completion; analysis failures are only ever *budget* outcomes,
never exceptions.
"""

import random

from hypothesis import given, settings, strategies as st

from repro import PATA, AnalysisConfig
from repro.alias import AliasGraph, Trail
from repro.baselines import CoccinelleLike, CppcheckLike, InferLike, SmatchLike
from repro.corpus import OSProfile, generate
from repro.corpus.patterns import BAIT_PATTERNS, BUG_PATTERNS, FILLER_PATTERNS
from repro.interp import Fault, Machine, run_entry
from repro.lang import compile_program
from repro.smt import solve, translate_trace


def _random_profile(seed: int) -> OSProfile:
    rng = random.Random(seed)
    return OSProfile(
        name=f"fuzz{seed}",
        version_label="0",
        seed=seed,
        layout=[
            ("drivers", "drivers", 0.5),
            ("net", "network", 0.3),
            ("pkg", "third_party", 0.2),
        ],
        total_files=rng.randint(1, 5),
        snippets_per_file=(1, rng.randint(2, 5)),
        bug_rate={"drivers": 0.3, "network": 0.2, "third_party": 0.3},
        bait_rate=0.6,
        excluded_fraction=rng.choice([0.0, 0.2]),
    )


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_pata_never_crashes_on_random_corpora(seed):
    corpus = generate(_random_profile(seed))
    program = compile_program(corpus.compiled_sources())
    result = PATA.with_all_checkers(
        config=AnalysisConfig(max_paths_per_entry=200, max_steps_per_entry=50_000)
    ).analyze(program)
    assert result.stats.explored_paths >= 0


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_baselines_never_crash_on_random_corpora(seed):
    corpus = generate(_random_profile(seed))
    program = compile_program(corpus.all_sources())
    for tool in (CppcheckLike(), CoccinelleLike(), SmatchLike(), InferLike()):
        result = tool.analyze(program)
        assert result.status in ("ok", "oom")


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=-3, max_value=3))
def test_interpreter_contains_all_entry_faults(seed, int_arg):
    """Running any entry of a random corpus either completes or raises a
    typed Fault — never an arbitrary Python exception."""
    corpus = generate(_random_profile(seed))
    program = compile_program(corpus.compiled_sources())
    from repro.core import InformationCollector
    from repro.ir import PointerType

    collector = InformationCollector(program)
    for entry in collector.entry_functions()[:6]:
        machine = Machine(program, fuel=20_000)
        args = [
            0 if isinstance(p.type, PointerType) else int_arg
            for p in entry.params
        ]
        try:
            machine.call(entry, args)
        except Fault:
            pass  # typed faults are the contract


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_pattern_snippets_always_compile(seed):
    rng = random.Random(seed)
    pools = [fn for fns in BUG_PATTERNS.values() for fn in fns] + BAIT_PATTERNS + FILLER_PATTERNS
    fn = rng.choice(pools)
    snippet = fn(f"z{seed}", rng)
    from repro.corpus.patterns import COMMON_DECLS

    source = COMMON_DECLS + "\n" + "\n".join(snippet.lines) + "\n"
    program = compile_program([("f.c", source)])
    assert len(list(program.functions())) >= 1


def test_trail_interleaved_marks():
    trail = Trail()
    graph = AliasGraph(trail)
    from repro.ir import INT, PointerType, Var

    a = Var("a", PointerType(INT))
    b = Var("b", PointerType(INT))
    marks = []
    for depth in range(10):
        marks.append(trail.mark())
        graph.handle_move(a, b)
        graph.handle_store(b, a)
    for mark in reversed(marks):
        trail.undo_to(mark)
    assert not graph.are_aliases(a, b) or graph.node_of_name("a") is None


def test_solver_handles_duplicate_and_redundant_atoms():
    from repro.smt import Atom, Num, Sym

    atoms = [Atom("eq", Sym(1), Num(5))] * 10 + [Atom("le", Sym(1), Num(5))] * 5
    sol = solve(atoms)
    assert sol.is_sat and sol.model[1] == 5


def test_translate_empty_trace():
    t = translate_trace(())
    assert t.atoms == [] and solve(t.atoms).is_sat
