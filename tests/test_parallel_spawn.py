"""Forced-spawn executor differential suite.

Linux CI (and any fork-capable platform) exercises the zero-copy fork
path by default, so the spawn path — program unpickled once per worker,
collector facts and dead-block masks shipped from the parent instead of
re-derived — would otherwise only run on Windows/macOS machines nobody
tests on.  ``AnalysisConfig(parallel_start_method="spawn")`` forces it
everywhere; these tests assert the spawn executor's reports are
byte-identical to sequential for every checker-spec string, exactly
like the fork-path suite in ``test_taint_differential.py``.

Spawn costs one interpreter start per worker, so the suite keeps the
corpus small and the pool at two workers.
"""

import pytest

from repro import PATA, AnalysisConfig
from repro.corpus import RACELAB, TAINTLAB, generate
from repro.lang import compile_program
from repro.typestate import CHECKER_NAMES

SPECS = list(CHECKER_NAMES) + ["default", "all", "all,taint,race"]


@pytest.fixture(scope="module")
def mixed_program():
    """Taint- and race-heavy corpora so every spec has events to react
    to, including P2.5's cross-entry access matching."""
    sources = []
    sources.extend(generate(TAINTLAB).compiled_sources())
    sources.extend(generate(RACELAB).compiled_sources())
    return compile_program(sources)


def _render(result):
    return [r.render() for r in result.reports]


def _spawn_config(**kw):
    return AnalysisConfig(workers=2, parallel_start_method="spawn", **kw)


@pytest.mark.slow
@pytest.mark.parametrize("spec", SPECS)
def test_spawn_workers_byte_identical_reports(mixed_program, spec):
    sequential = PATA(
        checker_spec=spec, config=AnalysisConfig(workers=1)
    ).analyze(mixed_program)
    spawned = PATA(checker_spec=spec, config=_spawn_config()).analyze(mixed_program)
    assert spawned.stats.workers_used == 2
    assert _render(sequential) == _render(spawned)
    assert sequential.stats.explored_paths == spawned.stats.explored_paths
    assert sequential.stats.dropped_repeated_bugs == spawned.stats.dropped_repeated_bugs
    assert sequential.stats.entries_skipped == spawned.stats.entries_skipped


@pytest.mark.slow
def test_spawn_respects_explicit_batch_size(mixed_program):
    """An explicit one-entry batch size maximizes stealing and must not
    change a single report byte."""
    sequential = PATA(
        checker_spec="all", config=AnalysisConfig(workers=1)
    ).analyze(mixed_program)
    spawned = PATA(
        checker_spec="all", config=_spawn_config(parallel_batch_size=1)
    ).analyze(mixed_program)
    assert spawned.stats.batches_dispatched == spawned.stats.entry_functions - spawned.stats.entries_skipped
    assert _render(sequential) == _render(spawned)


@pytest.mark.slow
@pytest.mark.parametrize("tier", ["off", "steens", "flow"])
def test_spawn_alias_tier_byte_identical_reports(mixed_program, tier):
    """The P1.7 partition and P1.8 flow facts ride to spawn workers
    through the initargs pickle (fork inherits them zero-copy, so only
    this suite exercises the pickled path — including MustAliasFacts'
    ``__reduce__``, which must rebuild its memo dicts empty).  Every
    tier must match the sequential run of the same tier."""
    sequential = PATA(
        checker_spec="all", config=AnalysisConfig(workers=1, alias_tier=tier)
    ).analyze(mixed_program)
    spawned = PATA(
        checker_spec="all", config=_spawn_config(alias_tier=tier)
    ).analyze(mixed_program)
    assert spawned.stats.workers_used == 2
    assert _render(sequential) == _render(spawned)
    assert sequential.stats.explored_paths == spawned.stats.explored_paths
    if tier == "off":
        assert spawned.stats.singletons_proven == 0
        assert spawned.stats.must_singletons == 0
    else:
        assert spawned.stats.singletons_proven > 0
        if tier == "flow":
            assert spawned.stats.must_singletons > 0


@pytest.mark.slow
def test_spawn_tier_ladder_byte_identical(mixed_program):
    runs = {
        tier: PATA(
            checker_spec="all", config=_spawn_config(alias_tier=tier)
        ).analyze(mixed_program)
        for tier in ("off", "steens", "flow")
    }
    baseline = _render(runs["off"])
    assert _render(runs["steens"]) == baseline
    assert _render(runs["flow"]) == baseline


@pytest.mark.slow
def test_spawn_with_no_prune_matches_sequential(mixed_program):
    """``prune=False`` ships no dead-block masks (relevance is None on
    both sides); the spawn world must degrade identically."""
    sequential = PATA(
        checker_spec="default", config=AnalysisConfig(workers=1, prune=False)
    ).analyze(mixed_program)
    spawned = PATA(
        checker_spec="default", config=_spawn_config(prune=False)
    ).analyze(mixed_program)
    assert _render(sequential) == _render(spawned)
    assert sequential.stats.explored_paths == spawned.stats.explored_paths
