"""Tier differential: ``alias_tier`` on vs off must not change a byte.

The P1.7 partition licenses three skip paths (per-path singleton fast
path, cell-level trace translation, shared-access sharpening of the
relevance masks) plus the tier-gated per-entry dispatch restriction.
All of them claim soundness *by construction* — so the whole suite is
one assertion repeated across every axis that could break it:

* every checker-spec string (each checker consumes different events);
* workers 1 and 4 (the partition ships to workers by fork or pickle);
* cold and warm incremental cache (the partition is itself a cached
  layer, and cached entry results must not leak tier-dependent state).
"""

import pytest

from repro import PATA, AnalysisConfig
from repro.corpus import PROFILES_BY_NAME, RACELAB, TAINTLAB, generate
from repro.incremental import compile_with_cache, open_store
from repro.lang import compile_program
from repro.typestate import CHECKER_NAMES

SPECS = list(CHECKER_NAMES) + [
    "default", "all", "default,race", "all,taint", "all,taint,race",
]


def _mixed_sources():
    """Taint- and race-heavy corpora plus a slice of the mixed-kind
    tencentos corpus — same recipe as the taint differential, so every
    checker in every spec has events to react to."""
    sources = []
    sources.extend(generate(TAINTLAB).compiled_sources())
    sources.extend(generate(RACELAB).compiled_sources())
    tencentos = PROFILES_BY_NAME["tencentos"].scaled(0.35)
    sources.extend(generate(tencentos).compiled_sources())
    return sources


@pytest.fixture(scope="module")
def mixed_program():
    return compile_program(_mixed_sources())


def _render(result):
    return [r.render() for r in result.reports]


def _run(program, spec="all", tier=True, workers=1):
    config = AnalysisConfig(alias_tier=tier, workers=workers)
    return PATA(checker_spec=spec, config=config).analyze(program)


@pytest.mark.parametrize("spec", SPECS)
def test_tier_on_off_byte_identical_per_spec(mixed_program, spec):
    on = _run(mixed_program, spec=spec, tier=True)
    off = _run(mixed_program, spec=spec, tier=False)
    assert _render(on) == _render(off)
    # The differential is only meaningful if the tier actually engaged.
    assert on.stats.singletons_proven > 0
    assert on.stats.alias_cells > 0
    assert off.stats.singletons_proven == 0
    assert off.stats.alias_cells == 0


@pytest.mark.parametrize("workers", [1, 4])
def test_tier_on_off_byte_identical_across_workers(mixed_program, workers):
    on = _run(mixed_program, tier=True, workers=workers)
    off = _run(mixed_program, tier=False, workers=workers)
    if workers > 1:
        assert on.stats.workers_used > 1
        assert off.stats.workers_used > 1
    assert _render(on) == _render(off)
    assert on.stats.singletons_proven > 0


def test_tier_reports_identical_parallel_vs_sequential(mixed_program):
    """The partition rides to workers fork- or pickle-shipped; either
    way the parallel tier-on run must match the sequential one."""
    sequential = _run(mixed_program, tier=True, workers=1)
    parallel = _run(mixed_program, tier=True, workers=4)
    assert parallel.stats.workers_used > 1
    assert _render(sequential) == _render(parallel)
    assert sequential.stats.singletons_proven == parallel.stats.singletons_proven
    assert sequential.stats.alias_cells == parallel.stats.alias_cells


def _cached_run(sources, cache_dir, tier):
    config = AnalysisConfig(
        alias_tier=tier, cache_dir=cache_dir, cache_mode="rw"
    )
    store = open_store(cache_dir, "rw")
    program = compile_with_cache(sources, store)
    if store is not None:
        store.commit()
    return PATA(config=config, checker_spec="all").analyze(program)


def test_tier_on_off_byte_identical_cold_and_warm(tmp_path):
    """Four runs — {tier on, tier off} × {cold, warm} — one report
    text.  Tier state lives in the cache fingerprints, so a warm tier-on
    run over a tier-off cache (and vice versa) must re-derive rather
    than replay; separate cache dirs per tier keep this test about the
    byte-identity contract, the fingerprint isolation is asserted
    below."""
    sources = _mixed_sources()
    dir_on = str(tmp_path / "on")
    dir_off = str(tmp_path / "off")

    cold_on = _cached_run(sources, dir_on, tier=True)
    cold_off = _cached_run(sources, dir_off, tier=False)
    warm_on = _cached_run(sources, dir_on, tier=True)
    warm_off = _cached_run(sources, dir_off, tier=False)

    baseline = _render(cold_on)
    assert baseline  # vacuous otherwise
    assert _render(cold_off) == baseline
    assert _render(warm_on) == baseline
    assert _render(warm_off) == baseline

    # Warm runs replayed from the cache rather than re-exploring.
    assert any(row.cached for row in warm_on.stats.per_entry)
    assert any(row.cached for row in warm_off.stats.per_entry)


def test_tier_flip_on_shared_cache_is_safe(tmp_path):
    """Flipping the tier over one cache directory must stay
    byte-identical: entry fingerprints include ``alias_tier``, so a
    tier-off run never replays tier-on entries (or vice versa) — and
    report text never changes either way."""
    sources = _mixed_sources()
    cache_dir = str(tmp_path / "shared")

    first = _cached_run(sources, cache_dir, tier=True)
    flipped = _cached_run(sources, cache_dir, tier=False)
    back = _cached_run(sources, cache_dir, tier=True)

    baseline = _render(first)
    assert baseline
    assert _render(flipped) == baseline
    assert _render(back) == baseline
    # The third run replays the first run's entries (same fingerprints).
    assert any(row.cached for row in back.stats.per_entry)
