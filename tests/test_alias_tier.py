"""Tier-ladder differential: no rung of ``--alias-tier`` changes a byte.

The P1.7 partition licenses three skip paths (per-path singleton fast
path, cell-level trace translation, shared-access sharpening of the
relevance masks); the P1.8 flow tier adds three strict generalizations
(per-entry closure skip sets in graph and translator, must-not-alias
taint sharpening).  All of them claim soundness *by construction* — so
the whole suite is one assertion repeated across every axis that could
break it:

* the full tier ladder ``off`` × ``steens`` × ``flow``;
* every checker-spec string (each checker consumes different events);
* workers 1 and 4 (partition + flow facts ship by fork or pickle);
* cold and warm incremental cache (both are cached layers, and cached
  entry results must not leak tier-dependent state).
"""

import pytest

from repro import PATA, AnalysisConfig
from repro.corpus import PROFILES_BY_NAME, RACELAB, TAINTLAB, generate
from repro.incremental import compile_with_cache, open_store
from repro.lang import compile_program
from repro.typestate import CHECKER_NAMES

TIERS = ("off", "steens", "flow")

SPECS = list(CHECKER_NAMES) + [
    "default", "all", "default,race", "all,taint", "all,taint,race",
]


def _mixed_sources():
    """Taint- and race-heavy corpora plus a slice of the mixed-kind
    tencentos corpus — same recipe as the taint differential, so every
    checker in every spec has events to react to."""
    sources = []
    sources.extend(generate(TAINTLAB).compiled_sources())
    sources.extend(generate(RACELAB).compiled_sources())
    tencentos = PROFILES_BY_NAME["tencentos"].scaled(0.35)
    sources.extend(generate(tencentos).compiled_sources())
    return sources


@pytest.fixture(scope="module")
def mixed_program():
    return compile_program(_mixed_sources())


def _render(result):
    return [r.render() for r in result.reports]


def _run(program, spec="all", tier="flow", workers=1):
    config = AnalysisConfig(alias_tier=tier, workers=workers)
    return PATA(checker_spec=spec, config=config).analyze(program)


def _assert_engagement(result, tier):
    """The differential is only meaningful if each rung actually
    engaged: P1.7 figures above ``off``, P1.8 figures only at ``flow``."""
    if tier == "off":
        assert result.stats.singletons_proven == 0
        assert result.stats.alias_cells == 0
        assert result.stats.must_singletons == 0
        assert result.stats.strong_updates == 0
    else:
        assert result.stats.singletons_proven > 0
        assert result.stats.alias_cells > 0
        if tier == "steens":
            assert result.stats.must_singletons == 0
        else:
            assert result.stats.must_singletons > 0
            assert result.stats.time_flow_seconds >= 0.0


@pytest.mark.parametrize("spec", SPECS)
def test_tier_ladder_byte_identical_per_spec(mixed_program, spec):
    results = {tier: _run(mixed_program, spec=spec, tier=tier) for tier in TIERS}
    baseline = _render(results["off"])
    for tier in TIERS:
        assert _render(results[tier]) == baseline
        _assert_engagement(results[tier], tier)


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("tier", TIERS)
def test_tier_ladder_byte_identical_across_workers(mixed_program, tier, workers):
    run = _run(mixed_program, tier=tier, workers=workers)
    off = _run(mixed_program, tier="off", workers=workers)
    if workers > 1:
        assert run.stats.workers_used > 1
        assert off.stats.workers_used > 1
    assert _render(run) == _render(off)
    _assert_engagement(run, tier)


@pytest.mark.parametrize("tier", ["steens", "flow"])
def test_tier_reports_identical_parallel_vs_sequential(mixed_program, tier):
    """Partition and flow facts ride to workers fork- or pickle-shipped;
    either way the parallel run must match the sequential one."""
    sequential = _run(mixed_program, tier=tier, workers=1)
    parallel = _run(mixed_program, tier=tier, workers=4)
    assert parallel.stats.workers_used > 1
    assert _render(sequential) == _render(parallel)
    assert sequential.stats.singletons_proven == parallel.stats.singletons_proven
    assert sequential.stats.alias_cells == parallel.stats.alias_cells
    assert sequential.stats.must_singletons == parallel.stats.must_singletons
    assert sequential.stats.strong_updates == parallel.stats.strong_updates


def test_tier_back_compat_spellings(mixed_program):
    """The pre-ladder boolean spellings still work: ``True``/``"on"``
    normalize to ``steens``, ``False`` to ``off`` — same reports, same
    engagement figures as their canonical spelling."""
    assert AnalysisConfig(alias_tier=True).alias_tier == "steens"
    assert AnalysisConfig(alias_tier="on").alias_tier == "steens"
    assert AnalysisConfig(alias_tier=False).alias_tier == "off"
    with pytest.raises(ValueError):
        AnalysisConfig(alias_tier="bogus")
    legacy = _run(mixed_program, tier=True)
    canonical = _run(mixed_program, tier="steens")
    assert _render(legacy) == _render(canonical)
    assert legacy.stats.singletons_proven == canonical.stats.singletons_proven
    assert legacy.stats.must_singletons == 0


def _cached_run(sources, cache_dir, tier):
    config = AnalysisConfig(
        alias_tier=tier, cache_dir=cache_dir, cache_mode="rw"
    )
    store = open_store(cache_dir, "rw")
    program = compile_with_cache(sources, store)
    if store is not None:
        store.commit()
    return PATA(config=config, checker_spec="all").analyze(program)


def test_tier_ladder_byte_identical_cold_and_warm(tmp_path):
    """Six runs — three tiers × {cold, warm} — one report text.  Tier
    state lives in the cache fingerprints, so a warm run at one tier
    over another tier's cache must re-derive rather than replay;
    separate cache dirs per tier keep this test about the byte-identity
    contract, the fingerprint isolation is asserted below."""
    sources = _mixed_sources()
    cold = {}
    warm = {}
    for tier in TIERS:
        cache_dir = str(tmp_path / tier)
        cold[tier] = _cached_run(sources, cache_dir, tier)
        warm[tier] = _cached_run(sources, cache_dir, tier)

    baseline = _render(cold["off"])
    assert baseline  # vacuous otherwise
    for tier in TIERS:
        assert _render(cold[tier]) == baseline
        assert _render(warm[tier]) == baseline
        # Warm runs replayed from the cache rather than re-exploring.
        assert any(row.cached for row in warm[tier].stats.per_entry)
    # The warm flow run replays its facts from the cache layer: the P1.8
    # phase is a hit, so its wall clock collapses while the engagement
    # figures survive (they ride inside the pickled facts).
    assert warm["flow"].stats.must_singletons == cold["flow"].stats.must_singletons
    assert warm["flow"].stats.strong_updates == cold["flow"].stats.strong_updates


def test_tier_flip_on_shared_cache_is_safe(tmp_path):
    """Walking the ladder over one cache directory must stay
    byte-identical: entry fingerprints include ``alias_tier``, so a run
    at one tier never replays another tier's entries — and report text
    never changes either way."""
    sources = _mixed_sources()
    cache_dir = str(tmp_path / "shared")

    first = _cached_run(sources, cache_dir, "flow")
    down = _cached_run(sources, cache_dir, "steens")
    bottom = _cached_run(sources, cache_dir, "off")
    back = _cached_run(sources, cache_dir, "flow")

    baseline = _render(first)
    assert baseline
    assert _render(down) == baseline
    assert _render(bottom) == baseline
    assert _render(back) == baseline
    # The return run replays the first run's entries (same fingerprints).
    assert any(row.cached for row in back.stats.per_entry)
