"""Term evaluation / folding semantics (C-style integer arithmetic)."""

import pytest
from hypothesis import given, strategies as st

from repro.smt import App, Atom, Num, Sym, eval_atom, eval_term, fold
from repro.smt.terms import NEGATED_REL, SWAPPED_REL, _trunc_div


def test_eval_constants_and_symbols():
    assert eval_term(Num(5), {}) == 5
    assert eval_term(Sym(1), {1: 9}) == 9
    assert eval_term(Sym(1), {}) is None  # unbound


def test_eval_arithmetic():
    env = {1: 7, 2: 3}
    assert eval_term(App("add", (Sym(1), Sym(2))), env) == 10
    assert eval_term(App("sub", (Sym(1), Sym(2))), env) == 4
    assert eval_term(App("mul", (Sym(1), Sym(2))), env) == 21
    assert eval_term(App("neg", (Sym(1),)), env) == -7


def test_division_truncates_toward_zero():
    # C semantics: -7 / 2 == -3, not -4.
    assert _trunc_div(-7, 2) == -3
    assert _trunc_div(7, -2) == -3
    assert eval_term(App("div", (Num(-7), Num(2))), {}) == -3
    assert eval_term(App("mod", (Num(-7), Num(2))), {}) == -1


def test_division_by_zero_yields_none():
    assert eval_term(App("div", (Num(1), Num(0))), {}) is None
    assert eval_term(App("mod", (Num(1), Num(0))), {}) is None


def test_bitwise_operators():
    assert eval_term(App("and", (Num(12), Num(10))), {}) == 8
    assert eval_term(App("or", (Num(12), Num(10))), {}) == 14
    assert eval_term(App("xor", (Num(12), Num(10))), {}) == 6
    assert eval_term(App("shl", (Num(1), Num(4))), {}) == 16
    assert eval_term(App("shr", (Num(16), Num(2))), {}) == 4


def test_eval_atom_relations():
    assert eval_atom(Atom("lt", Num(1), Num(2)), {}) is True
    assert eval_atom(Atom("ge", Num(1), Num(2)), {}) is False
    assert eval_atom(Atom("ne", Sym(1), Num(0)), {1: 0}) is False


def test_eval_atom_unbound_is_none():
    assert eval_atom(Atom("eq", Sym(5), Num(0)), {}) is None


def test_fold_collapses_constant_trees():
    term = App("add", (App("mul", (Num(3), Num(4))), Num(1)))
    assert fold(term) == Num(13)


def test_fold_keeps_symbolic_parts():
    term = App("add", (Sym(1), Num(0)))
    folded = fold(term)
    assert isinstance(folded, App)


def test_fold_preserves_div_by_zero():
    term = App("div", (Num(1), Num(0)))
    assert isinstance(fold(term), App)  # not folded into a bogus Num


def test_atom_negation_table_is_involutive():
    for op, neg in NEGATED_REL.items():
        assert NEGATED_REL[neg] == op


def test_atom_swap_table_consistent():
    # a op b  <=>  b swapped(op) a, checked numerically.
    for op, swapped in SWAPPED_REL.items():
        for a in (-1, 0, 2):
            for b in (-1, 0, 2):
                assert eval_atom(Atom(op, Num(a), Num(b)), {}) == eval_atom(
                    Atom(swapped, Num(b), Num(a)), {}
                )


def test_atom_rejects_unknown_op():
    with pytest.raises(ValueError):
        Atom("almost_eq", Num(1), Num(1))


def test_free_symbols_enumeration():
    atom = Atom("eq", App("add", (Sym(1), Sym(2))), Sym(3))
    assert sorted(atom.free_symbols()) == [1, 2, 3]


@given(st.integers(min_value=-50, max_value=50), st.integers(min_value=-50, max_value=50))
def test_property_trunc_div_matches_c(a, b):
    if b == 0:
        return
    q = _trunc_div(a, b)
    r = a - q * b
    assert a == q * b + r
    assert abs(r) < abs(b)
    # remainder takes the dividend's sign (C99)
    assert r == 0 or (r > 0) == (a > 0)
