"""P2.6 cross-module taint: corpus, matcher, borders, cache, stats.

The firmlab corpus is the acceptance harness: every injected
cross-module flow must be found with zero bait hits, and the reports
must be byte-identical across the alias-tier ladder, worker counts,
start methods, and cold/warm summary caches — P2.6 adds a post-merge
phase, so any ordering leak in summaries or matching shows up here as
a render mismatch.
"""

import pytest

from repro import PATA, AnalysisConfig
from repro.baselines import TaintNaive
from repro.baselines.taint_naive import CROSS_MODULE_PREFIX
from repro.cli import main as cli_main
from repro.core.report import AnalysisStats
from repro.corpus import FIRMLAB, generate
from repro.lang import compile_program
from repro.typestate import BugKind


@pytest.fixture(scope="module")
def firm_corpus():
    return generate(FIRMLAB)


@pytest.fixture(scope="module")
def firm_program(firm_corpus):
    return compile_program(firm_corpus.compiled_sources())


@pytest.fixture(scope="module")
def firm_result(firm_program):
    """The baseline run every differential leg is compared against."""
    return PATA(checker_spec="xtaint").analyze(firm_program)


def _render(result):
    return [r.render() for r in result.reports]


def _cross_flows(corpus):
    """Ground truth reachable without --taint-borders."""
    return [g for g in corpus.ground_truth if not g.requires.border]


def _found_uids(corpus, result):
    hits = [(r.kind, r.sink_file, r.sink_line) for r in result.reports]
    return {
        gt.uid
        for gt in _cross_flows(corpus)
        if any(gt.covers(kind, path, line) for kind, path, line in hits)
    }


def _bait_hits(corpus, hits):
    return [
        (path, line)
        for _, path, line in hits
        if any(
            b.path == path and b.line_start <= line <= b.line_end
            for b in corpus.bait_regions
        )
    ]


# ---------------------------------------------------------------------------
# Corpus: determinism and shape
# ---------------------------------------------------------------------------


def test_firmlab_generation_deterministic(firm_corpus):
    """Same profile ⇒ byte-identical module set, ground truth, and bait
    regions — the cross-module injection post-pass draws from its own
    RNG, so it must be exactly as reproducible as the per-file loop."""
    again = generate(FIRMLAB)
    assert firm_corpus.all_sources() == again.all_sources()
    assert [
        (g.uid, g.kind, g.path, g.line_start, g.line_end)
        for g in firm_corpus.ground_truth
    ] == [
        (g.uid, g.kind, g.path, g.line_start, g.line_end)
        for g in again.ground_truth
    ]
    assert [
        (b.uid, b.path, b.line_start, b.line_end)
        for b in firm_corpus.bait_regions
    ] == [
        (b.uid, b.path, b.line_start, b.line_end) for b in again.bait_regions
    ]


def test_firmlab_quotas(firm_corpus):
    """The profile's cross-module quotas all land: ≥20 cross flows (the
    acceptance floor), plus the border probes, plus bait regions."""
    flows = _cross_flows(firm_corpus)
    borders = [g for g in firm_corpus.ground_truth if g.requires.border]
    assert len(flows) == FIRMLAB.cross_flows >= 20
    assert all(g.requires.cross_module for g in flows)
    assert len(borders) == FIRMLAB.cross_border
    assert len(firm_corpus.bait_regions) >= FIRMLAB.cross_baits
    assert len(firm_corpus.files) == FIRMLAB.total_files
    # Every flow's pieces live in at least two distinct modules: the
    # sink file differs from at least one other ground-truth-free file
    # writing its global — checked end-to-end by the matcher test below;
    # here we just pin that flows span multiple files at all.
    assert len({g.path for g in flows}) > 1


# ---------------------------------------------------------------------------
# The matcher: recall, precision, report shape
# ---------------------------------------------------------------------------


def test_xtaint_finds_every_cross_flow_with_zero_bait_hits(
    firm_corpus, firm_result
):
    flows = _cross_flows(firm_corpus)
    found = _found_uids(firm_corpus, firm_result)
    missed = {g.uid for g in flows} - found
    assert not missed, f"missed cross-module flows: {sorted(missed)}"
    hits = [(r.kind, r.sink_file, r.sink_line) for r in firm_result.reports]
    assert _bait_hits(firm_corpus, hits) == []
    # Without --taint-borders every report is a cross-module pair.
    assert firm_result.reports
    for report in firm_result.reports:
        assert report.kind is BugKind.TAINT
        assert " vs " in report.entry_function
        assert "border-inferred" not in report.render()
    # The P2.6 counters moved.
    assert firm_result.stats.taint_flows_recorded > 0
    assert firm_result.stats.xtaint_pairs_matched >= len(flows)
    assert firm_result.stats.time_xmatch_seconds >= 0.0


def test_taint_naive_cross_tier_contrast(firm_corpus, firm_program):
    """The module-granular grep tier finds the one-hop flows but misses
    every relay chain (the middle image calls no source) and flags bait
    — the contrast ``make bench-xtaint`` quantifies."""
    naive = TaintNaive().analyze(firm_program)
    cross = [
        f for f in naive.findings if f.message.startswith(CROSS_MODULE_PREFIX)
    ]
    assert cross, "the cross-module tier found nothing at all"
    hits = [(f.kind, f.file, f.line) for f in naive.findings]
    found = {
        gt.uid
        for gt in _cross_flows(firm_corpus)
        if any(gt.covers(kind, path, line) for kind, path, line in hits)
    }
    relays = {
        g.uid
        for g in _cross_flows(firm_corpus)
        if g.pattern == "xtnt_relay_chain"
    }
    assert relays and not (relays & found)
    assert len(found) < len(_cross_flows(firm_corpus))
    assert _bait_hits(firm_corpus, [(f.kind, f.file, f.line) for f in cross])


# ---------------------------------------------------------------------------
# Determinism: tier ladder × workers × start method × cache temperature
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tier", ["off", "steens", "flow"])
def test_reports_identical_across_tiers_and_workers(
    firm_program, firm_result, tier
):
    baseline = _render(firm_result)
    sequential = PATA(
        checker_spec="xtaint", config=AnalysisConfig(workers=1, alias_tier=tier)
    ).analyze(firm_program)
    assert _render(sequential) == baseline
    parallel = PATA(
        checker_spec="xtaint", config=AnalysisConfig(workers=4, alias_tier=tier)
    ).analyze(firm_program)
    assert parallel.stats.workers_used > 1
    assert _render(parallel) == baseline


@pytest.mark.slow
def test_reports_identical_under_spawn(firm_program, firm_result):
    spawned = PATA(
        checker_spec="xtaint",
        config=AnalysisConfig(workers=2, parallel_start_method="spawn"),
    ).analyze(firm_program)
    assert spawned.stats.workers_used == 2
    assert _render(spawned) == _render(firm_result)


def test_reports_identical_cold_vs_warm_summary_cache(
    firm_program, firm_result, tmp_path
):
    """A warm run replays the module summaries from the xsummary layer
    (``summaries_cached`` counts them) and must not change a byte."""
    config = lambda: AnalysisConfig(  # noqa: E731 - fresh config per leg
        cache_dir=str(tmp_path), cache_mode="rw"
    )
    cold = PATA(checker_spec="xtaint", config=config()).analyze(firm_program)
    warm = PATA(checker_spec="xtaint", config=config()).analyze(firm_program)
    assert _render(cold) == _render(firm_result)
    assert _render(warm) == _render(firm_result)
    assert cold.stats.summaries_cached == 0
    assert warm.stats.summaries_cached > 0
    assert warm.stats.entries_reanalyzed == 0
    assert warm.stats.taint_flows_recorded == cold.stats.taint_flows_recorded
    assert warm.stats.xtaint_pairs_matched == cold.stats.xtaint_pairs_matched


# ---------------------------------------------------------------------------
# Border-source inference
# ---------------------------------------------------------------------------


def test_borders_additive_on_firmlab(firm_corpus, firm_program, firm_result):
    """--taint-borders adds exactly the border-probe reports on top of
    the default run: a superset, with every new render border-marked."""
    armed = PATA(
        checker_spec="xtaint", config=AnalysisConfig(taint_borders=True)
    ).analyze(firm_program)
    base_renders = set(_render(firm_result))
    armed_renders = set(_render(armed))
    assert base_renders <= armed_renders
    extra = armed_renders - base_renders
    assert extra and all("border-inferred" in r for r in extra)
    borders = [g for g in firm_corpus.ground_truth if g.requires.border]
    hits = [(r.kind, r.sink_file, r.sink_line) for r in armed.reports]
    for gt in borders:
        assert any(gt.covers(kind, path, line) for kind, path, line in hits)
    assert _bait_hits(firm_corpus, hits) == []


def test_borders_report_preserving_when_no_callerless_interface():
    """When every registered interface function has an in-tree caller
    the border set is empty and arming the flag changes nothing."""
    source = r"""
int g_len;
int xlut[16];
struct ops { int (*probe)(int n); };
int dev_probe(int n) { g_len = n; return 0; }
static struct ops d = { .probe = dev_probe };
int boot(void) { return dev_probe(7); }
int reader(void) { return xlut[g_len]; }
"""
    program = compile_program([("dev.c", source)])
    plain = PATA(checker_spec="xtaint").analyze(program)
    armed = PATA(
        checker_spec="xtaint", config=AnalysisConfig(taint_borders=True)
    ).analyze(program)
    assert _render(plain) == _render(armed)


def test_borders_off_by_default():
    assert AnalysisConfig().taint_borders is False


# ---------------------------------------------------------------------------
# Stats schema and CLI surface
# ---------------------------------------------------------------------------


def test_stats_schema_exports_xtaint_counters(firm_result):
    """The four P2.6 counters ride --stats-json via to_dict() — both on
    a fresh stats object and on a real run's."""
    for payload in (AnalysisStats().to_dict(), firm_result.stats.to_dict()):
        assert isinstance(payload["taint_flows_recorded"], int)
        assert isinstance(payload["xtaint_pairs_matched"], int)
        assert isinstance(payload["summaries_cached"], int)
        assert isinstance(payload["time_xmatch_seconds"], float)
    assert firm_result.stats.to_dict()["xtaint_pairs_matched"] > 0


def test_cli_list_checkers_includes_xtaint(capsys):
    assert cli_main(["check", "--list-checkers"]) == 0
    assert "xtaint" in capsys.readouterr().out


def test_cli_rejects_unknown_checker_eagerly(tmp_path, capsys):
    path = tmp_path / "x.c"
    path.write_text("int f(void) { return 0; }\n")
    assert cli_main(["check", "--checkers", "bogus", str(path)]) == 2
    err = capsys.readouterr().err
    assert "bogus" in err and "xtaint" in err
