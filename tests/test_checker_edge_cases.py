"""Checker edge cases beyond the canonical patterns."""

from repro import PATA, AnalysisConfig
from repro.typestate import BugKind


def run(source, all_checkers=True):
    pata = PATA.with_all_checkers() if all_checkers else PATA()
    return pata.analyze_sources([("t.c", source)])


def kinds(result):
    return [r.kind for r in result.reports]


# -- NPD comparison spellings ----------------------------------------------------


def test_npd_null_on_left_side_of_comparison():
    result = run("struct s { int v; };\nint f(struct s *p) { if (NULL == p) { return p->v; } return 0; }")
    assert BugKind.NPD in kinds(result)


def test_npd_ne_comparison_else_arm():
    result = run("struct s { int v; };\nint f(struct s *p) { if (p != NULL) { return 0; } return p->v; }")
    assert BugKind.NPD in kinds(result)


def test_npd_truthiness_check():
    result = run("struct s { int v; };\nint f(struct s *p) { if (p) return 0; return p->v; }")
    assert BugKind.NPD in kinds(result)


def test_npd_short_circuit_guard_is_safe():
    result = run("struct s { int v; };\nint f(struct s *p) { if (p && p->v) return 1; return 0; }")
    assert BugKind.NPD not in kinds(result)


def test_npd_reassignment_clears_null_state():
    result = run(
        "struct s { int v; };\nstatic struct s backup;\n"
        "int f(struct s *p) { if (!p) { p = &backup; return p->v; } return 0; }"
    )
    assert BugKind.NPD not in kinds(result)


def test_npd_multiple_sinks_reported_separately():
    result = run(
        "struct s { int a; int b; };\n"
        "int f(struct s *p) { if (!p) { int x = p->a; int y = p->b; return x + y; } return 0; }"
    )
    assert len([k for k in kinds(result) if k is BugKind.NPD]) == 2


def test_npd_memset_through_null_pointer():
    result = run("int f(char *p, int n) { if (!p) { memset(p, 0, n); } return 0; }")
    assert BugKind.NPD in kinds(result)


# -- UVA ---------------------------------------------------------------------------


def test_uva_memcpy_initializes_destination():
    result = run(
        "struct s { int a; };\n"
        "int f(struct s *src) {\n"
        "    struct s *d = kmalloc(sizeof(struct s));\n"
        "    if (!d) return -1;\n"
        "    memcpy(d, src, sizeof(struct s));\n"
        "    int v = d->a;\n"
        "    kfree(d);\n"
        "    return v;\n"
        "}"
    )
    assert BugKind.UVA not in kinds(result)


def test_uva_returning_uninitialized_scalar():
    result = run("int f(int c) { int x; if (c) return 0; return x; }")
    assert BugKind.UVA in kinds(result)


def test_uva_passing_uninitialized_to_external():
    result = run("int f(void) { int x; log_value(x); return 0; }")
    assert BugKind.UVA in kinds(result)


def test_uva_struct_local_field_read_before_write():
    result = run(
        "struct s { int a; int b; };\n"
        "int f(void) { struct s v; v.a = 1; return v.b; }"
    )
    assert BugKind.UVA in kinds(result)


def test_uva_zero_brace_init_is_initialized():
    result = run(
        "struct s { int a; int b; };\n"
        "int f(void) { struct s v = {0}; return v.b; }"
    )
    assert BugKind.UVA not in kinds(result)


# -- ML ------------------------------------------------------------------------------


def test_ml_free_through_second_alias():
    result = run(
        "int f(int n) { char *p = malloc(n); if (!p) return -1; char *q = p; free(q); return 0; }"
    )
    assert BugKind.ML not in kinds(result)


def test_ml_devm_style_allocator_tracked():
    result = run(
        "struct device { int id; };\n"
        "int f(struct device *dev, int n, int bad) {\n"
        "    char *p = devm_kzalloc(dev, n, 0);\n"
        "    if (!p) return -1;\n"
        "    if (bad) return -2;\n"
        "    devm_kfree(dev, p);\n"
        "    return 0;\n"
        "}"
    )
    assert BugKind.ML in kinds(result)  # the `bad` early return leaks


def test_ml_not_reported_when_freed_in_callee():
    result = run(
        "static void cleanup(char *p) { kfree(p); }\n"
        "int f(int n) { char *p = kmalloc(n); if (!p) return -1; cleanup(p); return 0; }"
    )
    assert BugKind.ML not in kinds(result)


# -- locks / div / index --------------------------------------------------------------


def test_mutex_api_recognized():
    result = run(
        "struct m { int lock; }; static struct m g;\n"
        "void f(int retry) { mutex_lock(&g.lock); if (retry) mutex_lock(&g.lock); mutex_unlock(&g.lock); }"
    )
    assert BugKind.DOUBLE_LOCK in kinds(result)


def test_two_distinct_locks_are_independent():
    result = run(
        "struct m { int a_lock; int b_lock; }; static struct m g;\n"
        "void f(void) { spin_lock(&g.a_lock); spin_lock(&g.b_lock); "
        "spin_unlock(&g.b_lock); spin_unlock(&g.a_lock); }"
    )
    assert BugKind.DOUBLE_LOCK not in kinds(result)


def test_constant_negative_index_is_definite():
    result = run("static int t[4];\nint f(void) { return t[0 - 2]; }")
    assert BugKind.ARRAY_UNDERFLOW in kinds(result)


def test_modulo_by_possible_zero():
    result = run(
        "static int width(int m) { if (m > 8) return 0; return m; }\n"
        "int f(int x, int m) { int w = width(m); return x % w; }"
    )
    assert BugKind.DIV_BY_ZERO in kinds(result)


def test_div_after_assignment_of_nonzero_safe():
    result = run("int f(int x) { int d = 4; return x / d; }")
    assert BugKind.DIV_BY_ZERO not in kinds(result)


def test_index_guard_via_early_return():
    result = run(
        "static int t[8];\n"
        "static int pick(int k) { if (k > 7) return -1; return k; }\n"
        "int f(int k) { int i = pick(k); if (i < 0) return 0; return t[i]; }"
    )
    assert BugKind.ARRAY_UNDERFLOW not in kinds(result)
