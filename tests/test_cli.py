"""CLI tests (argument handling, exit codes, output formats)."""

import json

import pytest

from repro.cli import main

BUGGY = """
struct s { int v; };
int f(struct s *p) {
    if (!p) {
        return p->v;
    }
    return 0;
}
"""

CLEAN = """
int g(int a) {
    return a + 1;
}
"""


@pytest.fixture
def buggy_file(tmp_path):
    path = tmp_path / "buggy.c"
    path.write_text(BUGGY)
    return path


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return path


def test_check_reports_bug_and_exits_1(buggy_file, capsys):
    code = main(["check", str(buggy_file)])
    out = capsys.readouterr().out
    assert code == 1
    assert "NULL-POINTER DEREFERENCE" in out


def test_check_clean_file_exits_0(clean_file, capsys):
    code = main(["check", str(clean_file)])
    assert code == 0
    assert "0 bug(s)" in capsys.readouterr().out


def test_check_missing_file_exits_2(capsys):
    code = main(["check", "/nonexistent/file.c"])
    assert code == 2
    assert "no such file" in capsys.readouterr().err


def test_check_json_output(buggy_file, capsys):
    code = main(["check", "--json", str(buggy_file)])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["bugs"][0]["kind"] == "NPD"
    assert payload["bugs"][0]["line"] == 5
    assert payload["stats"]["paths"] >= 1


def test_check_multiple_files(buggy_file, clean_file, capsys):
    code = main(["check", str(clean_file), str(buggy_file)])
    assert code == 1


def test_check_na_mode(buggy_file, capsys):
    # The direct param check is alias-free, so even NA finds it.
    code = main(["check", "--na", str(buggy_file)])
    assert code == 1


def test_check_no_validate(buggy_file, capsys):
    code = main(["check", "--no-validate", str(buggy_file)])
    assert code == 1


def test_check_stats_table(buggy_file, clean_file, capsys):
    code = main(["check", "--stats", str(buggy_file), str(clean_file)])
    out = capsys.readouterr().out
    assert code == 1
    # One per-entry row per analysis root, plus the table header.
    assert "entry" in out and "paths" in out and "budget" in out
    assert "f" in out and "g" in out


def test_check_workers_matches_sequential(buggy_file, clean_file, capsys):
    # --no-prune keeps the clean entry analyzed; P1.5 entry pruning would
    # drop it and leave too few entries to engage the parallel driver.
    code = main(["check", "--json", "--no-prune", str(buggy_file), str(clean_file)])
    sequential = json.loads(capsys.readouterr().out)
    code2 = main(["check", "--json", "--no-prune", "--workers", "2",
                  str(buggy_file), str(clean_file)])
    parallel = json.loads(capsys.readouterr().out)
    assert code == code2 == 1
    assert sequential["bugs"] == parallel["bugs"]
    assert parallel["stats"]["workers"] == 2


def test_check_json_stats_per_entry(buggy_file, clean_file, capsys):
    code = main(["check", "--json", "--stats", str(buggy_file), str(clean_file)])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    entries = {e["entry"] for e in payload["stats"]["per_entry"]}
    assert entries == {"f", "g"}


def test_corpus_stats(capsys):
    code = main(["corpus", "--os", "tencentos", "--scale", "0.3", "--stats"])
    out = capsys.readouterr().out
    assert code == 0
    assert "injected bugs" in out


def test_corpus_write_tree(tmp_path, capsys):
    code = main(["corpus", "--os", "tencentos", "--scale", "0.2", "--out", str(tmp_path)])
    assert code == 0
    truth = json.loads((tmp_path / "ground_truth.json").read_text())
    assert isinstance(truth, list)
    written = list(tmp_path.rglob("*.c"))
    assert written
    # Every ground-truth path exists on disk.
    for entry in truth:
        assert (tmp_path / entry["path"]).exists()


def test_eval_table4(capsys):
    code = main(["eval", "table4", "--scale", "0.15"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Table 4" in out and "linux" in out


def test_compare_runs(capsys):
    code = main(["compare", "--os", "tencentos", "--scale", "0.4"])
    out = capsys.readouterr().out
    assert code == 0
    assert "PATA" in out and "cppcheck-like" in out


def test_lint_reports_diagnostics(tmp_path, capsys):
    path = tmp_path / "l.c"
    path.write_text("int f(int a) { int unused = a; if (a) return 1; }")
    code = main(["lint", str(path)])
    out = capsys.readouterr().out
    assert code == 1
    assert "unused-var" in out and "missing-return" in out


def test_lint_clean_file(tmp_path, capsys):
    path = tmp_path / "c.c"
    path.write_text("int f(int a) { return a + 1; }")
    assert main(["lint", str(path)]) == 0


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
