"""IR cleanup pass tests: semantics preservation is checked by executing
before/after in the interpreter."""

import pytest

from repro import PATA, AnalysisConfig, ir
from repro.interp import run_entry
from repro.ir import fold_constants, optimize_function, remove_unreachable_blocks, thread_jumps
from repro.lang import compile_program, compile_source
from repro.typestate import BugKind


def func_of(source, name="f"):
    return compile_source(source).functions[name]


def test_fold_constant_binop():
    func = func_of("int f(void) { int a = 2 + 3; return a * 4; }")
    fold_constants(func)
    insts = list(func.instructions())
    assert not any(isinstance(i, ir.BinOp) for i in insts)
    term = func.entry.terminator
    # `a` is propagated, the multiply folded, return reads the const chain.
    values = [i.src.value for i in insts if isinstance(i, ir.Move) and isinstance(i.src, ir.Const)]
    assert 20 in values or (isinstance(term, ir.Ret))


def test_fold_constant_branch_to_jump():
    func = func_of("int f(void) { if (1) return 7; return 8; }")
    fold_constants(func)
    assert isinstance(func.entry.terminator, (ir.Jump, ir.Ret))


def test_fold_keeps_constant_division_by_zero():
    func = func_of("int f(void) { return 5 / 0; }")
    fold_constants(func)
    assert any(isinstance(i, ir.BinOp) and i.op == "div" for i in func.instructions())


def test_propagation_stops_at_redefinition():
    func = func_of("int f(int c) { int a = 1; if (c) a = 2; return a + 1; }")
    fold_constants(func)
    # `a + 1` must NOT fold: `a` is redefined on a branch.
    adds = [i for i in func.instructions() if isinstance(i, ir.BinOp) and i.op == "add"]
    assert adds and isinstance(adds[0].lhs, ir.Var)


def test_globals_not_propagated():
    func = func_of("int g; int f(void) { g = 1; return g + 1; }")
    fold_constants(func)
    adds = [i for i in func.instructions() if isinstance(i, ir.BinOp)]
    assert adds and isinstance(adds[0].lhs, ir.Var)


def test_remove_unreachable_blocks():
    func = func_of("int f(int a) { return a; a = a + 1; return a; }")
    before = len(func.blocks)
    removed = remove_unreachable_blocks(func)
    assert removed >= 1
    assert len(func.blocks) == before - removed
    ir.assert_valid(func)


def test_thread_jump_chains():
    # goto-heavy code produces empty forwarding blocks.
    func = func_of(
        "int f(int a) { if (a) goto one; goto two; one: goto two; two: return a; }"
    )
    optimize_function(func)
    ir.assert_valid(func)
    # After threading + cleanup, no empty jump-only forwarding chains with
    # a jump target that is itself a trivial forwarder remain.
    for block in func.blocks:
        term = block.terminator
        if not block.instructions and isinstance(term, ir.Jump):
            target = term.target
            assert target.instructions or not isinstance(target.terminator, ir.Jump)


def test_optimize_function_reaches_fixpoint():
    func = func_of("int f(void) { if (2 > 1) return 1; return 0; }")
    totals = optimize_function(func)
    assert totals["folded"] >= 1
    assert totals["removed_blocks"] >= 1
    ir.assert_valid(func)


@pytest.mark.parametrize("args", [(0, 0), (1, 5), (3, -2), (7, 7)])
def test_semantics_preserved_under_optimization(args):
    source = """
int f(int a, int b) {
    int acc = 10 * 2;
    if (a > 1 && b != 0)
        acc = acc + a / b;
    for (int i = 0; i < 3; i++)
        acc = acc + i;
    if (0)
        acc = -999;
    return acc + b;
}
"""
    plain = compile_program([("p.c", source)])
    optimized = compile_program([("p.c", source)])
    from repro.ir import optimize_program

    optimize_program(optimized)
    r1, f1, _ = run_entry(plain, "f", list(args))
    r2, f2, _ = run_entry(optimized, "f", list(args))
    assert (r1, type(f1)) == (r2, type(f2))


def test_bug_detection_unchanged_by_optimization():
    source = """
struct s { int v; };
int f(struct s *p) {
    if (!p)
        return p->v;
    return 0;
}
"""
    plain = PATA().analyze_sources([("t.c", source)])
    optimized = PATA(config=AnalysisConfig(optimize_ir=True)).analyze_sources([("t.c", source)])
    assert len(plain.by_kind(BugKind.NPD)) == len(optimized.by_kind(BugKind.NPD)) == 1


def test_optimization_reduces_paths_on_constant_branches():
    source = """
int f(int a) {
    if (1) a = a + 1;
    if (2 > 3) a = a - 1;
    if (1) a = a + 2;
    return a;
}
"""
    # prune=False: P1.5 skips this checker-irrelevant entry outright,
    # leaving zero paths on both sides of the comparison.
    plain = PATA(config=AnalysisConfig(prune=False)).analyze_sources([("t.c", source)])
    optimized = PATA(config=AnalysisConfig(optimize_ir=True, prune=False)).analyze_sources([("t.c", source)])
    assert optimized.stats.explored_paths < plain.stats.explored_paths


def test_corpus_analysis_agrees_with_and_without_optimization():
    from repro.corpus import TENCENTOS, generate
    corpus = generate(TENCENTOS.scaled(0.5))
    plain = PATA.with_all_checkers().analyze(compile_program(corpus.compiled_sources()))
    optimized = PATA.with_all_checkers(config=AnalysisConfig(optimize_ir=True)).analyze(
        compile_program(corpus.compiled_sources())
    )
    plain_bugs = sorted((r.kind.short, r.sink_file, r.sink_line) for r in plain.reports)
    optimized_bugs = sorted((r.kind.short, r.sink_file, r.sink_line) for r in optimized.reports)
    assert plain_bugs == optimized_bugs
