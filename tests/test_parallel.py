"""Parallel-driver and cross-entry state-leak regression tests.

Covers the two per-entry state leaks the shared-explorer design produced
(``budget_exhausted`` and ``load_srcs`` surviving across entries), the
fresh-explorer-per-shard contract, and the parallel driver's determinism
guarantee: ``workers=1`` and ``workers=4`` must produce byte-identical
reports and merged stats (timings aside).
"""

import dataclasses
import logging

import pytest

from repro import PATA, AnalysisConfig
from repro.core import InformationCollector, PathExplorer
from repro.core.parallel import explore_entries, merge_shard_results, shard_result
from repro.corpus import PROFILES_BY_NAME, generate
from repro.ir import (
    Call,
    CallIndirect,
    Const,
    Function,
    Gep,
    INT,
    InterfaceRegistration,
    Jump,
    Load,
    Module,
    PointerType,
    Program,
    Ret,
    Var,
)
from repro.ir.types import StructType
from repro.lang import compile_program
from repro.typestate import BugKind, default_checkers


# ---------------------------------------------------------------------------
# Satellite 1: budget_exhausted must reset between entries
# ---------------------------------------------------------------------------

BUDGET_SOURCE = """
int heavy(int a) {
    int r = 0;
    if (a > 0) r = r + 1;
    if (a > 1) r = r + 1;
    if (a > 2) r = r + 1;
    if (a > 3) r = r + 1;
    if (a > 4) r = r + 1;
    if (a > 5) r = r + 1;
    return r;
}
int light(int b) {
    return b + 1;
}
"""


def _entries_by_name(program):
    collector = InformationCollector(program)
    return collector, {f.name: f for f in collector.entry_functions()}


def test_budget_exhausted_resets_between_entries():
    program = compile_program([("budget.c", BUDGET_SOURCE)])
    _, entries = _entries_by_name(program)
    config = AnalysisConfig(max_steps_per_entry=20)
    explorer = PathExplorer(program, config, default_checkers())
    explorer.explore(entries["heavy"])
    assert explorer.budget_exhausted
    explorer.explore(entries["light"])
    # Regression: the flag used to survive into every later entry.
    assert not explorer.budget_exhausted


def test_budget_exhausted_entries_counted_once():
    program = compile_program([("budget.c", BUDGET_SOURCE)])
    config = AnalysisConfig(max_steps_per_entry=20, prune=False)
    result = PATA(config=config).analyze(program)
    assert result.stats.budget_exhausted_entries == 1
    flags = {e.name: e.budget_exhausted for e in result.stats.per_entry}
    assert flags == {"heavy": True, "light": False}


# ---------------------------------------------------------------------------
# Satellite 2: load_srcs (load provenance) must not leak across entries
# ---------------------------------------------------------------------------


def _leak_program():
    """Two hand-built entries sharing variable names.

    ``prime`` performs ``addr = &ops->h; fn = *addr`` — recording load
    provenance for the name ``fn``.  ``victim`` computes its own
    ``addr = &ops->h`` but *never loads* ``fn``; its indirect call through
    ``fn`` is unresolvable on every real path.  With stale ``load_srcs``
    from ``prime``, ``_resolve_indirect`` chains victim's ``addr`` through
    prime's load and wrongly inlines ``bad_handler(NULL)`` — an NPD that
    no path of ``victim`` can produce.
    """
    module = Module("leak.c")
    ops_ty = StructType("ops")
    int_ptr = PointerType(INT)
    ops_ty.set_fields({"h": int_ptr})
    module.structs["ops"] = ops_ty
    ops_ptr = PointerType(ops_ty)

    fn_var = Var("fn", int_ptr)
    addr_var = Var("addr", PointerType(int_ptr))

    bad = Function("bad_handler", [Var("p", int_ptr)], INT, filename="leak.c", line=1)
    block = bad.add_block("entry")
    block.append(Load(Var("v", INT), Var("p", int_ptr)))
    block.set_terminator(Ret(Const(0)))
    module.add_function(bad)

    prime = Function("prime", [Var("ops", ops_ptr)], INT, filename="leak.c", line=10)
    block = prime.add_block("entry")
    block.append(Gep(addr_var, Var("ops", ops_ptr), "h"))
    block.append(Load(fn_var, addr_var))
    block.set_terminator(Ret(Const(0)))
    prime.is_interface = True
    module.add_function(prime)

    victim = Function("victim", [Var("ops", ops_ptr)], INT, filename="leak.c", line=20)
    block = victim.add_block("entry")
    block.append(Gep(addr_var, Var("ops", ops_ptr), "h"))
    block.append(CallIndirect(None, fn_var, [Const(0, int_ptr)]))
    block.set_terminator(Ret(Const(0)))
    victim.is_interface = True
    module.add_function(victim)

    module.add_registration(InterfaceRegistration("g_ops", ops_ty, "h", "bad_handler"))
    return Program([module])


def test_load_srcs_cleared_after_each_entry():
    program = _leak_program()
    collector = InformationCollector(program)
    explorer = PathExplorer(
        program,
        AnalysisConfig(resolve_function_pointers=True),
        default_checkers(),
        indirect_resolver=collector.indirect_targets,
    )
    explorer.explore(program.lookup("prime"))
    # Regression: prime's load provenance used to survive here.
    assert explorer.load_srcs == {}


def test_stale_load_provenance_cannot_resolve_other_entrys_pointers():
    program = _leak_program()
    collector = InformationCollector(program)
    explorer = PathExplorer(
        program,
        AnalysisConfig(resolve_function_pointers=True),
        default_checkers(),
        indirect_resolver=collector.indirect_targets,
    )
    explorer.explore(program.lookup("prime"))
    explorer.explore(program.lookup("victim"))
    # With the leak, victim's icall resolved through prime's load and
    # inlined bad_handler(NULL), reporting an impossible NPD.
    npd = [b for b in explorer.possible_bugs if b.kind is BugKind.NPD]
    assert npd == []


def test_entry_order_does_not_change_results():
    """The same two entries analyzed in either order (or alone) agree —
    the stronger form of the no-cross-entry-state property."""
    program = _leak_program()
    collector = InformationCollector(program)

    def run(order):
        explorer = PathExplorer(
            program,
            AnalysisConfig(resolve_function_pointers=True),
            default_checkers(),
            indirect_resolver=collector.indirect_targets,
        )
        for name in order:
            explorer.explore(program.lookup(name))
        return sorted(str(b) for b in explorer.possible_bugs)

    assert run(["prime", "victim"]) == run(["victim", "prime"])
    assert run(["prime", "victim"]) == run(["victim"]) + run(["prime"])


# ---------------------------------------------------------------------------
# Worker world + batch body (the persistent-executor seams, in-process)
# ---------------------------------------------------------------------------


def test_worker_init_and_batch_spawn_payload():
    """The spawn-style worker world (program by bytes, facts seeded, no
    live objects) explores a batch and returns per-entry-pure outcomes
    in batch order."""
    import pickle

    import repro.core.parallel as parallel_mod
    from repro.core.parallel import _WorkerInit, _init_worker, _run_batch

    program = compile_program([("budget.c", BUDGET_SOURCE)])
    collector = InformationCollector(program)
    facts = {
        name: (info.may_return_negative, info.may_return_zero)
        for name, info in collector.functions.items()
    }
    init = _WorkerInit(
        config=AnalysisConfig(),
        checker_spec="default",
        program_bytes=pickle.dumps(program),
        cached_facts=facts,
        dead_masks={},
    )
    try:
        _init_worker(init)
        chunk = _run_batch(["heavy", "light"])
    finally:
        parallel_mod._WORLD = None
    assert [name for name, _ in chunk] == ["heavy", "light"]
    assert [outcome.stats.name for _, outcome in chunk] == ["heavy", "light"]


def test_batches_are_size_sorted_largest_first():
    """Dispatch order is by instruction count, descending, stable on
    ties — the big entries must hit the queue while every worker is
    still busy."""
    from repro.core.parallel import _make_batches

    source = """
int tiny(int a) { return a; }
int big(int a) {
    int r = 0;
    if (a > 0) r = r + 1;
    if (a > 1) r = r + 2;
    if (a > 2) r = r + 3;
    return r;
}
int mid(int b) {
    int r = b + 1;
    if (b > 0) r = r + 1;
    return r;
}
"""
    program = compile_program([("sizes.c", source)])
    _, entries = _entries_by_name(program)
    ordered = [entries["tiny"], entries["big"], entries["mid"]]
    batches = _make_batches(ordered, 1)
    assert batches == [["big"], ["mid"], ["tiny"]]
    assert _make_batches(ordered, 2) == [["big", "mid"], ["tiny"]]


def test_resolved_batch_size_auto_and_explicit():
    config = AnalysisConfig(parallel_dispatch_factor=4)
    # 100 entries, 4 workers, factor 4 -> ~16 batches of 7
    assert config.resolved_batch_size(100, 4) == 7
    # tiny entry lists degrade to one entry per batch, never 0
    assert config.resolved_batch_size(3, 4) == 1
    assert AnalysisConfig(parallel_batch_size=12).resolved_batch_size(100, 4) == 12


# ---------------------------------------------------------------------------
# Determinism: workers=1 and workers=4 byte-identical
# ---------------------------------------------------------------------------


def _stats_fingerprint(stats):
    """Every stats field except wall-clock timings and run-shape
    metadata (worker/batch counts legitimately differ between the
    sequential and the streamed run)."""
    data = dataclasses.asdict(stats)
    for key in list(data):
        if key.endswith("_seconds") or key in ("workers_used", "batches_dispatched"):
            data[key] = 0
    for entry in data["per_entry"]:
        entry["wall_seconds"] = 0.0
    return data


@pytest.mark.slow
def test_workers_determinism_on_corpus():
    corpus = generate(PROFILES_BY_NAME["zephyr"].scaled(0.6))
    program = compile_program(corpus.compiled_sources())
    sequential = PATA(config=AnalysisConfig(workers=1)).analyze(program)
    parallel = PATA(config=AnalysisConfig(workers=4)).analyze(program)
    assert parallel.stats.workers_used == 4
    assert [r.render() for r in sequential.reports] == [r.render() for r in parallel.reports]
    assert _stats_fingerprint(sequential.stats) == _stats_fingerprint(parallel.stats)
    # Cross-entry repeats must collapse identically whether the dedup ran
    # in one explorer or across shard merges.
    assert sequential.stats.dropped_repeated_bugs == parallel.stats.dropped_repeated_bugs


def test_workers_determinism_on_multi_entry_file():
    source = """
struct s { int v; };
int f1(struct s *p) { if (!p) { return p->v; } return 0; }
int f2(struct s *q) { if (!q) { return q->v; } return 1; }
int f3(int a) { int *r = 0; if (a) { return *r; } return 2; }
int f4(int b) { return b + 2; }
"""
    program = compile_program([("multi.c", source)])
    sequential = PATA(config=AnalysisConfig(workers=1)).analyze(program)
    parallel = PATA(config=AnalysisConfig(workers=4)).analyze(program)
    assert [r.render() for r in sequential.reports] == [r.render() for r in parallel.reports]
    assert _stats_fingerprint(sequential.stats) == _stats_fingerprint(parallel.stats)


def test_workers_zero_resolves_to_cpu_count():
    config = AnalysisConfig(workers=0)
    assert config.resolved_workers() >= 1


# ---------------------------------------------------------------------------
# Fallbacks: never crash, one-line warning, sequential result
# ---------------------------------------------------------------------------


def test_unpicklable_program_falls_back_to_sequential(monkeypatch, caplog):
    """Spawn-only platforms ship the program by value; a program that
    does not pickle must degrade to the sequential path with a warning."""
    import repro.core.parallel as parallel_mod

    def broken_dumps(obj, *a, **kw):
        raise TypeError("cannot pickle this program")

    monkeypatch.setattr(parallel_mod, "_fork_available", lambda: False)
    monkeypatch.setattr(parallel_mod.pickle, "dumps", broken_dumps)
    program = compile_program([("multi.c", "int f(int a) { return a; }\nint g(int b) { return b; }")])
    with caplog.at_level(logging.WARNING, logger="repro.parallel"):
        result = PATA(config=AnalysisConfig(workers=2, prune=False)).analyze(program)
    assert result.stats.workers_used == 1
    assert any("falling back to sequential" in r.message for r in caplog.records)


def test_worker_failure_falls_back_to_sequential(caplog):
    """A worker that raises (here: bogus checker spec, which breaks the
    pool initializer) must not crash the parent — run_parallel returns
    None and the caller goes sequential."""
    from repro.core.parallel import run_parallel

    program = compile_program([("multi.c", "int f(int a) { return a; }\nint g(int b) { return b; }")])
    collector = InformationCollector(program)
    entries = collector.entry_functions()
    with caplog.at_level(logging.WARNING, logger="repro.parallel"):
        outcome = run_parallel(program, AnalysisConfig(workers=2), "bogus-spec", entries, collector)
    assert outcome is None
    assert any("parallel analysis failed" in r.message for r in caplog.records)


def test_mid_run_crash_cancels_queued_batches(tmp_path, monkeypatch, caplog):
    """Satellite regression: when one batch raises, the queued remainder
    must be cancelled (``cancel_futures``) rather than run to completion
    behind the sequential fallback's back — the old driver let every
    surviving shard finish first, doubling the work.

    Instrumentation: workers touch one file per *completed* batch; the
    injected crash fires on the most expensive entry, i.e. inside the
    very first dispatched batch.  With cancellation, only the handful of
    batches already in flight can complete; without it, all of them do.
    """
    from repro.core.parallel import _CRASH_ENV, _TOUCH_ENV, run_parallel

    pieces = []
    for index in range(24):
        pieces.append(
            f"int entry{index:02d}(int a) {{\n"
            f"    int r = a + {index};\n"
            "    if (a > 0) r = r + 1;\n"
            "    return r;\n"
            "}\n"
        )
    # The crash target gets extra instructions so size-sorting dispatches
    # it first, deterministically.
    pieces.append(
        "int crashy(int a) {\n"
        + "".join(f"    int x{i} = a + {i};\n" for i in range(12))
        + "    return a;\n}\n"
    )
    program = compile_program([("crash.c", "".join(pieces))])
    collector = InformationCollector(program)
    entries = collector.entry_functions()
    assert len(entries) == 25
    touch_dir = tmp_path / "touches"
    touch_dir.mkdir()
    monkeypatch.setenv(_CRASH_ENV, "crashy")
    monkeypatch.setenv(_TOUCH_ENV, str(touch_dir))
    config = AnalysisConfig(workers=2, parallel_batch_size=1, prune=False)
    with caplog.at_level(logging.WARNING, logger="repro.parallel"):
        outcome = run_parallel(program, config, "default", entries, collector)
    assert outcome is None
    assert any("injected test crash" in r.message for r in caplog.records)
    completed = len(list(touch_dir.iterdir()))
    # 25 batches total; the crash lands in the first.  Allow a generous
    # in-flight margin, but anything near 24 means cancellation failed.
    assert completed <= 8, f"{completed} batches completed after the crash"


def test_crashy_analysis_still_produces_sequential_reports(monkeypatch):
    """End to end: a mid-run worker crash degrades to the sequential
    path and the final reports are exactly the workers=1 reports."""
    from repro.core.parallel import _CRASH_ENV

    source = """
struct s { int v; };
int f1(struct s *p) { if (!p) { return p->v; } return 0; }
int f2(struct s *q) { if (!q) { return q->v; } return 1; }
int f3(int a) { int *r = 0; if (a) { return *r; } return 2; }
"""
    program = compile_program([("multi.c", source)])
    sequential = PATA(config=AnalysisConfig(workers=1)).analyze(program)
    monkeypatch.setenv(_CRASH_ENV, "f1")
    crashed = PATA(config=AnalysisConfig(workers=2)).analyze(program)
    assert crashed.stats.workers_used == 1
    assert [r.render() for r in sequential.reports] == [r.render() for r in crashed.reports]


def test_custom_checker_objects_fall_back_to_sequential(caplog):
    from repro.typestate import NullDereferenceChecker

    program = compile_program([("multi.c", "int f(int a) { return a; }\nint g(int b) { return b; }")])
    with caplog.at_level(logging.WARNING, logger="repro.parallel"):
        result = PATA(
            checkers=[NullDereferenceChecker()],
            config=AnalysisConfig(workers=2, prune=False),
        ).analyze(program)
    assert result.stats.workers_used == 1
    assert any("custom checker" in r.message for r in caplog.records)


def test_single_entry_program_stays_sequential():
    program = compile_program([("one.c", "int only(int a) { return a; }")])
    result = PATA(config=AnalysisConfig(workers=4)).analyze(program)
    assert result.stats.workers_used == 1
    assert len(result.stats.per_entry) == 1


# ---------------------------------------------------------------------------
# Merge helper unit coverage
# ---------------------------------------------------------------------------


def test_merge_counts_cross_shard_duplicates_as_repeats():
    source = """
struct s { int v; };
static int helper(struct s *p) { if (!p) { return p->v; } return 0; }
int e1(struct s *p) { return helper(p); }
int e2(struct s *p) { return helper(p); }
"""
    program = compile_program([("dup.c", source)])
    collector = InformationCollector(program)
    entries = collector.entry_functions()
    assert len(entries) == 2

    from repro.core.report import AnalysisStats

    shards = [[entries[0]], [entries[1]]]
    results = []
    for shard in shards:
        explorer = PathExplorer(program, AnalysisConfig(), default_checkers())
        results.append(shard_result(explorer, explore_entries(explorer, shard)))
    stats = AnalysisStats()
    merged, _ = merge_shard_results(entries, shards, results, stats)

    # Both shards sight the same helper bug; the merge keeps the first
    # (entry-order) copy and books the other as a repeat — exactly what
    # one shared explorer would have done.
    explorer = PathExplorer(program, AnalysisConfig(), default_checkers())
    seq = shard_result(explorer, explore_entries(explorer, entries))
    seq_stats = AnalysisStats()
    seq_merged, _ = merge_shard_results(entries, [entries], [seq], seq_stats)
    assert [str(b) for b in merged] == [str(b) for b in seq_merged]
    assert stats.dropped_repeated_bugs == seq_stats.dropped_repeated_bugs
