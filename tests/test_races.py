"""The lockset race detector: key canonicalization, P2.5 matching,
stage-2 pair validation, and the racelab acceptance criteria."""

import random

import pytest

from repro import PATA, AnalysisConfig
from repro.alias import AliasGraph, Trail
from repro.baselines import EraserLike
from repro.corpus import RACELAB, generate
from repro.ir import INT, Move, PointerType, Var
from repro.lang import compile_program
from repro.races import SharedAccess, match_races, object_root, render_key
from repro.typestate import BugKind

P = PointerType(INT)


def _var(name, is_global=False, is_aggregate=False):
    return Var(name, P, source_name=name.lstrip("@"),
               is_global=is_global, is_aggregate=is_aggregate)


def _no_heap(uid):
    return None


# -- shared-key canonicalization -------------------------------------------


class TestObjectRoot:
    def test_global_alias_in_node(self):
        graph = AliasGraph(Trail())
        g = _var("@g", is_global=True)
        p = _var("p")
        graph.handle_move(p, g)
        assert object_root(graph.node_of(p), _no_heap) == "*@g"

    def test_scalar_global_behind_addr_of(self):
        graph = AliasGraph(Trail())
        g = _var("@g", is_global=True)
        t = _var("t")
        graph.handle_addr_of(t, g)
        assert object_root(graph.node_of(t), _no_heap) == "@g"

    def test_vars_rule_wins_over_deref_target(self):
        """After ``*g_ptr = q`` the ``*`` edge points at q's node; the
        stable name is still rule 1's ``*@g_ptr``."""
        graph = AliasGraph(Trail())
        gp = _var("@g_ptr", is_global=True)
        q = _var("q")
        graph.handle_store(gp, q)
        assert object_root(graph.node_of(gp), _no_heap) == "*@g_ptr"

    def test_heap_registration(self):
        graph = AliasGraph(Trail())
        p = _var("p")
        node = graph.handle_fresh_object(p)
        keyed = {node.uid: "heap#7"}
        assert object_root(node, lambda uid: keyed.get(uid)) == "heap#7"

    def test_field_walk_from_global_aggregate(self):
        graph = AliasGraph(Trail())
        st = _var("@st", is_global=True, is_aggregate=True)
        s = _var("s")
        f = _var("f")
        graph.handle_move(s, st)
        graph.handle_gep(f, s, "count")
        assert object_root(graph.node_of(f), _no_heap) == "*@st.count"

    def test_unshared_local_is_none(self):
        graph = AliasGraph(Trail())
        a = _var("a")
        b = _var("b")
        graph.handle_move(a, b)
        assert object_root(graph.node_of(a), _no_heap) is None


# -- P2.5 matching ----------------------------------------------------------


def _access(key, is_write, entry, lockset=frozenset()):
    inst = Move(_var("d"), _var("s"))
    return SharedAccess(key=key, is_write=is_write, inst=inst,
                        entry=entry, lockset=frozenset(lockset))


KEY = ("@g", "=")
LK_A = ("@lk_a", "=")
LK_B = ("@lk_b", "=")


class TestMatchRaces:
    def test_cross_entry_write_read_disjoint_races(self):
        w = _access(KEY, True, "writer")
        r = _access(KEY, False, "reader")
        bugs = match_races([w, r])
        assert len(bugs) == 1
        bug = bugs[0]
        assert bug.kind is BugKind.RACE
        assert bug.subject == render_key(KEY) == "@g"
        # Orientation: lower instruction uid is the source.
        assert bug.source is w.inst and bug.sink is r.inst
        assert bug.entry_function == "writer vs reader"

    def test_same_entry_skipped_unless_reentrant(self):
        w = _access(KEY, True, "e")
        r = _access(KEY, False, "e")
        assert match_races([w, r]) == []
        assert len(match_races([w, r], include_reentrant=True)) == 1

    def test_read_read_never_races(self):
        assert match_races([_access(KEY, False, "a"),
                            _access(KEY, False, "b")]) == []

    def test_common_lock_suppresses(self):
        w = _access(KEY, True, "a", {LK_A, LK_B})
        r = _access(KEY, False, "b", {LK_A})
        assert match_races([w, r]) == []

    def test_different_locks_race(self):
        w = _access(KEY, True, "a", {LK_A})
        r = _access(KEY, False, "b", {LK_B})
        bugs = match_races([w, r])
        assert len(bugs) == 1
        assert "share no lock" in bugs[0].message

    def test_different_keys_never_pair(self):
        assert match_races([_access(("@g1", "="), True, "a"),
                            _access(("@g2", "="), False, "b")]) == []

    def test_instruction_pair_dedup(self):
        w = _access(KEY, True, "a")
        r = _access(KEY, False, "b")
        again = SharedAccess(key=KEY, is_write=False, inst=r.inst,
                             entry="b", lockset=frozenset({LK_A}))
        assert len(match_races([w, r, again])) == 1

    def test_order_independence(self):
        accesses = [_access(KEY, i % 3 == 0, f"e{i % 4}") for i in range(12)]
        baseline = [b.message for b in match_races(accesses)]
        for seed in (1, 2, 3):
            shuffled = list(accesses)
            random.Random(seed).shuffle(shuffled)
            assert [b.message for b in match_races(shuffled)] == baseline
        assert baseline  # non-vacuous


# -- end-to-end: detection, suppression, stage-2 discharge ------------------


_RACE_SOURCE = """
struct rc { int lock; int count; };
static struct rc g_rc;
static int g_counter;

int reader(void) {
    struct rc *s = &g_rc;
    spin_lock(&s->lock);
    int seen = s->count;
    spin_unlock(&s->lock);
    return seen + g_counter;
}

void writer(void) {
    struct rc *s = &g_rc;
    spin_lock(&s->lock);
    s->count = s->count + 1;
    spin_unlock(&s->lock);
    g_counter = g_counter + 1;
}
"""

_GUARDED_SOURCE = """
static int g_mode;
static int g_stash;

void save(int v) {
    if (g_mode != 0)
        g_stash = v;
}

int load(void) {
    if (g_mode == 0)
        return g_stash;
    return 0;
}
"""


def _analyze(source, **config):
    program = compile_program([("x.c", source)])
    return PATA(checker_spec="race", config=AnalysisConfig(**config)).analyze(program)


class TestEndToEnd:
    def test_unlocked_global_races_locked_field_does_not(self):
        result = _analyze(_RACE_SOURCE)
        subjects = {r.subject for r in result.reports}
        # Only the unlocked scalar races; s->count is guarded by one
        # canonical lock identity on both entries and stays silent.
        assert subjects == {"@g_counter"}

    def test_race_checker_is_opt_in(self):
        program = compile_program([("x.c", _RACE_SOURCE)])
        result = PATA(checker_spec="all").analyze(program)
        assert not [r for r in result.reports if r.kind is BugKind.RACE]

    def test_guard_contradiction_discharged_by_stage2(self):
        """The pair exists (a lockset-only view reports it) but the two
        guards contradict: stage 2 conjoins both paths and drops it."""
        unvalidated = _analyze(_GUARDED_SOURCE, validate_paths=False)
        assert [r for r in unvalidated.reports if r.kind is BugKind.RACE]
        validated = _analyze(_GUARDED_SOURCE)
        assert not [r for r in validated.reports if r.kind is BugKind.RACE]
        assert validated.stats.dropped_false_bugs > 0
        assert validated.stats.race_pairs_matched > 0

    def test_eraser_baseline_reports_the_guarded_pair(self):
        """The precision edge in one sentence: EraserLike reports the
        flag-serialized pair, PATA's stage 2 discharges it."""
        program = compile_program([("x.c", _GUARDED_SOURCE)])
        eraser = EraserLike().analyze(program)
        assert any("g_stash" in f.message for f in eraser.findings)
        assert not _analyze(_GUARDED_SOURCE).reports


# -- racelab acceptance -----------------------------------------------------


class TestRacelab:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate(RACELAB)

    @pytest.fixture(scope="class")
    def program(self, corpus):
        return compile_program(corpus.compiled_sources())

    @pytest.fixture(scope="class")
    def result(self, program):
        return PATA(checker_spec="race").analyze(program)

    def test_every_injected_race_found(self, corpus, result):
        hits = [(r.kind, r.sink_file, r.sink_line) for r in result.reports]
        found = {gt.uid for gt in corpus.ground_truth
                 if any(gt.covers(*h) for h in hits)}
        assert found == {gt.uid for gt in corpus.ground_truth}

    def test_zero_bait_reports(self, corpus, result):
        bait = [(r.sink_file, r.sink_line) for r in result.reports
                if any(b.path == r.sink_file
                       and b.line_start <= r.sink_line <= b.line_end
                       for b in corpus.bait_regions)]
        assert bait == []

    def test_no_findings_outside_ground_truth(self, corpus, result):
        stray = [r for r in result.reports
                 if not any(gt.covers(r.kind, r.sink_file, r.sink_line)
                            for gt in corpus.ground_truth)]
        assert stray == []

    def test_eraser_reports_what_stage2_discharges(self, corpus, program, result):
        eraser = EraserLike().analyze(program)
        eraser_bait = [f for f in eraser.findings
                       if any(b.path == f.file
                              and b.line_start <= f.line <= b.line_end
                              for b in corpus.bait_regions)]
        assert eraser_bait  # the lockset-only regime reports guarded pairs
        assert result.stats.dropped_false_bugs >= len(
            {(f.file, f.line) for f in eraser_bait}) > 0


# -- double-lock source-site regression (satellite) -------------------------


_TRIPLE_LOCK = """
struct st { int lock; int n; };
static struct st g_st;

int f(void) {
    struct st *s = &g_st;
    spin_lock(&s->lock);
    spin_lock(&s->lock);
    spin_lock(&s->lock);
    spin_unlock(&s->lock);
    return 0;
}
"""


def test_triple_acquire_reports_cite_the_first_acquire():
    """Both double-lock reports must cite acquire #1 as the source; the
    old merge carried the *re*-acquiring instruction forward, so report
    #2 wrongly cited acquire #2."""
    program = compile_program([("x.c", _TRIPLE_LOCK)])
    result = PATA(checker_spec="dl").analyze(program)
    dl = [r for r in result.reports if r.kind is BugKind.DOUBLE_LOCK]
    assert len(dl) == 2
    first_acquire_line = _TRIPLE_LOCK.split("\n").index("    spin_lock(&s->lock);") + 1
    assert [r.source_line for r in dl] == [first_acquire_line, first_acquire_line]
    assert dl[0].sink_line == first_acquire_line + 1
    assert dl[1].sink_line == first_acquire_line + 2
