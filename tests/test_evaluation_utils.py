"""Evaluation harness utilities: rendering, caching, report generation."""

import pytest

from repro.corpus import TENCENTOS, ZEPHYR
from repro.evaluation import (
    EvaluationHarness,
    generate_markdown_report,
    render_table,
    table4_os_info,
)


def test_render_table_alignment():
    text = render_table(
        ["Name", "Count"],
        [["alpha", 1], ["much-longer-name", 23]],
        title="Demo",
    )
    lines = text.splitlines()
    assert lines[0] == "Demo"
    header, sep, row1, row2 = lines[1:]
    assert header.index("Count") == row1.index("1")
    assert set(sep) <= {"-", "+"}
    assert len({len(header), len(row1), len(row2)}) == 1  # equal widths


def test_render_table_without_title():
    text = render_table(["A"], [["x"]])
    assert not text.startswith("\n")
    assert text.splitlines()[0].startswith("A")


def test_harness_caches_corpus_and_programs():
    harness = EvaluationHarness(scale=0.2, profiles=[TENCENTOS])
    first = harness.run_for(TENCENTOS)
    second = harness.run_for(TENCENTOS)
    assert first is second
    assert first.program is second.program


def test_harness_caches_pata_run():
    harness = EvaluationHarness(scale=0.2, profiles=[TENCENTOS])
    run1 = harness.run_pata(TENCENTOS)
    result1 = run1.pata_result
    run2 = harness.run_for(TENCENTOS)
    assert run2.pata_result is result1  # not recomputed by run_for


def test_harness_restricted_profiles():
    harness = EvaluationHarness(scale=0.2, profiles=[ZEPHYR])
    data, _ = table4_os_info(harness)
    assert set(data) == {"zephyr"}


def test_markdown_report_structure():
    harness = EvaluationHarness(scale=0.15, profiles=[ZEPHYR, TENCENTOS])
    # table6 needs the linux profile; restrict to the sections that work
    # on any profile set by monkey-driving the full generator with linux.
    harness_full = EvaluationHarness(scale=0.15)
    report = generate_markdown_report(harness_full)
    assert report.startswith("# PATA reproduction — evaluation report")
    for heading in ("## Table 4", "## Table 5", "## Figure 11",
                    "## Table 6", "## Table 7", "## Table 8",
                    "## Headline deltas"):
        assert heading in report
    assert "unique to PATA" in report


def test_run_tool_records_results():
    from repro.baselines import CoccinelleLike

    harness = EvaluationHarness(scale=0.3, profiles=[ZEPHYR])
    result, match = harness.run_tool(ZEPHYR, CoccinelleLike(), source_based=True)
    run = harness.run_for(ZEPHYR)
    assert "coccinelle-like" in run.tool_results
    assert run.tool_matches["coccinelle-like"] is match
