"""Every generated corpus module must pass the IR verifier.

The corpora are the substrate of every benchmark number; a malformed
module (unterminated block, twice-defined temporary, non-pointer lock
operand) would silently skew them.  Run in CI via ``make lint-corpus``.
"""

import pytest

from repro.corpus import ALL_PROFILES, FIRMLAB, RACELAB, TAINTLAB, generate
from repro.ir import LockOp, PointerType, Var, verify_program
from repro.lang import compile_program

_PROFILES = ALL_PROFILES + [TAINTLAB, RACELAB, FIRMLAB]


@pytest.mark.parametrize("profile", _PROFILES, ids=[p.name for p in _PROFILES])
def test_generated_corpus_verifies(profile):
    corpus = generate(profile)
    # All sources, not just compiled ones: config-excluded files still
    # feed the source-based baselines and must be well-formed too.
    program = compile_program(corpus.all_sources())
    problems = verify_program(program)
    assert problems == [], "\n".join(problems)


def test_verifier_rejects_non_pointer_lock_operand():
    from repro.ir import Function, INT, Module, Program, Ret

    func = Function("f", params=[], filename="x.c")
    block = func.add_block("entry")
    block.append(LockOp(Var("n", INT, source_name="n"), acquire=True))
    block.set_terminator(Ret())
    module = Module("x.c")
    module.add_function(func)
    problems = verify_program(Program([module]))
    assert any("pointer-typed" in p for p in problems)


def test_lowered_lock_operands_are_pointer_typed():
    """The frontend must give every lock intrinsic a pointer-typed
    operand — the shape the verifier now enforces."""
    source = """
struct st { int lock; int n; };
static struct st g_st;
int f(void) {
    struct st *s = &g_st;
    spin_lock(&s->lock);
    s->n = 1;
    spin_unlock(&s->lock);
    return 0;
}
"""
    program = compile_program([("x.c", source)])
    locks = [
        inst
        for func in program.functions()
        for block in func.blocks
        for inst in block.instructions
        if isinstance(inst, LockOp)
    ]
    assert len(locks) == 2
    for inst in locks:
        assert isinstance(inst.lock.type, PointerType)
    assert verify_program(program) == []
