"""IR printer coverage and the error hierarchy."""

import pytest

from repro import errors, ir
from repro.lang import compile_source


def test_every_instruction_kind_prints():
    func = ir.Function("p", [ir.Var("p.x", ir.PointerType(ir.INT), source_name="x")], ir.INT)
    b = ir.IRBuilder(func)
    entry = b.new_block("entry")
    b.position_at(entry)
    x = func.params[0]
    slot = b.alloc(ir.INT)
    heap = b.malloc(ir.const_int(8))
    b.decl_local(ir.Var("p.u", ir.INT, source_name="u"))
    loaded = b.load(x)
    b.store(x, ir.const_int(1))
    g = b.gep(x, "field")
    a = b.addr_of(ir.Var("@glob", ir.INT, is_global=True))
    s = b.binop("add", loaded, ir.const_int(2))
    n = b.unop("neg", s)
    c = b.call("helper", [n], ir.INT)
    b.call_indirect(ir.Var("p.fn", ir.VOID_PTR, source_name="fn"), [c], ir.INT)
    b.memset(heap, ir.const_int(0), ir.const_int(8))
    b.lock(x)
    b.unlock(x)
    b.free(heap)
    b.ret(ir.const_int(0))
    text = ir.format_function(func)
    for needle in ("alloca", "malloc(", "decl ", "= *", "*p.x = 1", "&p.x->field",
                   "= &@glob", "add", "neg", "call helper", "icall", "memset(",
                   "spin_lock(", "spin_unlock(", "free(", "ret 0"):
        assert needle in text, f"missing {needle!r} in:\n{text}"


def test_module_printer_includes_structs_globals_registrations():
    module = compile_source(
        "struct s { int a; };\n"
        "static struct s g;\n"
        "static int probe(struct s *p) { return p->a; }\n"
        "struct drv { int (*probe)(struct s *p); };\n"
        "static struct drv d = { .probe = probe };"
    )
    text = ir.format_module(module)
    assert "struct s {" in text
    assert "global" in text
    assert "register" in text
    assert "interface define" in text


def test_branch_and_jump_render_targets():
    module = compile_source("int f(int a) { if (a) return 1; return 0; }")
    text = ir.format_function(module.functions["f"])
    assert "br %" in text and "if.then" in text


def test_error_hierarchy_roots():
    for exc in (errors.IRError, errors.LexError, errors.ParseError,
                errors.SemaError, errors.AnalysisError, errors.BudgetExceeded,
                errors.SolverError):
        assert issubclass(exc, errors.ReproError)


def test_positioned_errors_format_location():
    err = errors.ParseError("boom", "file.c", 3, 7)
    assert "file.c:3:7" in str(err)
    sema = errors.SemaError("bad", "file.c", 9)
    assert "file.c:9" in str(sema)


def test_lex_error_carries_position_attributes():
    err = errors.LexError("bad char", "x.c", 2, 5)
    assert (err.filename, err.line, err.column) == ("x.c", 2, 5)


def test_source_loc_str():
    loc = ir.SourceLoc("a.c", 12)
    assert str(loc) == "a.c:12"
