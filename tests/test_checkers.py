"""Per-checker behaviour tests, driven through the full engine on tiny
mini-C programs (the checkers only see engine events, so this is the
honest way to test them)."""

import pytest

from repro import PATA, AnalysisConfig
from repro.typestate import BugKind


def run(source, all_checkers=True, validate=True):
    config = AnalysisConfig(validate_paths=validate)
    pata = PATA.with_all_checkers(config=config) if all_checkers else PATA(config=config)
    return pata.analyze_sources([("t.c", source)])


def kinds_found(result):
    return sorted((r.kind.short, r.sink_line) for r in result.reports)


# -- NPD -----------------------------------------------------------------------


def test_npd_assign_null_then_deref():
    result = run("int f(void) { int *p = NULL; return *p; }")
    assert any(r.kind is BugKind.NPD for r in result.reports)


def test_npd_checked_pointer_in_null_branch():
    result = run("int f(int *p) { if (!p) { return *p; } return 0; }")
    assert any(r.kind is BugKind.NPD for r in result.reports)


def test_npd_not_reported_after_nonnull_proof():
    result = run("int f(int *p) { if (!p) return -1; return *p; }")
    assert not any(r.kind is BugKind.NPD for r in result.reports)


def test_npd_through_field_store_alias():
    source = """
struct c { int *slot; };
static struct c g;
int f(int *p) {
    g.slot = p;
    if (!g.slot)
        return *p;
    return 0;
}
"""
    result = run(source)
    assert any(r.kind is BugKind.NPD for r in result.reports)


def test_npd_null_stored_through_field_then_loaded():
    source = """
struct c { int *slot; };
int f(struct c *o) {
    o->slot = NULL;
    int *q = o->slot;
    return *q;
}
"""
    result = run(source)
    assert any(r.kind is BugKind.NPD for r in result.reports)


def test_npd_deref_via_gep_base():
    source = """
struct s { int v; };
int f(struct s *p) {
    if (p == NULL)
        return p->v;
    return 0;
}
"""
    result = run(source)
    assert any(r.kind is BugKind.NPD for r in result.reports)


def test_npd_unknown_pointer_not_flagged():
    result = run("int f(int *p) { return *p; }")
    assert not any(r.kind is BugKind.NPD for r in result.reports)


# -- UVA ----------------------------------------------------------------------


def test_uva_scalar_used_before_assignment():
    result = run("int f(int c) { int x; if (c) x = 1; return x; }")
    assert any(r.kind is BugKind.UVA for r in result.reports)


def test_uva_scalar_initialized_on_all_paths_safe():
    result = run("int f(int c) { int x; if (c) x = 1; else x = 2; return x; }")
    assert not any(r.kind is BugKind.UVA for r in result.reports)


def test_uva_kmalloc_field_read_before_write():
    source = """
struct s { int a; int b; };
int f(void) {
    struct s *p = kmalloc(sizeof(struct s));
    if (!p) return -1;
    int v = p->a;
    kfree(p);
    return v;
}
"""
    result = run(source)
    assert any(r.kind is BugKind.UVA for r in result.reports)


def test_uva_field_sensitive_written_field_is_fine():
    source = """
struct s { int a; int b; };
int f(void) {
    struct s *p = kmalloc(sizeof(struct s));
    if (!p) return -1;
    p->a = 5;
    int v = p->a;
    kfree(p);
    return v;
}
"""
    result = run(source)
    assert not any(r.kind is BugKind.UVA for r in result.reports)


def test_uva_kzalloc_region_is_initialized():
    source = """
struct s { int a; };
int f(void) {
    struct s *p = kzalloc(sizeof(struct s));
    if (!p) return -1;
    int v = p->a;
    kfree(p);
    return v;
}
"""
    result = run(source)
    assert not any(r.kind is BugKind.UVA for r in result.reports)


def test_uva_memset_initializes_region():
    source = """
struct s { int a; };
int f(void) {
    struct s *p = kmalloc(sizeof(struct s));
    if (!p) return -1;
    memset(p, 0, sizeof(struct s));
    int v = p->a;
    kfree(p);
    return v;
}
"""
    result = run(source)
    assert not any(r.kind is BugKind.UVA for r in result.reports)


def test_uva_pointer_value_not_confused_with_region():
    # p itself is perfectly initialized by the allocation; only the
    # region behind it is not — "if (!p)" must not be flagged.
    source = """
int f(void) {
    char *p = kmalloc(8);
    if (!p) return -1;
    kfree(p);
    return 0;
}
"""
    result = run(source)
    assert not any(r.kind is BugKind.UVA for r in result.reports)


def test_uva_through_alias_in_callee():
    source = """
struct s { int a; };
static int peek(struct s *q) { return q->a; }
int f(void) {
    struct s *p = kmalloc(sizeof(struct s));
    if (!p) return -1;
    int v = peek(p);
    kfree(p);
    return v;
}
"""
    result = run(source)
    assert any(r.kind is BugKind.UVA for r in result.reports)


# -- ML -----------------------------------------------------------------------


def test_ml_simple_leak_on_return():
    result = run("int f(int n) { char *p = malloc(n); if (!p) return -1; return n; }")
    assert any(r.kind is BugKind.ML for r in result.reports)


def test_ml_freed_is_safe():
    result = run("int f(int n) { char *p = malloc(n); if (!p) return -1; free(p); return n; }")
    assert not any(r.kind is BugKind.ML for r in result.reports)


def test_ml_failed_allocation_path_not_a_leak():
    result = run("int f(int n) { char *p = malloc(n); if (!p) return -1; free(p); return 0; }")
    ml = [r for r in result.reports if r.kind is BugKind.ML]
    assert ml == []


def test_ml_returned_pointer_escapes():
    result = run("char *f(int n) { char *p = malloc(n); return p; }")
    assert not any(r.kind is BugKind.ML for r in result.reports)


def test_ml_stored_pointer_escapes():
    source = """
struct holder { char *buf; };
static struct holder g;
int f(int n) {
    char *p = malloc(n);
    g.buf = p;
    return 0;
}
"""
    result = run(source)
    assert not any(r.kind is BugKind.ML for r in result.reports)


def test_ml_leak_of_callee_allocated_object():
    source = """
static char *grab(int n) { char *p = kmalloc(n); return p; }
int f(int n, int flag) {
    char *b = grab(n);
    if (!b) return -1;
    if (flag) return -2;
    kfree(b);
    return 0;
}
"""
    result = run(source)
    ml = [r for r in result.reports if r.kind is BugKind.ML]
    assert len(ml) == 1


def test_ml_error_path_leak_with_later_free():
    source = """
int f(int n, int bad) {
    char *p = malloc(n);
    if (!p) return -1;
    if (bad) return -5;
    free(p);
    return 0;
}
"""
    result = run(source)
    assert any(r.kind is BugKind.ML for r in result.reports)


# -- double lock / underflow / div-zero ------------------------------------------


def test_double_lock_reported():
    source = """
struct d { int lock; };
static struct d g;
void f(int retry) {
    spin_lock(&g.lock);
    if (retry)
        spin_lock(&g.lock);
    spin_unlock(&g.lock);
}
"""
    result = run(source)
    assert any(r.kind is BugKind.DOUBLE_LOCK for r in result.reports)


def test_double_unlock_reported():
    source = """
struct d { int lock; };
static struct d g;
void f(int c) {
    spin_lock(&g.lock);
    spin_unlock(&g.lock);
    if (c)
        spin_unlock(&g.lock);
}
"""
    result = run(source)
    assert any(r.kind is BugKind.DOUBLE_LOCK for r in result.reports)


def test_balanced_locking_is_safe():
    source = """
struct d { int lock; };
static struct d g;
void f(void) {
    spin_lock(&g.lock);
    spin_unlock(&g.lock);
    spin_lock(&g.lock);
    spin_unlock(&g.lock);
}
"""
    result = run(source)
    assert not any(r.kind is BugKind.DOUBLE_LOCK for r in result.reports)


def test_lock_aliasing_through_pointer():
    source = """
struct d { int lock; };
void f(struct d *a) {
    struct d *b = a;
    spin_lock(&a->lock);
    spin_lock(&b->lock);
    spin_unlock(&a->lock);
}
"""
    result = run(source)
    assert any(r.kind is BugKind.DOUBLE_LOCK for r in result.reports)


def test_array_underflow_from_error_return():
    source = """
static int table[8];
static int find(int k) { if (k > 7) return -1; return k; }
int f(int k) {
    int idx = find(k);
    return table[idx];
}
"""
    result = run(source)
    assert any(r.kind is BugKind.ARRAY_UNDERFLOW for r in result.reports)


def test_array_underflow_suppressed_by_check():
    source = """
static int table[8];
static int find(int k) { if (k > 7) return -1; return k; }
int f(int k) {
    int idx = find(k);
    if (idx < 0)
        return 0;
    return table[idx];
}
"""
    result = run(source)
    assert not any(r.kind is BugKind.ARRAY_UNDERFLOW for r in result.reports)


def test_div_by_zero_from_zero_returning_callee():
    source = """
static int count(int m) { if (m == 0) return 0; return m; }
int f(int total, int m) {
    int c = count(m);
    return total / c;
}
"""
    result = run(source)
    assert any(r.kind is BugKind.DIV_BY_ZERO for r in result.reports)


def test_div_guarded_is_safe():
    source = """
static int count(int m) { if (m == 0) return 0; return m; }
int f(int total, int m) {
    int c = count(m);
    if (c == 0)
        return 0;
    return total / c;
}
"""
    result = run(source)
    assert not any(r.kind is BugKind.DIV_BY_ZERO for r in result.reports)


def test_div_by_literal_zero_is_definite():
    result = run("int f(int a) { return a / 0; }")
    assert any(r.kind is BugKind.DIV_BY_ZERO for r in result.reports)


def test_default_checkers_exclude_extended_kinds():
    source = """
static int table[4];
static int find(int k) { if (k > 3) return -1; return k; }
int f(int k) { int idx = find(k); return table[idx]; }
"""
    result = run(source, all_checkers=False)
    assert not any(r.kind is BugKind.ARRAY_UNDERFLOW for r in result.reports)
