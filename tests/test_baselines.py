"""Baseline tools: the find/miss matrix that drives Table 8's shape.

Each canonical pattern is run through every tool; the assertions pin the
*regime* differences (aliasing, path sensitivity, inter-procedurality),
not exact counts.
"""

import random

import pytest

from repro.baselines import (
    CSALike,
    CoccinelleLike,
    CppcheckLike,
    InferLike,
    PataNA,
    SVFNull,
    SaberLike,
)
from repro.corpus.patterns import (
    COMMON_DECLS,
    bait_checked_return,
    bait_flag_guard,
    ml_never_freed,
    npd_callee_field_alias,
    npd_error_path_local,
    npd_interface_alias,
)
from repro.lang import compile_program
from repro.typestate import BugKind


def program_for(pattern_fn, uid="7001"):
    snippet = pattern_fn(uid, random.Random(3))
    src = COMMON_DECLS + "\n" + "\n".join(snippet.lines) + "\n"
    return compile_program([("t.c", src)])


def kinds(tool, program):
    return [f.kind for f in tool.analyze(program).findings]


# -- the easy intra-procedural NPD: everyone should see it ---------------------


def test_easy_npd_found_by_cppcheck():
    program = program_for(npd_error_path_local)
    assert BugKind.NPD in kinds(CppcheckLike(), program)


def test_easy_npd_found_by_coccinelle():
    program = program_for(npd_error_path_local)
    assert BugKind.NPD in kinds(CoccinelleLike(), program)


def test_easy_npd_found_by_infer():
    program = program_for(npd_error_path_local)
    assert BugKind.NPD in kinds(InferLike(), program)


def test_easy_npd_found_by_svf_null():
    program = program_for(npd_error_path_local)
    assert BugKind.NPD in kinds(SVFNull(), program)


def test_easy_npd_found_by_csa():
    program = program_for(npd_error_path_local)
    assert BugKind.NPD in kinds(CSALike(), program)


# -- the Fig. 1 interface-alias NPD: only alias-aware path analysis sees it ----


def test_interface_alias_npd_missed_by_cppcheck():
    program = program_for(npd_interface_alias)
    assert BugKind.NPD not in kinds(CppcheckLike(), program)


def test_interface_alias_npd_missed_by_coccinelle():
    program = program_for(npd_interface_alias)
    assert BugKind.NPD not in kinds(CoccinelleLike(), program)


def test_interface_alias_npd_missed_by_svf_null():
    """Points-to sets of interface params are empty (D1) ⇒ miss."""
    program = program_for(npd_interface_alias)
    assert BugKind.NPD not in kinds(SVFNull(), program)


def test_interface_alias_npd_missed_by_pata_na():
    program = program_for(npd_interface_alias)
    assert BugKind.NPD not in kinds(PataNA(), program)


# -- the Fig. 3 cross-function field alias ---------------------------------------


def test_callee_field_alias_missed_by_intraprocedural_tools():
    program = program_for(npd_callee_field_alias)
    for tool in (CppcheckLike(), CoccinelleLike()):
        assert BugKind.NPD not in kinds(tool, program)


# -- bait: path-insensitive tools report, feasibility-aware ones stay quiet ----


def test_flag_guard_bait_not_flagged_by_syntactic_tools():
    # cppcheck/coccinelle only react to explicit NULL tests; the flag
    # correlation pattern has one, but the deref is outside its null arm.
    program = program_for(bait_flag_guard)
    assert BugKind.NPD not in kinds(CoccinelleLike(), program)


def test_checked_return_bait_not_flagged_by_coccinelle():
    program = program_for(bait_checked_return)
    assert BugKind.NPD not in kinds(CoccinelleLike(), program)


def test_csa_reports_flag_guard_bait():
    """No constraint discharge: the infeasible path survives in CSA."""
    program = program_for(bait_flag_guard)
    assert BugKind.NPD in kinds(CSALike(), program)


def test_pata_na_reports_flag_guard_bait():
    program = program_for(bait_flag_guard)
    # NA validation cannot relate ok==1 to p!=NULL through the path...
    # actually the correlation is purely scalar, so NA *can* discharge it;
    # what NA cannot discharge is the Fig. 9 aliasing bait:
    from repro.corpus.patterns import bait_contradictory_fields

    program2 = program_for(bait_contradictory_fields)
    assert BugKind.NPD in kinds(PataNA(), program2)


# -- memory leaks ---------------------------------------------------------------


def test_whole_function_leak_found_by_saber():
    program = program_for(ml_never_freed)
    assert BugKind.ML in kinds(SaberLike(), program)


def test_whole_function_leak_found_by_cppcheck_and_infer():
    program = program_for(ml_never_freed)
    assert BugKind.ML in kinds(CppcheckLike(), program)
    assert BugKind.ML in kinds(InferLike(), program)


def test_saber_oom_status_on_budget():
    program = program_for(ml_never_freed)
    result = SaberLike(max_pts_entries=1).analyze(program)
    assert result.status == "oom"
    assert result.findings == []


def test_svf_oom_status_on_budget():
    # Needs a program with allocations so the points-to solver has
    # entries to exceed the budget with.
    program = program_for(ml_never_freed)
    result = SVFNull(max_pts_entries=0).analyze(program)
    assert result.status == "oom"


def test_coccinelle_only_reports_npd():
    program = program_for(ml_never_freed)
    result = CoccinelleLike().analyze(program)
    assert all(f.kind is BugKind.NPD for f in result.findings)


def test_saber_only_reports_ml():
    program = program_for(npd_error_path_local)
    result = SaberLike().analyze(program)
    assert all(f.kind is BugKind.ML for f in result.findings)


def test_tool_results_record_time():
    program = program_for(npd_error_path_local)
    result = CppcheckLike().analyze(program)
    assert result.time_seconds >= 0.0
    assert result.status == "ok"


def test_pata_na_exposes_last_result():
    program = program_for(npd_error_path_local)
    tool = PataNA()
    tool.analyze(program)
    assert tool.last_result is not None
