"""Taint-checker tests: sources, alias-aware propagation, the four sinks,
SMT-discharged sanitization, corpus acceptance, and the spec machinery."""

import pytest

from repro import PATA, AnalysisConfig
from repro.baselines import TaintNaive, all_baselines
from repro.corpus import TAINTLAB, generate
from repro.lang import compile_program
from repro.presolve.events import EventKind
from repro.taint import DEFAULT_TAINT_SPEC, TAINT_FSM, TaintChecker, TaintSpec
from repro.typestate import (
    BugKind,
    CHECKER_ALIASES,
    CHECKER_SPECS,
    checkers_from_spec,
)


def analyze(source, spec="taint", **config_kw):
    program = compile_program([("t.c", source)])
    return PATA(checker_spec=spec, config=AnalysisConfig(**config_kw)).analyze(program)


def taint_reports(result):
    return [r for r in result.reports if r.kind is BugKind.TAINT]


# ---------------------------------------------------------------------------
# Sources and sinks
# ---------------------------------------------------------------------------

INDEX_SOURCE = """
static int lut[16];
int read_user_idx(void);

int peek(void) {
    int idx = read_user_idx();
    return lut[idx];
}
"""


def test_return_source_to_index_sink():
    reports = taint_reports(analyze(INDEX_SOURCE))
    assert len(reports) == 1
    assert reports[0].checker == "taint"
    assert "idx" in reports[0].message


def test_index_sanitized_by_lower_bound_check_is_discharged():
    source = """
static int lut[16];
int read_user_idx(void);

int peek(void) {
    int idx = read_user_idx();
    if (idx < 0)
        return -1;
    if (idx > 15)
        return -1;
    return lut[idx];
}
"""
    result = analyze(source)
    assert taint_reports(result) == []
    # The flow was seen and then SMT-discharged, not missed outright.
    assert result.stats.dropped_false_bugs >= 1


def test_buffer_source_taints_local_through_address():
    # copy_from_user(&chunk, ...) overwrites an *initialized* local; the
    # report requires both the deref-node taint and the translator's
    # source havoc (else chunk == 1 makes the zero-divisor atom UNSAT).
    source = """
int copy_from_user_n(int *dst, int len);

int ratio(int total) {
    int chunk = 1;
    copy_from_user_n(&chunk, 4);
    return total / chunk;
}
"""
    reports = taint_reports(analyze(source))
    assert len(reports) == 1


def test_divisor_sanitized_by_zero_check_is_discharged():
    source = """
int copy_from_user_n(int *dst, int len);

int ratio(int total) {
    int chunk = 1;
    copy_from_user_n(&chunk, 4);
    if (chunk == 0)
        return 0;
    return total / chunk;
}
"""
    assert taint_reports(analyze(source)) == []


def test_interprocedural_field_alias_alloc_sink():
    # The source writes q's field through the callee parameter r: only an
    # alias-aware tracker connects r->len to q->len across the call.
    source = """
struct ureq { int len; int mode; };
int read_user_len(void);

static void fetch_len(struct ureq *r) {
    r->len = read_user_len();
}

int prep(struct ureq *q) {
    fetch_len(q);
    int n = q->len;
    char *buf = malloc(n);
    if (buf == NULL)
        return -1;
    free(buf);
    return 0;
}
"""
    reports = taint_reports(analyze(source))
    assert len(reports) >= 1
    assert any("allocation size" in r.message for r in reports)


def test_alloc_sink_discharged_by_upper_bound_check():
    source = """
int read_user_len(void);

int prep(void) {
    int n = read_user_len();
    if (n > 4096)
        return -1;
    char *buf = malloc(n);
    if (buf == NULL)
        return -1;
    free(buf);
    return 0;
}
"""
    assert taint_reports(analyze(source)) == []


def test_memset_length_sink():
    source = """
int read_user_cnt(void);

int fill(char *buf) {
    int n = read_user_cnt();
    memset(buf, 0, n);
    return n;
}
"""
    reports = taint_reports(analyze(source))
    assert len(reports) == 1
    assert "copy length" in reports[0].message


def test_arithmetic_propagates_taint():
    source = """
static int lut[32];
int read_user_idx(void);

int peek2(void) {
    int idx = read_user_idx();
    int off = idx * 2;
    return lut[off];
}
"""
    assert len(taint_reports(analyze(source))) == 1


def test_untainted_code_reports_nothing():
    source = """
static int lut[16];
int probe_one(int key) {
    int idx = key & 15;
    return lut[idx];
}
"""
    assert taint_reports(analyze(source)) == []


# ---------------------------------------------------------------------------
# Spec machinery
# ---------------------------------------------------------------------------


def test_default_spec_is_covered_by_global_hints():
    assert DEFAULT_TAINT_SPEC.covered_by_hints()
    assert TaintChecker().trigger_events == EventKind.TAINT_SOURCE


def test_uncovered_spec_falls_back_to_conservative_triggers():
    spec = TaintSpec(return_sources=("mystery_input",), buffer_sources=())
    assert not spec.covered_by_hints()
    checker = TaintChecker(spec)
    assert checker.trigger_events & EventKind.EXTERNAL_CALL
    assert checker.trigger_events & EventKind.CALL_RETURN


def test_fsm_shape():
    assert TAINT_FSM.initial == "S0"
    assert TAINT_FSM.run(["taint", "sink_use"]) == "STS"
    assert TAINT_FSM.run(["taint", "sanitize", "sink_use"]) == "S0"


def test_checkers_from_spec_names_and_aliases():
    assert [c.name for c in checkers_from_spec("default")] == ["npd", "uva", "ml"]
    assert [c.name for c in checkers_from_spec("all")] == [
        "npd", "uva", "ml", "dl", "aiu", "dbz",
    ]
    assert [c.name for c in checkers_from_spec("npd,ml,taint")] == ["npd", "ml", "taint"]
    assert [c.name for c in checkers_from_spec("default,taint")] == [
        "npd", "uva", "ml", "taint",
    ]
    # Order-preserving dedup.
    assert [c.name for c in checkers_from_spec("taint,default,npd")] == [
        "taint", "npd", "uva", "ml",
    ]


def test_checkers_from_spec_rejects_unknown_names():
    with pytest.raises(ValueError, match="unknown checker"):
        checkers_from_spec("npd,bogus")
    with pytest.raises(ValueError, match="empty"):
        checkers_from_spec(",")
    for alias, expansion in CHECKER_ALIASES.items():
        assert alias in CHECKER_SPECS
        checkers_from_spec(expansion)  # every alias expansion is valid


def test_pata_rejects_bad_spec_eagerly():
    with pytest.raises(ValueError):
        PATA(checker_spec="nonsense")
    with pytest.raises(ValueError):
        PATA(checkers=checkers_from_spec("npd"), checker_spec="npd")


# ---------------------------------------------------------------------------
# Corpus acceptance (ISSUE criteria)
# ---------------------------------------------------------------------------


def _taintlab_results(**config_kw):
    corpus = generate(TAINTLAB)
    program = compile_program(corpus.compiled_sources())
    result = PATA(
        checker_spec="taint", config=AnalysisConfig(**config_kw)
    ).analyze(program)
    return corpus, result


def test_corpus_every_injected_flow_found_and_sanitized_variants_clean():
    corpus, result = _taintlab_results()
    found = set()
    for gt in corpus.ground_truth:
        for r in result.reports:
            if gt.covers(r.kind, r.sink_file, r.sink_line):
                found.add(gt.uid)
    missed = [gt.uid for gt in corpus.ground_truth if gt.uid not in found]
    assert missed == []
    bait_hits = [
        r
        for r in result.reports
        if any(
            b.path == r.sink_file and b.line_start <= r.sink_line <= b.line_end
            for b in corpus.bait_regions
        )
    ]
    assert bait_hits == []


def test_corpus_pruned_vs_unpruned_reports_identical():
    _, pruned = _taintlab_results(prune=True)
    _, unpruned = _taintlab_results(prune=False)
    assert [r.render() for r in pruned.reports] == [r.render() for r in unpruned.reports]
    assert pruned.stats.entries_skipped > 0


# ---------------------------------------------------------------------------
# The naive baseline
# ---------------------------------------------------------------------------


def test_taint_naive_finds_cooccurrence_but_not_interprocedural():
    corpus = generate(TAINTLAB)
    program = compile_program(corpus.compiled_sources())
    result = TaintNaive().analyze(program)
    assert result.status == "ok"
    found = set()
    for gt in corpus.ground_truth:
        for f in result.findings:
            if gt.covers(f.kind, f.file, f.line):
                found.add(gt.uid)
    interprocedural = {
        gt.uid for gt in corpus.ground_truth if gt.requires.interprocedural
    }
    assert interprocedural  # the corpus injects cross-function flows
    assert not (found & interprocedural)  # ...and the grep regime misses them
    # It flags the sanitized siblings PATA discharges.
    bait_hits = [
        f
        for f in result.findings
        if any(
            b.path == f.file and b.line_start <= f.line <= b.line_end
            for b in corpus.bait_regions
        )
    ]
    assert bait_hits


def test_taint_naive_not_in_table8_lineup():
    assert all(tool.name != "taint-naive" for tool in all_baselines())
    assert len(all_baselines()) == 7
