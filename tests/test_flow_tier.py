"""P1.8 flow-sensitive middle tier: strong updates, must facts, and the
taint must-not-alias sharpening.

Three layers of evidence:

* **property suite** — randomized small acyclic pointer programs,
  checked against a brute-force path enumerator: on an acyclic path
  every allocation runs at most once, so a per-path interpreter whose
  stores are always strong is *exact*; the flow pass (joins, bounded
  fixpoint, strong-update kills) must over-approximate it at every
  block for every name.  Any unsound kill shows up as a concrete value
  the flow pass lost;
* **Andersen-coarsening cross-check** — on every corpus profile, the
  strong-update states must refine (never leave) the Andersen sets, so
  every Andersen must-not-alias verdict survives at every program point;
* **unit pins** — kill coordinates are deterministic, facts pickle
  without dragging memos along, skip sets are strict supersets of the
  P1.7 singleton fast path, and the taint reachability oracle answers
  the hand-built positive/negative cases.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.cfg import successors
from repro.corpus import ALL_PROFILES, generate
from repro.ir import Var
from repro.lang import compile_program
from repro.pointsto import (
    AndersenPointsTo,
    MustAliasFacts,
    SteensgaardPointsTo,
    compute_flow_facts,
    taint_flow_possible,
)
from repro.pointsto.flow_sensitive import FlowSensitivePointsTo

# -- randomized program generation ------------------------------------------
#
# The grammar keeps every pointer assignment deterministic (p = &x,
# p = q, q = &p, p = *q) so a concrete path fixes every pointer exactly
# — the brute-force reference below is then exact, not conservative,
# and the subset check is precisely a soundness check.

_INTS = ("x0", "x1", "x2")
_PTRS = ("p0", "p1", "p2")
_PPTRS = ("q0", "q1")


def _stmt():
    return st.one_of(
        st.tuples(st.just("addr"), st.sampled_from(_PTRS), st.sampled_from(_INTS)),
        st.tuples(st.just("copy"), st.sampled_from(_PTRS), st.sampled_from(_PTRS)),
        st.tuples(st.just("addrp"), st.sampled_from(_PPTRS), st.sampled_from(_PTRS)),
        st.tuples(st.just("storep"), st.sampled_from(_PPTRS), st.sampled_from(_PTRS)),
        st.tuples(st.just("loadp"), st.sampled_from(_PTRS), st.sampled_from(_PPTRS)),
        st.tuples(st.just("storei"), st.sampled_from(_PTRS), st.integers(0, 9)),
        st.tuples(st.just("loadi"), st.sampled_from(_INTS), st.sampled_from(_PTRS)),
    )


_BLOCKS = st.lists(_stmt(), min_size=1, max_size=5)


def _render_stmt(stmt):
    kind = stmt[0]
    if kind == "addr":
        return f"{stmt[1]} = &{stmt[2]};"
    if kind == "copy":
        return f"{stmt[1]} = {stmt[2]};"
    if kind == "addrp":
        return f"{stmt[1]} = &{stmt[2]};"
    if kind == "storep":
        return f"*{stmt[1]} = {stmt[2]};"
    if kind == "loadp":
        return f"{stmt[1]} = *{stmt[2]};"
    if kind == "storei":
        return f"*{stmt[1]} = {stmt[2]};"
    return f"{stmt[1]} = *{stmt[2]};"


def _render_program(prelude, branches):
    lines = ["void f(void) {"]
    lines += [f"    int {n} = 0;" for n in _INTS]
    lines += [f"    int *{n} = &x0;" for n in _PTRS]
    lines += [f"    int **{n} = &p0;" for n in _PPTRS]
    lines += ["    " + _render_stmt(s) for s in prelude]
    for cond_var, then_stmts, else_stmts in branches:
        lines.append(f"    if ({cond_var} > 0) {{")
        lines += ["        " + _render_stmt(s) for s in then_stmts]
        lines.append("    } else {")
        lines += ["        " + _render_stmt(s) for s in else_stmts]
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


_PROGRAMS = st.builds(
    _render_program,
    _BLOCKS,
    st.lists(
        st.tuples(st.sampled_from(_INTS), _BLOCKS, _BLOCKS),
        min_size=0,
        max_size=3,
    ),
)


def _reference_block_outs(func, base):
    """Brute-force path enumeration: per-path interpreter with always-
    strong heap updates (exact on acyclic paths), unioned per block.
    Returns {(block uid, name): set of objects}."""
    outs = {}
    entry = func.blocks[0]
    work = [(entry, {}, {})]
    while work:
        block, state, heap = work.pop()
        state = dict(state)
        heap = dict(heap)
        for inst in block.instructions:
            cls = type(inst).__name__
            if cls in ("Malloc", "Alloc"):
                state[inst.dst.name] = frozenset({("o", inst.uid)})
            elif cls == "AddrOf":
                state[inst.dst.name] = frozenset({("g", inst.var.name)})
            elif cls == "Move":
                if isinstance(inst.src, Var):
                    state[inst.dst.name] = state.get(
                        inst.src.name, base.points_to(inst.src.name))
                else:
                    state[inst.dst.name] = frozenset()
            elif cls == "Gep":
                objs = state.get(inst.base.name, base.points_to(inst.base.name))
                state[inst.dst.name] = frozenset(
                    ("f", o, inst.field) for o in objs)
            elif cls == "Load":
                ptr = state.get(inst.ptr.name, base.points_to(inst.ptr.name))
                if len(ptr) == 1 and next(iter(ptr)) in heap:
                    state[inst.dst.name] = heap[next(iter(ptr))]
                else:
                    state[inst.dst.name] = base.points_to(inst.dst.name)
            elif cls == "Store":
                ptr = state.get(inst.ptr.name, base.points_to(inst.ptr.name))
                value = (
                    state.get(inst.src.name, base.points_to(inst.src.name))
                    if isinstance(inst.src, Var) else frozenset()
                )
                if len(ptr) == 1:
                    # One path = one execution: every store to a known
                    # cell is concretely strong.
                    heap[next(iter(ptr))] = value
                else:
                    for obj in ptr:
                        heap[obj] = heap.get(obj, frozenset()) | value
            else:
                dst = inst.defined_var()
                if dst is not None:
                    state.pop(dst.name, None)
        for name, objs in state.items():
            key = (block.uid, name)
            outs[key] = outs.get(key, set()) | set(objs)
        for succ in successors(block):
            work.append((succ, state, heap))
    return outs


@settings(max_examples=60, deadline=None)
@given(_PROGRAMS)
def test_strong_updates_over_approximate_every_path(source):
    program = compile_program([("t.c", source)])
    base = AndersenPointsTo(program).solve()
    flow = FlowSensitivePointsTo(base, strong_updates=True)
    func = next(f for f in program.functions() if not f.is_declaration)
    flow.analyze_function(func)
    reference = _reference_block_outs(func, base)
    for (block_uid, name), concrete in reference.items():
        abstract = flow.points_to_at(func, block_uid, name)
        assert concrete <= set(abstract), (
            f"{name} at block {block_uid}: flow lost {concrete - set(abstract)}"
            f"\n{source}"
        )


@settings(max_examples=60, deadline=None)
@given(_PROGRAMS)
def test_must_singletons_are_singleton_on_every_path(source):
    program = compile_program([("t.c", source)])
    base = AndersenPointsTo(program).solve()
    flow = FlowSensitivePointsTo(base, strong_updates=True)
    func = next(f for f in program.functions() if not f.is_declaration)
    reference = _reference_block_outs(func, base)
    for name in flow.must_singleton_names(func):
        for (block_uid, ref_name), concrete in reference.items():
            if ref_name == name:
                assert len(concrete) <= 1, (name, block_uid, source)


# -- Andersen-coarsening cross-check ----------------------------------------


@pytest.mark.parametrize("profile", ALL_PROFILES, ids=lambda p: p.name)
def test_flow_refines_andersen_on_profile(profile):
    """On every corpus profile: strong-update states only ever shrink
    the Andersen sets, so every Andersen must-not-alias verdict holds at
    every block under the flow pass too."""
    program = compile_program(generate(profile.scaled(0.25)).compiled_sources())
    base = AndersenPointsTo(program).solve()
    flow = FlowSensitivePointsTo(base, strong_updates=True)
    checked = 0
    for func in program.functions():
        if func.is_declaration:
            continue
        flow.analyze_function(func)
        for (fname, block_uid, name), objs in flow._block_out.items():
            if fname != func.name:
                continue
            assert set(objs) <= set(base.points_to(name)) or objs == frozenset(), (
                f"{name} in {fname} grew beyond its Andersen set")
            checked += 1
    assert checked > 0  # vacuous otherwise


def test_must_not_alias_consistent_with_andersen():
    source = """
void f(void) {
    int a = 0; int b = 0;
    int *p = &a;
    int *q = &b;
    int *r = &a;
    *p = 1;
    int y = *q;
}
"""
    program = compile_program([("t.c", source)])
    base = AndersenPointsTo(program).solve()
    flow = FlowSensitivePointsTo(base, strong_updates=True)
    func = next(f for f in program.functions() if not f.is_declaration)
    block = func.blocks[-1].uid
    assert not base.may_alias("f.p", "f.q")
    assert flow.must_not_alias_at(func, block, "f.p", "f.q")
    assert flow.may_alias_at(func, block, "f.p", "f.r")


# -- strong-update kill pins -------------------------------------------------


def _kill_fixture():
    source = """
void f(void) {
    int x = 1;
    int *p = &x;
    *p = 5;
    *p = 7;
    int y = *p;
}
"""
    return compile_program([("t.c", source)])


def test_kills_are_recorded_in_stable_coordinates():
    program = _kill_fixture()
    part = SteensgaardPointsTo(program).solve().partition()
    facts = compute_flow_facts(program, part)
    # init store (through the slot), then *p = 5 killed by *p = 7.
    assert facts.strong_updates == 2
    assert facts.killed_defs == (("f", "f.p", 0), ("f", "f.p", 1))
    assert facts.must_singletons >= 2


def test_kills_deterministic_across_runs():
    program = _kill_fixture()
    part = SteensgaardPointsTo(program).solve().partition()
    first = compute_flow_facts(program, part)
    second = compute_flow_facts(program, part)
    assert first.killed_defs == second.killed_defs
    assert first.stamp() == second.stamp()


def test_loop_allocations_never_strongly_update():
    """A malloc in a loop summarizes many cells — stores through it must
    stay weak (no kill recorded) even though the pointer set is a
    singleton."""
    source = """
void f(int n) {
    int i = 0;
    while (i < n) {
        int *p = malloc(4);
        *p = 1;
        *p = 2;
        i = i + 1;
    }
}
"""
    program = compile_program([("t.c", source)])
    part = SteensgaardPointsTo(program).solve().partition()
    facts = compute_flow_facts(program, part)
    assert facts.strong_updates == 0
    assert facts.killed_defs == ()


def test_legacy_mode_records_nothing():
    """The svf_null baseline consumes the default mode: no heap, no
    kills, no singleton accounting — byte-identical to the pre-P1.8
    class this module grew from."""
    program = _kill_fixture()
    base = AndersenPointsTo(program).solve()
    flow = FlowSensitivePointsTo(base)
    func = next(f for f in program.functions() if not f.is_declaration)
    flow.analyze_function(func)
    assert flow.strong_updates_applied == 0
    assert flow.killed_defs == []
    assert flow.must_singleton_names(func) == frozenset()


# -- MustAliasFacts units -----------------------------------------------------


def _facts_fixture():
    source = """
static void helper(int *h) { *h = 3; }
void entry_a(void) {
    int a = 0;
    int *p = &a;
    helper(p);
}
void entry_b(void) {
    int b = 1;
    int c = b + 1;
}
"""
    program = compile_program([("t.c", source)])
    part = SteensgaardPointsTo(program).solve().partition()
    return program, part, compute_flow_facts(program, part)


def test_closure_embeds_callgraph():
    _, _, facts = _facts_fixture()
    assert facts.closure_of("entry_a") == frozenset({"entry_a", "helper"})
    assert facts.closure_of("entry_b") == frozenset({"entry_b"})


def test_skip_names_superset_of_base_singletons():
    """The flow tier strictly generalizes the P1.7 fast path: every
    partition singleton that occurs in an entry's closure is in its skip
    set (plus whatever the occurrence walk proves on top)."""
    program, part, facts = _facts_fixture()
    for entry in ("entry_a", "entry_b"):
        skip = facts.skip_names_for_entry(entry)
        occ = set()
        for func in facts.closure_of(entry):
            occ |= facts.occurs.get(func, frozenset())
        assert part.singletons & occ <= skip
    # entry_b touches no memory at all: everything it names is skippable
    assert "entry_b.b" in facts.skip_names_for_entry("entry_b")
    # entry_a's pointer flows into a call binding: never skippable
    assert "entry_a.p" not in facts.skip_names_for_entry("entry_a")


def test_facts_pickle_round_trip():
    _, _, facts = _facts_fixture()
    facts.skip_names_for_entry("entry_a")  # populate memos
    clone = pickle.loads(pickle.dumps(facts))
    assert clone.stamp() == facts.stamp()
    assert clone._skip_memo == {}  # memos rebuild empty, not shipped
    assert clone.skip_names_for_entry("entry_a") == facts.skip_names_for_entry("entry_a")
    assert clone.closure_of("entry_b") == facts.closure_of("entry_b")
    assert clone.must_singletons == facts.must_singletons
    assert clone.killed_defs == facts.killed_defs


def test_globals_never_in_skip_sets():
    source = """
int shared;
void f(void) {
    shared = 1;
    int y = shared;
}
"""
    program = compile_program([("t.c", source)])
    part = SteensgaardPointsTo(program).solve().partition()
    facts = compute_flow_facts(program, part)
    assert not any(n.startswith("@") for n in facts.skip_names_for_entry("f"))


# -- taint reachability oracle ------------------------------------------------


def test_taint_flow_possible_positive():
    source = """
void f(void) {
    int len = copy_from_user_stub();
    char *buf = malloc(len);
}
"""
    program = compile_program([("t.c", source)])
    functions = [f for f in program.functions() if not f.is_declaration]
    assert taint_flow_possible(program, functions)


def test_taint_flow_disconnected_is_impossible():
    """Source and sink exist but no value path connects them: the
    must-not-alias proof licenses disarming the taint checker."""
    source = """
void f(void) {
    int tainted = copy_from_user_stub();
    int clean = 8;
    char *buf = malloc(clean);
}
"""
    program = compile_program([("t.c", source)])
    functions = [f for f in program.functions() if not f.is_declaration]
    assert not taint_flow_possible(program, functions)


def test_taint_flow_through_binop_chain():
    source = """
void f(void) {
    int n = copy_from_user_stub();
    int m = n + 1;
    int k = m * 2;
    char *buf = malloc(k);
}
"""
    program = compile_program([("t.c", source)])
    functions = [f for f in program.functions() if not f.is_declaration]
    assert taint_flow_possible(program, functions)


def test_taint_flow_no_sources_or_sinks():
    source = "void f(void) { int x = 1; int y = x + 1; }"
    program = compile_program([("t.c", source)])
    functions = [f for f in program.functions() if not f.is_declaration]
    assert not taint_flow_possible(program, functions)
