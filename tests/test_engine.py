"""End-to-end engine tests on the paper's motivating examples and on the
engine's budget/merging machinery."""

from repro import PATA, AnalysisConfig
from repro.core import PathExplorer
from repro.lang import compile_program
from repro.typestate import BugKind, default_checkers


def analyze(source, config=None, all_checkers=False):
    pata = PATA.with_all_checkers(config=config) if all_checkers else PATA(config=config)
    return pata.analyze_sources([("t.c", source)])


FIG1 = """
struct platform_device { int irq; };
struct mfc_dev { struct platform_device *plat_dev; int num; };
static struct mfc_dev the_dev;

static int s5p_mfc_probe(struct platform_device *pdev) {
    struct mfc_dev *dev = &the_dev;
    dev->plat_dev = pdev;
    if (!dev->plat_dev) {
        int err = pdev->irq;
        return -19;
    }
    return 0;
}
struct platform_driver { int (*probe)(struct platform_device *p); };
static struct platform_driver s5p_mfc_driver = { .probe = s5p_mfc_probe };
"""

FIG3 = """
struct bt_mesh_cfg_srv { int frnd; int relay; };
struct bt_mesh_model { struct bt_mesh_cfg_srv *user_data; int id; };

static void send_friend_status(struct bt_mesh_model *model) {
    struct bt_mesh_cfg_srv *cfg = model->user_data;
    int x = cfg->frnd;
}

static void friend_set(struct bt_mesh_model *model) {
    struct bt_mesh_cfg_srv *cfg = model->user_data;
    if (!cfg) {
        goto send_status;
    }
    cfg->relay = 1;
send_status:
    send_friend_status(model);
}
struct model_ops { void (*set)(struct bt_mesh_model *m); };
static struct model_ops friend_ops = { .set = friend_set };
"""

FIG9 = """
struct fb { int f; };
int sync_fb(struct fb *p, struct fb *q) {
    if (q == NULL)
        p->f = 0;
    struct fb *t = p;
    if (t->f != 0) {
        int v = q->f;
        return v;
    }
    return 0;
}
struct fb_ops { int (*sync)(struct fb *p, struct fb *q); };
static struct fb_ops fops = { .sync = sync_fb };
"""


def test_fig1_interface_alias_npd_found():
    result = analyze(FIG1)
    npd = result.by_kind(BugKind.NPD)
    assert len(npd) == 1
    assert npd[0].entry_function == "s5p_mfc_probe"


def test_fig3_cross_function_field_alias_npd_found():
    result = analyze(FIG3)
    npd = result.by_kind(BugKind.NPD)
    assert len(npd) == 1
    assert "cfg" in npd[0].message


def test_fig3_report_carries_alias_set():
    result = analyze(FIG3)
    (npd,) = result.by_kind(BugKind.NPD)
    assert any("friend_set.cfg" in name for name in npd.alias_set)
    assert any("send_friend_status.cfg" in name for name in npd.alias_set)


def test_fig9_false_bug_filtered_by_validation():
    result = analyze(FIG9)
    assert result.by_kind(BugKind.NPD) == []
    assert result.stats.dropped_false_bugs >= 1


def test_fig9_reported_without_validation():
    config = AnalysisConfig(validate_paths=False)
    result = analyze(FIG9, config=config)
    assert len(result.by_kind(BugKind.NPD)) == 1


def test_fig9_survives_na_validation():
    """PATA-NA cannot see the alias-implied contradiction (Fig. 9(b))."""
    config = AnalysisConfig().for_pata_na()
    result = analyze(FIG9, config=config)
    assert len(result.by_kind(BugKind.NPD)) == 1


def test_repeated_bugs_deduplicated():
    source = """
struct s { int v; };
static void use(struct s *p) { int x = p->v; }
void f(struct s *p, int a) {
    if (!p) {
        if (a) use(p); else use(p);
    }
}
struct ops { void (*f)(struct s *p, int a); };
static struct ops o = { .f = f };
"""
    result = analyze(source)
    assert len(result.by_kind(BugKind.NPD)) == 1
    assert result.stats.dropped_repeated_bugs >= 1


def test_path_budget_respected():
    # 20 independent branches would be ~1M paths; the budget caps it.
    branches = " ".join(f"if (a == {i}) a = a + 1;" for i in range(20))
    source = f"int f(int a) {{ {branches} return a; }}"
    # prune=False: a checker-irrelevant arithmetic entry would otherwise
    # be skipped by P1.5 before the budget mechanics ever run.
    config = AnalysisConfig(max_paths_per_entry=50, max_steps_per_entry=100000,
                            prune=False)
    result = analyze(source, config=config)
    assert result.stats.explored_paths <= 50
    assert result.stats.budget_exhausted_entries == 1


def test_step_budget_respected():
    source = "int f(int a) { " + " ".join("a = a + 1;" for _ in range(50)) + " return a; }"
    config = AnalysisConfig(max_steps_per_entry=10, prune=False)
    result = analyze(source, config=config)
    assert result.stats.budget_exhausted_entries == 1


def test_callee_exit_merging_reduces_paths():
    # The callee has 2^4 paths but only two distinct externally visible
    # outcomes (returns 0 or 1); the caller continues at most a few times.
    source = """
static int noisy(int a) {
    int r = 0;
    if (a == 1) r = 1;
    if (a == 2) r = 1;
    if (a == 3) r = 1;
    if (a == 4) r = 1;
    return r;
}
int top(int a) {
    int x = noisy(a);
    int y = noisy(a);
    return x + y;
}
"""
    merged = analyze(source, config=AnalysisConfig(max_callee_exits_per_call=4))
    assert merged.stats.explored_paths <= 40


def test_recursion_unrolled_once():
    # A self-recursive function has a caller (itself), so it is not an
    # automatic entry (AnalyzeCode only starts at caller-less functions);
    # pass it explicitly and assert termination.
    program = compile_program([("r.c", """
int fact(int n) {
    if (n < 2)
        return 1;
    return n * fact(n - 1);
}
""")])
    result = PATA(config=AnalysisConfig(max_paths_per_entry=100, prune=False)).analyze(
        program, entries=[program.lookup("fact")]
    )
    assert result.stats.explored_paths >= 1


def test_mutual_recursion_terminates():
    program = compile_program([("m.c", """
int even(int n) { if (n == 0) return 1; return odd(n - 1); }
int odd(int n) { if (n == 0) return 0; return even(n - 1); }
""")])
    result = PATA(config=AnalysisConfig(max_paths_per_entry=200, prune=False)).analyze(
        program, entries=[program.lookup("even")]
    )
    assert result.stats.explored_paths >= 1


def test_loop_unrolled_once_terminates():
    source = """
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++)
        s = s + i;
    return s;
}
"""
    result = analyze(source)
    assert result.stats.explored_paths <= 4


def test_entries_are_interface_and_callerless():
    program = compile_program([
        ("a.c",
         "static int helper(int x) { return x; }\n"
         "int top(int x) { return helper(x); }\n"),
    ])
    result = PATA().analyze(program)
    assert result.stats.entry_functions == 1  # only `top`


def test_explicit_entries_override():
    program = compile_program([("a.c", "static int lonely(int *p) { if (!p) return *p; return 0; }\nint top(void) { return 0; }")])
    explicit = [program.lookup("lonely")]
    result = PATA().analyze(program, entries=explicit)
    assert result.stats.entry_functions == 1
    assert len(result.by_kind(BugKind.NPD)) == 1


def test_na_mode_misses_memory_alias_bug():
    """Fig. 3 needs aliasing through memory: PATA-NA must miss it."""
    aware = analyze(FIG3)
    na = analyze(FIG3, config=AnalysisConfig().for_pata_na())
    assert len(aware.by_kind(BugKind.NPD)) == 1
    assert len(na.by_kind(BugKind.NPD)) == 0


def test_typestate_counters_monotone():
    result = analyze(FIG3)
    stats = result.stats
    assert 0 < stats.typestates_aware <= stats.typestates_unaware


def test_smt_counters_present_when_validating():
    result = analyze(FIG1)
    assert result.stats.smt_constraints_aware >= 0
    assert result.stats.smt_constraints_unaware >= result.stats.smt_constraints_aware


def test_indirect_calls_not_followed():
    source = """
struct ops { void (*run)(int *p); };
static void target(int *p) { int x = *p; }
void top(struct ops *o, int *p) {
    if (!p)
        o->run(p);
}
struct reg { void (*t)(struct ops *o, int *p); };
static struct reg r = { .t = top };
"""
    result = analyze(source)
    # The NULL p flows into target only through the function pointer,
    # which PATA does not follow (§7): no NPD.
    assert result.by_kind(BugKind.NPD) == []


def test_explorer_reusable_across_entries():
    program = compile_program([
        ("a.c",
         "int f(int *p) { if (!p) return *p; return 0; }\n"
         "int g(int *q) { if (!q) return *q; return 0; }"),
    ])
    explorer = PathExplorer(program, AnalysisConfig(), default_checkers())
    for name in ("f", "g"):
        explorer.explore(program.lookup(name))
    kinds = {b.kind for b in explorer.possible_bugs}
    assert kinds == {BugKind.NPD}
    assert len(explorer.possible_bugs) == 2
