"""Incremental-analysis subsystem tests (store, fingerprints, invalidation).

Four layers of coverage:

* the object store: atomic commits, checksummed reads, corruption and
  version skew degrading to warned misses;
* key derivation: canonical-printer byte-determinism across processes
  and hash seeds, closure-exact invalidation, pool-stamp invalidation,
  spec canonicalization;
* PATA-level warm starts: a leaf-callee edit re-analyzes exactly its
  caller closure, a registration added to the indirect-call pool
  invalidates only entries that may dispatch into it, a checker-spec
  change re-runs layers b/c but reuses layer-a facts;
* the CLI surface: ``--cache``/``--cache-dir`` validation, warm-run
  equivalence, ``--stats-json``.

The cold/warm/mixed byte-equality sweep lives in
``test_incremental_differential.py``.
"""

import hashlib
import json
import logging
import os
import pathlib
import subprocess
import sys

import pytest

from repro import PATA, AnalysisConfig
from repro.cli import main as cli_main
from repro.corpus import PROFILES_BY_NAME, generate
from repro.incremental import (
    CACHE_FORMAT,
    CacheStore,
    TransitiveKeys,
    compile_with_cache,
    open_store,
    spec_fingerprint,
)
from repro.lang import compile_program


# ---------------------------------------------------------------------------
# Shared fixtures: a three-entry program with a clean closure structure
# ---------------------------------------------------------------------------

HELPER_V1 = r"""
static int helper(int n) {
    return n + 1;
}
int top(int n) {
    int *p = malloc(8);
    *p = helper(n);
    free(p);
    return 0;
}
"""

HELPER_V2 = r"""
static int helper(int n) {
    return n + 2;
}
int top(int n) {
    int *p = malloc(8);
    *p = helper(n);
    free(p);
    return 0;
}
"""

OTHER = r"""
int other(int n) {
    int *q = malloc(8);
    if (!q) return -1;
    *q = n;
    free(q);
    return 0;
}
"""

THIRD = r"""
int third(int n) {
    int *r = malloc(8);
    if (!r) return -1;
    *r = n * 2;
    free(r);
    return 0;
}
"""


def _sources(helper=HELPER_V1):
    return [("a.c", helper), ("b.c", OTHER), ("c.c", THIRD)]


def _analyze(sources, cache_dir=None, cache_mode="off", workers=1, spec="default",
             **config_kwargs):
    config = AnalysisConfig(workers=workers, cache_dir=cache_dir,
                            cache_mode=cache_mode, **config_kwargs)
    pata = PATA(config=config, checker_spec=spec)
    if config.cache_active():
        store = open_store(cache_dir, cache_mode)
        program = compile_with_cache(sources, store)
        if store is not None:
            store.commit()
        return pata.analyze(program)
    return pata.analyze(compile_program(sources))


def _report_text(result):
    return "\n\n".join(r.render() for r in result.reports)


def _entry_status(result):
    """name -> 'cached' | 'skipped' | 'analyzed' for every entry row."""
    out = {}
    for row in result.stats.per_entry:
        out[row.name] = "cached" if row.cached else ("skipped" if row.skipped else "analyzed")
    return out


# ---------------------------------------------------------------------------
# Object store
# ---------------------------------------------------------------------------


def test_store_roundtrip_across_instances(tmp_path):
    store = CacheStore(str(tmp_path), "rw")
    key = CacheStore.object_key("test", "object")
    store.put(key, {"payload": [1, 2, 3]})
    # Staged values are visible before the commit...
    assert store.get(key) == {"payload": [1, 2, 3]}
    assert store.commit() == 1
    # ...and durable after it, from a fresh handle.
    again = CacheStore(str(tmp_path), "ro")
    assert again.get(key) == {"payload": [1, 2, 3]}
    assert again.hits == 1 and again.misses == 0


def test_store_ro_mode_never_writes(tmp_path):
    store = CacheStore(str(tmp_path / "cache"), "ro")
    key = CacheStore.object_key("test", "ro")
    store.put(key, "value")
    assert store.commit() == 0
    assert store.get(key) is None
    assert not (tmp_path / "cache" / "objects").exists() or not any(
        (tmp_path / "cache" / "objects").rglob("*.bin")
    )


def test_store_put_skips_existing_objects(tmp_path):
    store = CacheStore(str(tmp_path), "rw")
    key = CacheStore.object_key("test", "dup")
    store.put(key, "value")
    store.commit()
    second = CacheStore(str(tmp_path), "rw")
    second.put(key, "value")
    assert second.commit() == 0  # same key => same content; nothing rewritten


@pytest.mark.parametrize("damage", ["truncate", "bitflip", "garbage", "empty"])
def test_store_corruption_is_a_warned_miss(tmp_path, caplog, damage):
    store = CacheStore(str(tmp_path), "rw")
    key = CacheStore.object_key("test", "corrupt", damage)
    store.put(key, list(range(100)))
    store.commit()
    [path] = list((tmp_path / "objects").rglob("*.bin"))
    blob = path.read_bytes()
    if damage == "truncate":
        path.write_bytes(blob[: len(blob) // 2])
    elif damage == "bitflip":
        path.write_bytes(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
    elif damage == "garbage":
        path.write_bytes(b"not a cache object at all")
    else:
        path.write_bytes(b"")
    victim = CacheStore(str(tmp_path), "ro")
    with caplog.at_level(logging.WARNING, logger="repro.incremental"):
        assert victim.get(key) is None
    assert victim.misses == 1 and victim.corrupt == 1
    assert any("treating as a miss" in r.message for r in caplog.records)


def test_store_version_skew_warns_and_misses(tmp_path, caplog):
    store = CacheStore(str(tmp_path), "rw")
    store.put(CacheStore.object_key("test", "v"), 1)
    store.commit()
    (tmp_path / "meta.json").write_text(json.dumps({"format": 0, "engine": "0.0.0"}))
    with caplog.at_level(logging.WARNING, logger="repro.incremental"):
        CacheStore(str(tmp_path), "ro")
    assert any("written by engine" in r.message for r in caplog.records)


def test_store_pre_bump_format_heals_on_commit(tmp_path, caplog):
    """Regression for the CACHE_FORMAT bumps (1 -> 2: partition layer;
    2 -> 3: P1.8 flow-facts layer + taint-sharpened relevance masks;
    3 -> 4: P2.6 xtaint summary layer + TaintFlow records in cached
    outcomes — each changed what an entry result depends on): a
    directory stamped with the pre-bump format must read as all-misses,
    stay usable, and be re-stamped with the current format by the next
    commit — no manual cache wipe needed."""
    assert CACHE_FORMAT == 4  # update the pre-bump fixture when bumping again
    # A pre-bump cache: old header stamp plus an object under a key only
    # the old derivation could have produced.
    stale_dir = tmp_path / "objects" / "ab"
    stale_dir.mkdir(parents=True)
    (stale_dir / ("ab" * 32 + ".bin")).write_bytes(b"pre-bump payload")
    (tmp_path / "meta.json").write_text(
        json.dumps({"format": CACHE_FORMAT - 1, "engine": "0.9.0"}))

    with caplog.at_level(logging.WARNING, logger="repro.incremental"):
        store = CacheStore(str(tmp_path), "rw")
    assert any("written by engine" in r.message for r in caplog.records)

    # Current-format keys miss (the format participates in key
    # derivation, so pre-bump objects are unreachable, never misread)...
    key = CacheStore.object_key("entry", "layer")
    assert store.get(key) is None
    # ...writes land, and the commit heals the header stamp.
    store.put(key, {"healed": True})
    assert store.commit() >= 1
    assert json.loads((tmp_path / "meta.json").read_text())["format"] == CACHE_FORMAT
    # A fresh handle opens without the skew warning and replays the write.
    caplog.clear()
    with caplog.at_level(logging.WARNING, logger="repro.incremental"):
        again = CacheStore(str(tmp_path), "ro")
    assert not any("written by engine" in r.message for r in caplog.records)
    assert again.get(key) == {"healed": True}


def test_engine_heals_pre_bump_cache_directory(tmp_path):
    """End to end: analyzing over a pre-bump cache directory matches the
    uncached run byte for byte, re-stamps the header, and leaves a warm
    cache behind."""
    baseline = _analyze(_sources())
    stale_dir = tmp_path / "objects" / "de"
    stale_dir.mkdir(parents=True)
    (stale_dir / ("de" + "ad" * 31 + ".bin")).write_bytes(b"pre-bump payload")
    (tmp_path / "meta.json").write_text(
        json.dumps({"format": CACHE_FORMAT - 1, "engine": "0.9.0"}))

    healed = _analyze(_sources(), cache_dir=str(tmp_path), cache_mode="rw")
    assert _report_text(healed) == _report_text(baseline)
    assert json.loads((tmp_path / "meta.json").read_text())["format"] == CACHE_FORMAT

    warm = _analyze(_sources(), cache_dir=str(tmp_path), cache_mode="rw")
    assert _report_text(warm) == _report_text(baseline)
    assert any(row.cached for row in warm.stats.per_entry)


def test_open_store_unopenable_dir_is_none(tmp_path, caplog):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file where the cache dir should be")
    with caplog.at_level(logging.WARNING, logger="repro.incremental"):
        assert open_store(str(blocker), "rw") is None
    assert open_store(None, "rw") is None
    assert open_store(str(tmp_path), "off") is None


# ---------------------------------------------------------------------------
# Layer f: the P1.8 must-alias-facts cache (the CACHE_FORMAT 2 -> 3 layer)
# ---------------------------------------------------------------------------


def test_flow_facts_layer_hits_on_warm_run(tmp_path, monkeypatch):
    """A warm run at the flow tier replays the facts from the cache: the
    P1.8 pass never executes, yet the engagement figures survive (they
    ride inside the pickled :class:`MustAliasFacts`)."""
    cache_dir = str(tmp_path)
    cold = _analyze(_sources(), cache_dir=cache_dir, cache_mode="rw")
    assert cold.stats.must_singletons > 0

    import repro.pointsto.flow_tier as flow_tier

    def explode(*args, **kwargs):
        raise AssertionError("flow facts recomputed on a warm run")

    monkeypatch.setattr(flow_tier, "compute_flow_facts", explode)
    warm = _analyze(_sources(), cache_dir=cache_dir, cache_mode="rw")
    assert _report_text(warm) == _report_text(cold)
    assert warm.stats.must_singletons == cold.stats.must_singletons
    assert warm.stats.strong_updates == cold.stats.strong_updates


def test_flow_facts_invalidated_by_module_edit(tmp_path, monkeypatch):
    """The facts are keyed on the module closure: editing any module
    misses the layer and recomputes — never replays stale facts."""
    cache_dir = str(tmp_path)
    _analyze(_sources(HELPER_V1), cache_dir=cache_dir, cache_mode="rw")

    import repro.pointsto.flow_tier as flow_tier

    calls = []
    real = flow_tier.compute_flow_facts

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(flow_tier, "compute_flow_facts", counting)
    edited = _analyze(_sources(HELPER_V2), cache_dir=cache_dir, cache_mode="rw")
    assert calls  # the edit forced a fresh flow pass
    baseline = _analyze(_sources(HELPER_V2))
    assert _report_text(edited) == _report_text(baseline)


def test_flow_facts_shape_surprise_degrades_to_rebuild(tmp_path, monkeypatch):
    """A cache object of the wrong type under the facts key is a miss
    with a rebuild — never a crash, never a wrong report."""
    import pickle as _pickle

    from repro.pointsto.flow_tier import MustAliasFacts

    cache_dir = str(tmp_path)
    cold = _analyze(_sources(), cache_dir=cache_dir, cache_mode="rw")

    # Find the committed facts object and replace it with a same-format,
    # checksummed payload of the wrong type.
    replaced = 0
    for path in pathlib.Path(cache_dir).glob("objects/*/*.bin"):
        blob = path.read_bytes()
        payload = blob[8 + 32:]
        try:
            value = _pickle.loads(payload)
        except Exception:
            continue
        if isinstance(value, MustAliasFacts):
            bogus = _pickle.dumps({"not": "facts"})
            path.write_bytes(b"PATACHE1" + hashlib.sha256(bogus).digest() + bogus)
            replaced += 1
    assert replaced == 1

    import repro.pointsto.flow_tier as flow_tier

    calls = []
    real = flow_tier.compute_flow_facts

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(flow_tier, "compute_flow_facts", counting)
    warm = _analyze(_sources(), cache_dir=cache_dir, cache_mode="rw")
    assert calls  # shape surprise -> recompute
    assert _report_text(warm) == _report_text(cold)


def test_flow_facts_key_distinguishes_fp_resolution(tmp_path, monkeypatch):
    """``resolve_function_pointers`` changes closure shapes inside the
    facts, so it participates in the layer key: flipping it never
    replays the other mode's facts."""
    cache_dir = str(tmp_path)
    _analyze(_sources(), cache_dir=cache_dir, cache_mode="rw")

    import repro.pointsto.flow_tier as flow_tier

    calls = []
    real = flow_tier.compute_flow_facts

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(flow_tier, "compute_flow_facts", counting)
    resolved = _analyze(_sources(), cache_dir=cache_dir, cache_mode="rw",
                        resolve_function_pointers=True)
    assert calls  # different key -> fresh facts
    baseline = _analyze(_sources(), resolve_function_pointers=True)
    assert _report_text(resolved) == _report_text(baseline)


def test_steens_tier_stages_no_flow_facts(tmp_path):
    """Below the flow tier the layer must not exist: a steens-tier run
    commits no :class:`MustAliasFacts` object."""
    import pickle as _pickle

    from repro.pointsto.flow_tier import MustAliasFacts

    cache_dir = str(tmp_path)
    _analyze(_sources(), cache_dir=cache_dir, cache_mode="rw", alias_tier="steens")
    for path in pathlib.Path(cache_dir).glob("objects/*/*.bin"):
        try:
            value = _pickle.loads(path.read_bytes()[8 + 32:])
        except Exception:
            continue
        assert not isinstance(value, MustAliasFacts)


# ---------------------------------------------------------------------------
# Satellite 1: canonical printer byte-determinism across processes
# ---------------------------------------------------------------------------

_PRINT_SNIPPET = r"""
import hashlib, sys
from repro.corpus import PROFILES_BY_NAME, generate
from repro.ir import canonical_program_print
from repro.lang import compile_program

corpus = generate(PROFILES_BY_NAME["linux"].scaled(0.1))
program = compile_program(corpus.compiled_sources())
text = canonical_program_print(program)
sys.stdout.write(hashlib.sha256(text.encode()).hexdigest())
"""


def test_canonical_print_identical_across_subprocesses():
    """Two separate interpreters with different hash seeds must print the
    corpus byte-identically — the property every cache key rests on."""
    digests = []
    for seed in ("1", "424242"):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        src_dir = pathlib.Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = f"{src_dir}{os.pathsep}" + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _PRINT_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
        )
        digests.append(proc.stdout.strip())
    assert digests[0] == digests[1]
    assert len(digests[0]) == 64


def test_canonical_print_sensitive_to_line_shifts():
    """Reports render file:line, so a pure line shift must re-fingerprint
    the shifted functions."""
    shifted = "\n// leading comment\n" + HELPER_V1
    keys_a = TransitiveKeys(compile_program([("a.c", HELPER_V1)]))
    keys_b = TransitiveKeys(compile_program([("a.c", shifted)]))
    assert keys_a.key("top") != keys_b.key("top")


# ---------------------------------------------------------------------------
# Satellite 3a: closure-exact invalidation
# ---------------------------------------------------------------------------


def test_leaf_edit_invalidates_exactly_caller_closure():
    keys_v1 = TransitiveKeys(compile_program(_sources(HELPER_V1)))
    keys_v2 = TransitiveKeys(compile_program(_sources(HELPER_V2)))
    assert keys_v1.key("helper") != keys_v2.key("helper")
    assert keys_v1.key("top") != keys_v2.key("top")
    assert keys_v1.key("other") == keys_v2.key("other")
    assert keys_v1.key("third") == keys_v2.key("third")


def test_recursive_cycle_keys_are_stable_and_shared():
    mutual = r"""
int ping(int n);
int pong(int n) { if (n > 0) return ping(n - 1); return 0; }
int ping(int n) { if (n > 0) return pong(n - 1); return 1; }
"""
    keys = TransitiveKeys(compile_program([("m.c", mutual)]))
    again = TransitiveKeys(compile_program([("m.c", mutual)]))
    assert keys.key("ping") == again.key("ping")
    assert keys.key("pong") == again.key("pong")


DISPATCH = r"""
struct msg { int len; };
struct handler_ops { int (*consume)(struct msg *m); };
static int raw_consume(struct msg *m) {
    return m->len;
}
static struct handler_ops raw_ops = { .consume = raw_consume };
int dispatch(struct handler_ops *ops, struct msg *m) {
    if (!m)
        return ops->consume(m);
    return 0;
}
struct dispatch_reg { int (*d)(struct handler_ops *o, struct msg *m); };
static struct dispatch_reg dr = { .d = dispatch };
"""

EXTRA_REGISTRATION = r"""
struct msg2 { int len; };
struct handler_ops2 { int (*consume2)(struct msg2 *m); };
static int checked_consume(struct msg2 *m) {
    if (!m) return 0;
    return m->len;
}
static struct handler_ops2 safe_ops = { .consume2 = checked_consume };
"""


def test_pool_addition_invalidates_only_indirect_dispatchers():
    base = [("d.c", DISPATCH), ("b.c", OTHER)]
    grown = base + [("e.c", EXTRA_REGISTRATION)]
    keys_base = TransitiveKeys(compile_program(base), resolve_function_pointers=True)
    keys_grown = TransitiveKeys(compile_program(grown), resolve_function_pointers=True)
    assert keys_base.pool_stamp != keys_grown.pool_stamp
    assert keys_base.key("dispatch") != keys_grown.key("dispatch")
    assert keys_base.key("other") == keys_grown.key("other")
    # With resolution off the pool never participates.
    off_base = TransitiveKeys(compile_program(base))
    off_grown = TransitiveKeys(compile_program(grown))
    assert off_base.key("dispatch") == off_grown.key("dispatch")


def test_spec_fingerprint_canonicalizes_aliases():
    assert spec_fingerprint("default") == spec_fingerprint("npd,uva,ml")
    assert spec_fingerprint("default") != spec_fingerprint("all")


# ---------------------------------------------------------------------------
# Satellite 3b: PATA-level warm-start invalidation
# ---------------------------------------------------------------------------


def test_warm_run_serves_every_entry_from_cache(tmp_path):
    cache = str(tmp_path / "cache")
    cold = _analyze(_sources(), cache, "rw")
    warm = _analyze(_sources(), cache, "rw")
    assert _report_text(cold) == _report_text(warm)
    assert warm.stats.entries_reanalyzed == 0
    assert warm.stats.entries_cached == cold.stats.entries_reanalyzed > 0
    for row in warm.stats.per_entry:
        if row.cached:
            assert row.wall_seconds == 0.0


def test_leaf_edit_reanalyzes_exactly_dirty_closure(tmp_path):
    cache = str(tmp_path / "cache")
    _analyze(_sources(HELPER_V1), cache, "rw")
    warm = _analyze(_sources(HELPER_V2), cache, "rw")
    status = _entry_status(warm)
    assert status["top"] == "analyzed"  # helper is in top's closure
    assert status["other"] == "cached"
    assert status["third"] == "cached"
    assert warm.stats.entries_reanalyzed == 1
    baseline = _analyze(_sources(HELPER_V2))
    assert _report_text(warm) == _report_text(baseline)


def test_pool_addition_reanalyzes_only_dispatching_entries(tmp_path):
    cache = str(tmp_path / "cache")
    base = [("d.c", DISPATCH), ("b.c", OTHER)]
    grown = base + [("e.c", EXTRA_REGISTRATION)]
    _analyze(base, cache, "rw", resolve_function_pointers=True)
    warm = _analyze(grown, cache, "rw", resolve_function_pointers=True)
    status = _entry_status(warm)
    assert status["dispatch"] == "analyzed"
    assert status["other"] == "cached"
    baseline = _analyze(grown, resolve_function_pointers=True)
    assert _report_text(warm) == _report_text(baseline)


def test_spec_change_reuses_facts_but_not_outcomes(tmp_path):
    cache = str(tmp_path / "cache")
    _analyze(_sources(), cache, "rw", spec="npd")
    warm = _analyze(_sources(), cache, "rw", spec="all")
    # Layer c (and b) are spec-keyed: nothing served from cache...
    assert warm.stats.entries_cached == 0
    # ...but layer-a facts are spec-independent and hit.
    assert warm.stats.cache_hits > 0
    baseline = _analyze(_sources(), spec="all")
    assert _report_text(warm) == _report_text(baseline)


def test_budget_change_reuses_masks_but_not_outcomes(tmp_path):
    cache = str(tmp_path / "cache")
    _analyze(_sources(), cache, "rw")
    warm = _analyze(_sources(), cache, "rw", max_paths_per_entry=1999)
    # The engine fingerprint changed (layer c misses) but the narrow
    # presolve fingerprint did not (layer b hits feed CachedRelevance).
    assert warm.stats.entries_cached == 0
    assert warm.stats.entries_reanalyzed > 0
    baseline = _analyze(_sources(), max_paths_per_entry=1999)
    assert _report_text(warm) == _report_text(baseline)


def test_ro_mode_reads_but_never_writes(tmp_path):
    cache = tmp_path / "cache"
    _analyze(_sources(), str(cache), "rw")
    before = sorted(p.name for p in cache.rglob("*.bin"))
    warm = _analyze(_sources(), str(cache), "ro")
    assert warm.stats.entries_reanalyzed == 0
    assert sorted(p.name for p in cache.rglob("*.bin")) == before
    # An ro run against an empty cache analyzes everything and writes nothing.
    empty = tmp_path / "empty"
    cold_ro = _analyze(_sources(), str(empty), "ro")
    assert cold_ro.stats.entries_cached == 0
    assert not list(empty.rglob("*.bin"))


def test_corrupted_cache_objects_fall_back_cleanly(tmp_path, caplog):
    cache = tmp_path / "cache"
    cold = _analyze(_sources(), str(cache), "rw")
    for path in cache.rglob("*.bin"):
        path.write_bytes(path.read_bytes()[:16])
    with caplog.at_level(logging.WARNING, logger="repro.incremental"):
        warm = _analyze(_sources(), str(cache), "rw")
    assert _report_text(warm) == _report_text(cold)
    assert warm.stats.entries_cached == 0
    assert warm.stats.cache_corrupt > 0
    assert any("treating as a miss" in r.message for r in caplog.records)
    # The corrupt objects were rewritten; a third run is fully warm again.
    healed = _analyze(_sources(), str(cache), "rw")
    assert healed.stats.entries_reanalyzed == 0


def test_live_checker_objects_disable_cache_with_warning(tmp_path, caplog):
    from repro.typestate import default_checkers

    config = AnalysisConfig(cache_dir=str(tmp_path / "cache"), cache_mode="rw")
    pata = PATA(checkers=default_checkers(), config=config)
    with caplog.at_level(logging.WARNING, logger="repro.incremental"):
        result = pata.analyze(compile_program(_sources()))
    assert result.stats.entries_cached == 0
    assert any("custom checker objects" in r.message for r in caplog.records)


def test_entry_time_limit_disables_cache_with_warning(tmp_path, caplog):
    with caplog.at_level(logging.WARNING, logger="repro.incremental"):
        result = _analyze(_sources(), str(tmp_path / "cache"), "rw",
                          entry_time_limit=30.0)
    assert result.stats.entries_cached == 0
    assert result.stats.cache_hits == 0
    assert any("entry_time_limit" in r.message for r in caplog.records)
    # Only layer-0 modules were written — a second limited run still
    # re-analyzes everything.
    again = _analyze(_sources(), str(tmp_path / "cache"), "rw",
                     entry_time_limit=30.0)
    assert again.stats.entries_cached == 0


def test_warm_totals_match_cold_totals(tmp_path):
    """--stats consistency: a fully-warm run reproduces every
    deterministic counter of the cold run (timings aside)."""
    profile = PROFILES_BY_NAME["zephyr"].scaled(0.2)
    sources = generate(profile).compiled_sources()
    cache = str(tmp_path / "cache")
    cold = _analyze(sources, cache, "rw", spec="all")
    warm = _analyze(sources, cache, "rw", spec="all")
    for field in ("explored_paths", "executed_steps", "typestates_aware",
                  "typestates_unaware", "dropped_repeated_bugs",
                  "dropped_false_bugs", "entries_skipped", "blocks_pruned",
                  "paths_pruned", "shared_accesses", "race_pairs_matched",
                  "budget_exhausted_entries"):
        assert getattr(warm.stats, field) == getattr(cold.stats, field), field
    assert warm.stats.entries_cached == cold.stats.entries_reanalyzed


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


def _write_sources(tmp_path, sources):
    paths = []
    for name, text in sources:
        path = tmp_path / name
        path.write_text(text)
        paths.append(str(path))
    return paths


def test_cli_cache_requires_dir(tmp_path, capsys):
    paths = _write_sources(tmp_path, _sources())
    assert cli_main(["check", "--cache", "rw", *paths]) == 2
    assert "--cache-dir" in capsys.readouterr().err


def test_cli_cache_dir_without_mode_warns(tmp_path, capsys):
    paths = _write_sources(tmp_path, _sources())
    code = cli_main(["check", "--cache-dir", str(tmp_path / "c"), *paths])
    err = capsys.readouterr().err
    assert "caching disabled" in err
    assert code in (0, 1)


def test_cli_warm_run_identical_output(tmp_path, capsys):
    paths = _write_sources(tmp_path, _sources())
    cache = str(tmp_path / "cache")
    code_cold = cli_main(["check", "--cache", "rw", "--cache-dir", cache, *paths])
    out_cold = capsys.readouterr().out
    code_warm = cli_main(["check", "--cache", "rw", "--cache-dir", cache, *paths])
    out_warm = capsys.readouterr().out
    assert code_cold == code_warm
    assert out_cold == out_warm


def test_cli_stats_json(tmp_path, capsys):
    paths = _write_sources(tmp_path, _sources())
    cache = str(tmp_path / "cache")
    stats_file = tmp_path / "stats.json"
    cli_main(["check", "--cache", "rw", "--cache-dir", cache,
              "--stats-json", str(stats_file), *paths])
    capsys.readouterr()
    payload = json.loads(stats_file.read_text())
    assert payload["entries_reanalyzed"] > 0
    assert payload["entries_cached"] == 0
    assert isinstance(payload["per_entry"], list) and payload["per_entry"]
    # Serve-mode residency fields are in the schema and inert one-shot.
    assert payload["queue_wait_seconds"] == 0.0
    assert payload["requests_served"] == 0
    assert payload["resident_cache_entries"] == 0
    cli_main(["check", "--cache", "rw", "--cache-dir", cache,
              "--stats-json", str(stats_file), *paths])
    capsys.readouterr()
    warm = json.loads(stats_file.read_text())
    assert warm["entries_reanalyzed"] == 0
    assert warm["entries_cached"] == payload["entries_reanalyzed"]
    assert warm["cache_hits"] > 0
    # The deterministic totals agree between the two runs.
    assert warm["explored_paths"] == payload["explored_paths"]
    assert warm["executed_steps"] == payload["executed_steps"]


def test_cli_stats_table_marks_cached_rows(tmp_path, capsys):
    paths = _write_sources(tmp_path, _sources())
    cache = str(tmp_path / "cache")
    cli_main(["check", "--cache", "rw", "--cache-dir", cache, *paths])
    capsys.readouterr()
    cli_main(["check", "--stats", "--cache", "rw", "--cache-dir", cache, *paths])
    out = capsys.readouterr().out
    assert "cached" in out
