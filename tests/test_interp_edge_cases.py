"""Interpreter edge cases: opaque pointers, pointer comparisons, externs."""

import pytest

from repro.interp import (
    InterpreterError,
    Loc,
    Machine,
    NullDereferenceFault,
    run_entry,
)
from repro.lang import compile_program


def program_of(source):
    return compile_program([("t.c", source)])


def test_string_literal_pointer_is_readable():
    # String literals lower to non-zero opaque constants; dereferencing
    # them reads a zeroed buffer rather than crashing.
    prog = program_of('int f(void) { char *s = "hi"; return *s; }')
    result, fault, _ = run_entry(prog, "f")
    assert fault is None and result == 0


def test_same_literal_value_same_buffer():
    prog = program_of(
        "int f(int magic) {\n"
        "    char *a = (char *)1000;\n"
        "    char *b = (char *)1000;\n"
        "    *a = 7;\n"
        "    return *b;\n"
        "}"
    )
    result, fault, _ = run_entry(prog, "f", [0])
    assert fault is None and result == 7


def test_pointer_equality_against_null():
    prog = program_of(
        "struct s { int v; };\n"
        "int f(struct s *p) { if (p == NULL) return 1; return 2; }"
    )
    assert run_entry(prog, "f", [0])[0] == 1
    machine = Machine(prog)
    assert machine.call("f", [machine.make_argument_object()]) == 2


def test_pointer_equality_between_locs():
    prog = program_of(
        "struct s { int v; };\n"
        "int f(struct s *a, struct s *b) { if (a == b) return 1; return 0; }"
    )
    machine = Machine(prog)
    x = machine.make_argument_object()
    y = machine.make_argument_object()
    assert machine.call("f", [x, x]) == 1
    assert machine.call("f", [x, y]) == 0


def test_indirect_call_is_noop_returning_zero():
    prog = program_of(
        "struct ops { int (*run)(int v); };\n"
        "int f(struct ops *o) { return o->run(3) + 1; }"
    )
    machine = Machine(prog)
    arg = machine.make_argument_object()
    assert machine.call("f", [arg]) == 1  # 0 + 1


def test_missing_arguments_default_to_zero():
    prog = program_of("int f(int a, int b) { return a + b; }")
    machine = Machine(prog)
    assert machine.call("f", [5]) == 5


def test_unknown_entry_raises_interpreter_error():
    prog = program_of("int f(void) { return 0; }")
    machine = Machine(prog)
    with pytest.raises(InterpreterError):
        machine.call("ghost")


def test_global_pointer_defaults_to_null():
    prog = program_of(
        "char *stash;\n"
        "int f(void) { if (stash == NULL) return 1; return 0; }"
    )
    assert run_entry(prog, "f")[0] == 1


def test_null_deref_through_global_pointer():
    prog = program_of("char *stash;\nint f(void) { return *stash; }")
    _, fault, _ = run_entry(prog, "f")
    assert isinstance(fault, NullDereferenceFault)


def test_externals_oracle_sees_loc_arguments():
    prog = program_of("int f(char *p) { return probe_it(p); }")
    seen = []

    def probe(args):
        seen.append(args[0])
        return 42

    machine = Machine(prog, externals={"probe_it": probe})
    arg = machine.make_argument_object()
    assert machine.call("f", [arg]) == 42
    assert isinstance(seen[0], Loc)


def test_machine_reusable_across_calls_shares_globals():
    prog = program_of(
        "int tally;\n"
        "int bump(int by) { tally = tally + by; return tally; }"
    )
    machine = Machine(prog)
    machine.call("bump", [2])
    assert machine.call("bump", [3]) == 5


def test_pointer_plus_int_keeps_base_object():
    prog = program_of(
        "int f(char *buf) { char *q = buf + 4; *q = 1; return *q; }"
    )
    machine = Machine(prog)
    arg = machine.make_argument_object()
    assert machine.call("f", [arg]) == 1


def test_leak_scan_follows_nested_pointers():
    prog = program_of(
        "struct node { struct node *next; };\n"
        "struct node *head;\n"
        "void f(void) {\n"
        "    struct node *a = kzalloc(8);\n"
        "    struct node *b = kzalloc(8);\n"
        "    if (!a || !b) return;\n"
        "    a->next = b;\n"
        "    head = a;\n"
        "}"
    )
    _, fault, leaks = run_entry(prog, "f")
    assert fault is None
    assert leaks == []  # b reachable via head->next
