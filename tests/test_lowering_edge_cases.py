"""Lowering edge cases: the long tail of mini-C constructs, validated by
executing the lowered IR in the interpreter."""

from repro import ir
from repro.interp import run_entry
from repro.lang import compile_program, compile_source


def run(source, name, args=()):
    program = compile_program([("t.c", source)])
    result, fault, _ = run_entry(program, name, list(args))
    assert fault is None, f"unexpected fault: {fault}"
    return result


def test_do_while_executes_body_at_least_once():
    source = "int f(int n) { int c = 0; do { c = c + 1; } while (c < n); return c; }"
    assert run(source, "f", [0]) == 1
    assert run(source, "f", [3]) == 3


def test_comma_operator_evaluates_left_to_right():
    source = "int f(int a) { int b; return (b = a + 1, b * 2); }"
    assert run(source, "f", [4]) == 10


def test_nested_ternary():
    source = "int f(int a) { return a > 0 ? (a > 10 ? 2 : 1) : 0; }"
    assert run(source, "f", [15]) == 2
    assert run(source, "f", [5]) == 1
    assert run(source, "f", [-5]) == 0


def test_compound_assignment_on_struct_field():
    source = """
struct s { int v; };
int f(void) { struct s x; x.v = 3; x.v += 4; x.v <<= 1; return x.v; }
"""
    assert run(source, "f") == 14


def test_pre_and_post_increment_semantics():
    source = "int f(void) { int i = 5; int a = i++; int b = ++i; return a * 100 + b * 10 + i; }"
    # a = 5 (post), then i=6; b = 7 (pre), i = 7.
    assert run(source, "f") == 5 * 100 + 7 * 10 + 7


def test_break_inside_switch_inside_loop():
    source = """
int f(int n) {
    int hits = 0;
    for (int i = 0; i < n; i++) {
        switch (i) {
        case 1:
            hits = hits + 1;
            break;
        default:
            break;
        }
    }
    return hits;
}
"""
    assert run(source, "f", [3]) == 1


def test_continue_skips_rest_of_body():
    source = """
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i == 1)
            continue;
        s = s + i;
    }
    return s;
}
"""
    assert run(source, "f", [4]) == 0 + 2 + 3


def test_char_literals_as_ints():
    source = "int f(void) { char c = 'A'; return c + 1; }"
    assert run(source, "f") == ord("A") + 1


def test_hex_literals():
    source = "int f(void) { return 0xFF & 0x0F; }"
    assert run(source, "f") == 0x0F


def test_cast_of_zero_to_pointer_is_null():
    module = compile_source("void f(void) { char *p = (char *)0; }")
    moves = [i for i in module.functions["f"].instructions() if isinstance(i, ir.Move)]
    assert any(ir.is_null_const(m.src) for m in moves)


def test_variadic_call_lowered():
    source = """
static int fake_printf(char *fmt, ...) { return 0; }
int f(int a) { return fake_printf("x", a, a + 1); }
"""
    assert run(source, "f", [1]) == 0


def test_string_literals_are_distinct_nonnull():
    module = compile_source('void f(void) { char *a = "one"; char *b = "two"; }')
    consts = [
        i.src for i in module.functions["f"].instructions()
        if isinstance(i, ir.Move) and isinstance(i.src, ir.Const)
    ]
    assert len(consts) == 2
    assert consts[0].value != consts[1].value
    assert all(c.value != 0 for c in consts)


def test_negative_literal_folds_to_constant():
    module = compile_source("int f(void) { return -42; }")
    term = module.functions["f"].entry.terminator
    assert isinstance(term.value, ir.Const) and term.value.value == -42


def test_bitwise_complement_literal_folds():
    module = compile_source("int f(void) { return ~0; }")
    assert module.functions["f"].entry.terminator.value.value == -1


def test_array_of_struct_field_access():
    source = """
struct e { int k; };
int f(void) {
    struct e table[4];
    table[2].k = 9;
    return table[2].k;
}
"""
    assert run(source, "f") == 9


def test_pointer_param_array_syntax_decays():
    source = "int f(int buf[], int i) { buf[i] = 5; return buf[i]; }"
    program = compile_program([("t.c", source)])
    from repro.interp import Machine

    machine = Machine(program)
    arg = machine.make_argument_object()
    assert machine.call("f", [arg, 1]) == 5


def test_else_if_chain_precise():
    source = """
int f(int a) {
    if (a == 1) return 10;
    else if (a == 2) return 20;
    else return 30;
}
"""
    assert run(source, "f", [1]) == 10
    assert run(source, "f", [2]) == 20
    assert run(source, "f", [9]) == 30


def test_empty_function_body():
    source = "void f(void) { }"
    assert run(source, "f") == 0


def test_multiple_declarators_in_one_statement():
    source = "int f(void) { int a = 1, b = 2, c = 3; return a + b + c; }"
    assert run(source, "f") == 6


def test_sizeof_in_expression_context():
    source = "struct s { int a; int b; };\nint f(void) { return sizeof(struct s) / 2; }"
    assert run(source, "f") == 8


def test_shadowing_in_nested_scope():
    source = """
int f(void) {
    int x = 1;
    {
        int x = 2;
        x = x + 1;
    }
    return x;
}
"""
    # Inner x shadows; outer x unchanged.
    assert run(source, "f") == 1
