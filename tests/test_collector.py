"""Information collector tests (phase P1)."""

from repro.core import InformationCollector
from repro.lang import compile_program


def collector_for(*sources):
    program = compile_program(list(sources))
    return InformationCollector(program), program


def test_function_database_populated():
    collector, _ = collector_for(
        ("a.c", "static int helper(int x) { return x; }\nint top(int x) { return helper(x); }"),
    )
    info = collector.lookup("helper")
    assert info is not None
    assert info.is_static and not info.is_interface
    assert info.num_params == 1
    assert info.num_blocks >= 1 and info.num_instructions >= 0
    assert collector.database_size() == 2


def test_entry_functions_from_callgraph():
    collector, _ = collector_for(
        ("a.c",
         "static int inner(int x) { return x; }\n"
         "int outer(int x) { return inner(x); }\n"
         "static int handler(int x) { return inner(x); }\n"
         "struct ops { int (*h)(int x); };\n"
         "static struct ops o = { .h = handler };"),
    )
    entries = {f.name for f in collector.entry_functions()}
    assert entries == {"outer", "handler"}


def test_interface_marked_across_modules():
    collector, program = collector_for(
        ("impl.c", "int remote_probe(int x) { return x; }"),
        ("reg.c",
         "int remote_probe(int x);\n"
         "struct drv { int (*probe)(int x); };\n"
         "static struct drv d = { .probe = remote_probe };"),
    )
    assert program.lookup("remote_probe").is_interface
    assert collector.lookup("remote_probe").is_interface


def test_may_return_negative_direct():
    collector, _ = collector_for(
        ("a.c",
         "int find(int k) { if (k > 3) return -1; return k; }\n"
         "int always_pos(int k) { return k + 1; }"),
    )
    assert collector.may_return_negative("find")
    assert not collector.may_return_negative("always_pos")


def test_may_return_negative_via_constant_move():
    collector, _ = collector_for(
        ("a.c", "int find(int k) { int err = -22; if (k > 3) return err; return k; }"),
    )
    assert collector.may_return_negative("find")


def test_may_return_zero():
    collector, _ = collector_for(
        ("a.c", "int count(int m) { if (m == 0) return 0; return m; }"),
    )
    assert collector.may_return_zero("count")


def test_return_facts_propagate_through_wrappers():
    collector, _ = collector_for(
        ("a.c",
         "static int base(int k) { if (k > 3) return -1; return k; }\n"
         "int wrap(int k) { return base(k); }\n"
         "int wrap2(int k) { return wrap(k); }"),
    )
    assert collector.may_return_negative("wrap")
    assert collector.may_return_negative("wrap2")


def test_unknown_function_queries_are_false():
    collector, _ = collector_for(("a.c", "int f(void) { return 0; }"))
    assert not collector.may_return_negative("ghost")
    assert not collector.may_return_zero("ghost")
    assert collector.lookup("ghost") is None
    assert not collector.is_defined("ghost")


def test_position_metadata():
    collector, _ = collector_for(("src/drv.c", "\n\nint late(void) { return 1; }"))
    info = collector.lookup("late")
    assert info.filename == "src/drv.c"
    assert info.line == 3


def test_return_facts_close_through_deep_call_chains():
    """Regression: propagation used a fixed 3 rounds, so a depth-5 return
    chain (one level per round, anti-topological definition order) left
    the outermost wrapper's fact un-set.  Closure must reach a fixpoint
    regardless of chain depth or definition order."""
    collector, _ = collector_for(
        ("chain.c",
         "int f1(int k) { return f2(k); }\n"
         "int f2(int k) { return f3(k); }\n"
         "int f3(int k) { return f4(k); }\n"
         "int f4(int k) { return f5(k); }\n"
         "int f5(int k) { if (k > 0) return -1; return 1; }"),
    )
    for name in ("f1", "f2", "f3", "f4", "f5"):
        assert collector.may_return_negative(name), name
    # No zero constant anywhere on the chain: the closure must not invent one.
    assert not collector.may_return_zero("f1")
