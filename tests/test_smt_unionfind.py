"""Offset union-find unit and property tests."""

from hypothesis import given, settings, strategies as st

from repro.smt import OffsetUnionFind


def test_find_fresh_symbol_is_own_root():
    uf = OffsetUnionFind()
    root, offset = uf.find(7)
    assert root == 7 and offset == 0


def test_union_with_offset():
    uf = OffsetUnionFind()
    assert uf.union(1, 2, 5)  # x1 = x2 + 5
    assert uf.difference(1, 2) == 5
    assert uf.difference(2, 1) == -5


def test_transitive_offsets():
    uf = OffsetUnionFind()
    uf.union(1, 2, 3)
    uf.union(2, 3, 4)
    assert uf.difference(1, 3) == 7


def test_conflicting_union_rejected():
    uf = OffsetUnionFind()
    assert uf.union(1, 2, 3)
    assert not uf.union(1, 2, 4)
    assert uf.union(1, 2, 3)  # restating the same fact is fine


def test_assign_and_value_propagation():
    uf = OffsetUnionFind()
    uf.union(1, 2, 3)
    assert uf.assign(2, 10)
    assert uf.value_of(1) == 13
    assert uf.value_of(2) == 10


def test_assign_conflict_rejected():
    uf = OffsetUnionFind()
    assert uf.assign(1, 5)
    assert not uf.assign(1, 6)
    assert uf.assign(1, 5)


def test_union_of_pinned_classes_checks_values():
    uf = OffsetUnionFind()
    uf.assign(1, 5)
    uf.assign(2, 10)
    assert not uf.union(1, 2, 0)   # 5 != 10
    uf2 = OffsetUnionFind()
    uf2.assign(1, 5)
    uf2.assign(2, 10)
    assert uf2.union(1, 2, -5)     # 5 == 10 - 5


def test_same_class_query():
    uf = OffsetUnionFind()
    uf.union(1, 2, 0)
    assert uf.same_class(1, 2)
    assert not uf.same_class(1, 3)


def test_difference_across_classes_is_none():
    uf = OffsetUnionFind()
    assert uf.difference(1, 2) is None


@st.composite
def _union_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    ops = []
    for _ in range(n):
        x = draw(st.integers(min_value=0, max_value=5))
        y = draw(st.integers(min_value=0, max_value=5))
        c = draw(st.integers(min_value=-4, max_value=4))
        ops.append((x, y, c))
    return ops


@settings(max_examples=200, deadline=None)
@given(_union_sequences())
def test_property_consistent_with_reference_model(ops):
    """Compare against a brute-force model: maintain explicit relations
    and check every accepted union stays mutually consistent."""
    uf = OffsetUnionFind()
    accepted = []
    for x, y, c in ops:
        if x == y:
            if uf.union(x, y, c):
                accepted.append((x, y, c))
            continue
        if uf.union(x, y, c):
            accepted.append((x, y, c))
    # Every accepted relation must still hold.
    for x, y, c in accepted:
        assert uf.difference(x, y) == c


@settings(max_examples=150, deadline=None)
@given(_union_sequences(), st.integers(min_value=0, max_value=5), st.integers(min_value=-5, max_value=5))
def test_property_values_respect_offsets(ops, pin_sym, pin_value):
    uf = OffsetUnionFind()
    for x, y, c in ops:
        uf.union(x, y, c)
    if not uf.assign(pin_sym, pin_value):
        return
    for other in range(6):
        value = uf.value_of(other)
        diff = uf.difference(other, pin_sym)
        if diff is not None:
            assert value == pin_value + diff
