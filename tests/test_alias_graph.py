"""Alias-graph unit and property tests (the Fig. 5 rules)."""

import random

from hypothesis import given, settings, strategies as st

from repro.alias import AliasGraph, DEREF, Trail
from repro.ir import INT, PointerType, Var, VOID_PTR

P = PointerType(INT)


def var(name, ty=P):
    return Var(name, ty, source_name=name)


def test_move_joins_alias_classes():
    g = AliasGraph()
    a, b = var("a"), var("b")
    g.handle_move(a, b)
    assert g.are_aliases(a, b)
    assert g.alias_names(a) == frozenset({"a", "b"})


def test_move_is_strong_update():
    g = AliasGraph()
    a, b, c = var("a"), var("b"), var("c")
    g.handle_move(a, b)
    g.handle_move(a, c)
    assert g.are_aliases(a, c)
    assert not g.are_aliases(a, b)


def test_store_then_load_aliases():
    # *p = a; b = *p  =>  a and b alias (Fig. 5 STORE then LOAD).
    g = AliasGraph()
    p, a, b = var("p"), var("a"), var("b")
    g.handle_store(p, a)
    g.handle_load(b, p)
    assert g.are_aliases(a, b)


def test_store_replaces_deref_edge():
    g = AliasGraph()
    p, a, b, c = var("p"), var("a"), var("b"), var("c")
    g.handle_store(p, a)
    g.handle_store(p, b)
    g.handle_load(c, p)
    assert g.are_aliases(c, b)
    assert not g.are_aliases(c, a)


def test_load_without_edge_creates_one():
    g = AliasGraph()
    p, a, b = var("p"), var("a"), var("b")
    g.handle_load(a, p)
    g.handle_load(b, p)  # second load reuses the edge
    assert g.are_aliases(a, b)


def test_gep_same_field_shares_node():
    g = AliasGraph()
    p, f1, f2 = var("p"), var("f1"), var("f2")
    g.handle_gep(f1, p, "data")
    g.handle_gep(f2, p, "data")
    assert g.are_aliases(f1, f2)


def test_gep_different_fields_distinct():
    g = AliasGraph()
    p, f1, f2 = var("p"), var("f1"), var("f2")
    g.handle_gep(f1, p, "a")
    g.handle_gep(f2, p, "b")
    assert not g.are_aliases(f1, f2)


def test_field_alias_through_move():
    # q = p; x = &p->f; y = &q->f  =>  x and y alias (field sensitivity).
    g = AliasGraph()
    p, q, x, y = var("p"), var("q"), var("x"), var("y")
    g.handle_move(q, p)
    g.handle_gep(x, p, "f")
    g.handle_gep(y, q, "f")
    assert g.are_aliases(x, y)


def test_addr_of_then_load_recovers_var():
    g = AliasGraph()
    p, x, y = var("p"), var("x", INT), var("y", INT)
    g.handle_addr_of(p, x)
    g.handle_load(y, p)
    assert g.are_aliases(x, y)


def test_fresh_object_detaches():
    g = AliasGraph()
    a, b = var("a"), var("b")
    g.handle_move(a, b)
    g.handle_fresh_object(a)  # a = malloc(...)
    assert not g.are_aliases(a, b)


def test_one_outgoing_edge_per_label_invariant():
    g = AliasGraph()
    p, a, b = var("p"), var("a"), var("b")
    g.handle_gep(a, p, "f")
    g.handle_gep(b, p, "f")
    node = g.node_of(p)
    assert list(node.out) == ["f"]


def test_example1_figure4_access_paths():
    # Fig. 4: x -f-> n3, y -g-> n3, p,q in n3, n3 -*-> n4 with s in n4.
    g = AliasGraph()
    x, y, p, q, s, t = var("x"), var("y"), var("p"), var("q"), var("s"), var("t")
    g.handle_gep(p, x, "f")
    g.handle_move(q, p)
    g.handle_gep(t, y, "g")
    g.handle_move(q, t)   # now p's node reached from both x->f ... rebuild
    # Rebuild exactly: p and q both name n3.
    g2 = AliasGraph()
    g2.handle_gep(p, x, "f")
    g2.handle_gep(q, y, "g")
    g2.handle_move(q, p)
    g2.handle_load(s, p)
    node3 = g2.node_of(p)
    paths = g2.access_paths(node3)
    assert "p" in paths and "q" in paths
    assert any("&x->f" in ap for ap in paths)
    node4 = g2.node_of(s)
    paths4 = g2.access_paths(node4)
    assert "s" in paths4
    assert any(ap.startswith("*") for ap in paths4)


def test_trail_undo_restores_alias_state():
    trail = Trail()
    g = AliasGraph(trail)
    a, b, c = var("a"), var("b"), var("c")
    g.handle_move(a, b)
    mark = trail.mark()
    g.handle_move(c, a)
    g.handle_store(a, c)
    assert g.are_aliases(c, a)
    trail.undo_to(mark)
    assert not g.are_aliases(c, a)
    assert g.are_aliases(a, b)
    assert g.deref_node(a) is None


def test_trail_undo_restores_edges():
    trail = Trail()
    g = AliasGraph(trail)
    p, a, b = var("p"), var("a"), var("b")
    g.handle_store(p, a)
    mark = trail.mark()
    g.handle_store(p, b)
    trail.undo_to(mark)
    x = var("x")
    g.handle_load(x, p)
    assert g.are_aliases(x, a)


def test_journal_tracks_and_rewinds():
    trail = Trail()
    g = AliasGraph(trail)
    a, b = var("a"), var("b")
    mark = trail.mark()
    jmark = len(g.journal)
    g.handle_move(a, b)
    assert len(g.journal) > jmark
    trail.undo_to(mark)
    assert len(g.journal) == jmark


def test_stats_counts_classes_and_vars():
    g = AliasGraph()
    a, b, c = var("a"), var("b"), var("c")
    g.handle_move(a, b)
    g.node_of(c)
    classes, tracked = g.stats()
    assert classes == 2 and tracked == 3


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

_VARS = [var(f"v{i}") for i in range(6)]
_FIELDS = ["f", "g"]


@st.composite
def _op_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["move", "store", "load", "gep", "fresh"]))
        a = draw(st.sampled_from(_VARS))
        b = draw(st.sampled_from(_VARS))
        fieldname = draw(st.sampled_from(_FIELDS))
        ops.append((kind, a, b, fieldname))
    return ops


def _apply(g, ops):
    for kind, a, b, fieldname in ops:
        if kind == "move":
            if a.name != b.name:
                g.handle_move(a, b)
        elif kind == "store":
            g.handle_store(a, b)
        elif kind == "load":
            if a.name != b.name:
                g.handle_load(a, b)
        elif kind == "gep":
            if a.name != b.name:
                g.handle_gep(a, b, fieldname)
        else:
            g.handle_fresh_object(a)


def _snapshot(g):
    """Canonical view: per-variable alias set + outgoing edge labels."""
    snap = {}
    for v in _VARS:
        node = g.node_of_name(v.name)
        if node is None:
            continue
        snap[v.name] = (frozenset(node.vars), frozenset(node.out.keys()))
    return snap


@settings(max_examples=120, deadline=None)
@given(_op_sequences())
def test_property_each_var_in_exactly_one_node(ops):
    g = AliasGraph()
    _apply(g, ops)
    seen = {}
    for node in g.nodes():
        for name in node.vars:
            assert name not in seen, f"{name} appears in two nodes"
            seen[name] = node
    for v in _VARS:
        node = g.node_of_name(v.name)
        if node is not None:
            assert v.name in node.vars


@settings(max_examples=120, deadline=None)
@given(_op_sequences())
def test_property_single_edge_per_label(ops):
    g = AliasGraph()
    _apply(g, ops)
    for node in g.nodes():
        # dict keys are unique by construction; also check reverse pointers.
        for label, target in node.out.items():
            assert target.inc.get((node.uid, label)) is node


@settings(max_examples=80, deadline=None)
@given(_op_sequences(), _op_sequences())
def test_property_trail_undo_is_exact(prefix, suffix):
    trail = Trail()
    g = AliasGraph(trail)
    _apply(g, prefix)
    before = _snapshot(g)
    mark = trail.mark()
    _apply(g, suffix)
    trail.undo_to(mark)
    assert _snapshot(g) == before


@settings(max_examples=80, deadline=None)
@given(_op_sequences())
def test_property_aliasing_is_equivalence_relation(ops):
    g = AliasGraph()
    _apply(g, ops)
    for a in _VARS:
        assert g.are_aliases(a, a)
        for b in _VARS:
            assert g.are_aliases(a, b) == g.are_aliases(b, a)
            if g.are_aliases(a, b):
                assert g.alias_names(a) == g.alias_names(b)
