"""Value-flow graph + Saber-style leak detection tests."""

from repro.lang import compile_program
from repro.vfg import SaberLeakDetector, ValueFlowGraph


def program_of(source):
    return compile_program([("t.c", source)])


def test_copy_edges_in_vfg():
    program = program_of("void f(void) { char *p = malloc(8); char *q = p; }")
    vfg = ValueFlowGraph(program)
    (site,) = vfg.malloc_sites
    reach = vfg.reachable_from(site.dst.name)
    assert "f.q" in reach


def test_call_edges_in_vfg():
    program = program_of(
        "static void sink(char *x) { }\n"
        "void f(void) { char *p = malloc(8); sink(p); }"
    )
    vfg = ValueFlowGraph(program)
    (site,) = vfg.malloc_sites
    assert "sink.x" in vfg.reachable_from(site.dst.name)


def test_memory_edges_through_may_alias():
    source = """
void f(void) {
    char *obj = malloc(8);
    char **slot = malloc(8);
    *slot = obj;
    char *out = *slot;
}
"""
    program = program_of(source)
    vfg = ValueFlowGraph(program)
    obj_site = vfg.malloc_sites[0]
    assert "f.out" in vfg.reachable_from(obj_site.dst.name)


def test_saber_detects_never_freed():
    program = program_of(
        "int f(int n) { int *p = malloc(n); if (!p) return -1; *p = n; return *p; }"
    )
    leaks = SaberLeakDetector(program).detect()
    assert len(leaks) == 1


def test_saber_freed_not_reported():
    program = program_of(
        "int f(int n) { char *p = malloc(n); if (!p) return -1; free(p); return 0; }"
    )
    assert SaberLeakDetector(program).detect() == []


def test_saber_returned_pointer_escapes():
    program = program_of("char *f(int n) { char *p = malloc(n); return p; }")
    assert SaberLeakDetector(program).detect() == []


def test_saber_stored_pointer_escapes():
    program = program_of(
        "struct h { char *b; };\n"
        "void f(struct h *out, int n) { char *p = malloc(n); out->b = p; }"
    )
    assert SaberLeakDetector(program).detect() == []


def test_saber_global_move_escapes():
    program = program_of(
        "char *stash;\n"
        "void f(int n) { char *p = malloc(n); stash = p; }"
    )
    assert SaberLeakDetector(program).detect() == []


def test_saber_null_failure_path_not_a_leak():
    # The only free-less exit is the allocation-failure return.
    program = program_of(
        "int f(int n) { char *p = malloc(n); if (!p) return -1; free(p); return 0; }"
    )
    assert SaberLeakDetector(program).detect() == []


def test_saber_error_path_leak_via_free_avoiding_route():
    program = program_of(
        """
int f(int n, int bad) {
    int *p = malloc(n);
    if (!p) return -1;
    *p = 1;
    if (bad) return -9;
    free(p);
    return 0;
}
"""
    )
    leaks = SaberLeakDetector(program).detect()
    assert len(leaks) == 1


def test_saber_misses_leak_when_pointer_passed_to_external():
    # Passing to an unknown function counts as escape: Saber's documented
    # conservatism (it loses error-path leaks like Fig. 12(c) when the
    # buffer is also consumed by an external call).
    program = program_of(
        """
int f(int n, int bad) {
    char *p = malloc(n);
    if (!p) return -1;
    if (bad) return -9;
    external_use(p);
    free(p);
    return 0;
}
"""
    )
    assert SaberLeakDetector(program).detect() == []


def test_edge_count_positive():
    program = program_of("void f(void) { char *p = malloc(8); char *q = p; }")
    assert ValueFlowGraph(program).edge_count() >= 1


def test_saber_escape_via_aliased_field_store():
    # Regression: storing an *interior* pointer (&p->hdr) publishes the
    # allocation even though the interior pointer's name never enters the
    # VFG flow set (GEPs add no value-flow edge).  _escapes must consult
    # the points-to base objects, not just name matches.
    program = program_of(
        """
struct pkt { int hdr; int body; };
int publish(int **slot) {
    struct pkt *p = malloc(sizeof(struct pkt));
    if (p == NULL)
        return -1;
    p->hdr = 7;
    int *t = &p->hdr;
    *slot = t;
    return 0;
}
"""
    )
    assert SaberLeakDetector(program).detect() == []


def test_saber_alias_escape_does_not_mask_real_leaks():
    # The alias-aware escape check must not swallow an unrelated site:
    # the second allocation still leaks on the early-error path.
    program = program_of(
        """
struct pkt { int hdr; int body; };
int mixed(int **slot, int n, int bad) {
    struct pkt *p = malloc(sizeof(struct pkt));
    if (p == NULL)
        return -1;
    int *t = &p->hdr;
    *slot = t;
    char *buf = malloc(n);
    if (buf == NULL)
        return -1;
    if (bad)
        return -9;
    free(buf);
    return 0;
}
"""
    )
    leaks = SaberLeakDetector(program).detect()
    assert len(leaks) == 1
    assert leaks[0].function == "mixed"
