"""Evaluation harness tests: each table/figure builds, and the paper's
qualitative *shapes* hold on small corpora.

These are the headline claims of the reproduction:

* PATA finds more real bugs than every baseline (on compiled files);
* PATA's FP rate is far below PATA-NA's (Table 6);
* alias-aware tracking/validation uses fewer typestates/constraints;
* Saber/SVF hit the memory budget on the Linux-profile corpus only.
"""

import pytest

from repro.evaluation import (
    EvaluationHarness,
    fig11_distribution,
    table4_os_info,
    table5_analysis,
    table6_sensitivity,
    table7_generality,
    table8_comparison,
    unique_real_bugs_vs_tools,
)

SCALE = 0.35


@pytest.fixture(scope="module")
def harness():
    return EvaluationHarness(scale=SCALE)


def test_table4_lists_four_oses(harness):
    data, text = table4_os_info(harness)
    assert set(data) == {"linux", "zephyr", "riot", "tencentos"}
    assert data["linux"]["loc"] > data["zephyr"]["loc"]
    assert "Table 4" in text


def test_table5_totals_consistent(harness):
    data, text = table5_analysis(harness)
    total = data["total"]
    assert total["found"] >= total["real"] > 0
    assert total["files_analyzed"] <= total["files_all"]
    assert "Table 5" in text


def test_table5_alias_savings_shape(harness):
    data, _ = table5_analysis(harness)
    total = data["total"]
    # Alias-aware tracking maintains fewer typestates (paper: -49.8%)...
    assert total["typestates_aware"] < total["typestates_unaware"]
    # ...and fewer SMT constraints (paper: -87.3%).
    assert total["smt_aware"] < total["smt_unaware"]


def test_table5_fp_rate_in_paper_ballpark(harness):
    data, _ = table5_analysis(harness)
    total = data["total"]
    fp_rate = 1 - total["real"] / total["found"]
    assert fp_rate <= 0.45  # paper: 28%


def test_table5_linux_dominates(harness):
    data, _ = table5_analysis(harness)
    assert data["linux"]["real"] > data["zephyr"]["real"]
    assert data["linux"]["lines_analyzed"] > data["riot"]["lines_analyzed"]


def test_fig11_drivers_and_thirdparty_dominate(harness):
    data, text = fig11_distribution(harness)
    linux = data["linux"]
    assert max(linux, key=linux.get) == "drivers"
    assert linux["drivers"] >= 0.5  # paper: 75%
    iot = data["iot"]
    assert max(iot, key=iot.get) == "third_party"  # paper: 68%


def test_table6_na_has_higher_fp_rate(harness):
    data, text = table6_sensitivity(harness)
    assert data["pata_na"]["fp_rate"] > data["pata"]["fp_rate"]
    assert data["pata"]["real"] > data["pata_na"]["real"]
    assert "PATA-NA" in text


def test_table6_na_reals_are_subset(harness):
    data, _ = table6_sensitivity(harness)
    # Paper: "These 194 real bugs are all found by PATA".
    assert data["pata_na"]["matched"] <= data["pata"]["matched"]


def test_table7_additional_checkers_find_bugs(harness):
    data, text = table7_generality(harness)
    assert data["total"]["found"] >= data["total"]["real"] >= 1
    assert "Table 7" in text


def test_table8_pata_leads_every_os(harness):
    data, text = table8_comparison(harness)
    for os_name, os_data in data.items():
        pata_real = os_data["pata"]["real"]
        for tool, cell in os_data.items():
            if tool == "pata" or cell.get("status") != "ok":
                continue
            assert cell["real"] <= pata_real, f"{tool} beats PATA on {os_name}"


def test_table8_status_cells(harness):
    data, _ = table8_comparison(harness)
    # Paper: Smatch/CSA fail to build the IoT OSes, Infer fails on Linux.
    assert data["zephyr"]["smatch-like"]["status"] == "compile_error"
    assert data["zephyr"]["csa-like"]["status"] == "compile_error"
    assert data["linux"]["infer-like"]["status"] == "compile_error"


def test_table8_pata_unique_bugs_dominate(harness):
    data, _ = table8_comparison(harness)
    pata_only, missed = unique_real_bugs_vs_tools(data)
    assert pata_only > missed  # paper: 328 vs 27


def test_table8_missed_bugs_live_in_uncompiled_files(harness):
    """What PATA misses is (mostly) what only source-based tools see."""
    data, _ = table8_comparison(harness)
    for os_name, os_data in data.items():
        run = harness.run_for(next(p for p in harness.profiles if p.name == os_name))
        compiled = {f.path for f in run.corpus.compiled_files()}
        pata_matched = os_data["pata"]["matched"]
        cpp = os_data.get("cppcheck-like", {})
        for uid in cpp.get("matched", set()) - pata_matched:
            gt = next(g for g in run.corpus.ground_truth if g.uid == uid)
            assert gt.path not in compiled


@pytest.mark.slow
def test_saber_and_svf_oom_only_on_linux_at_full_scale():
    harness = EvaluationHarness(scale=1.0)
    data, _ = table8_comparison(harness)
    assert data["linux"]["saber-like"]["status"] == "oom"
    assert data["linux"]["svf-null"]["status"] == "oom"
    for os_name in ("zephyr", "riot", "tencentos"):
        assert data[os_name]["saber-like"]["status"] == "ok"
        assert data[os_name]["svf-null"]["status"] == "ok"
