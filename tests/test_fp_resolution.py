"""Function-pointer resolution extension tests (§7 future work).

Published PATA "does not handle function-pointer calls, and thus it
cannot find bugs whose bug-trigger paths pass through indirect function
calls"; the paper plans to adopt a function-pointer analysis.  The
``resolve_function_pointers`` config switch implements a type-based
resolution through interface registrations: an indirect call through
field ``f`` of struct ``T`` targets the functions registered to that
slot.
"""

import random

import pytest

from repro import PATA, AnalysisConfig
from repro.core import InformationCollector
from repro.corpus.patterns import COMMON_DECLS, EXTENSION_PATTERNS, npd_indirect_dispatch
from repro.lang import compile_program
from repro.typestate import BugKind

DISPATCH_SOURCE = r"""
struct msg { int len; };
struct handler_ops { int (*consume)(struct msg *m); };

static int raw_consume(struct msg *m) {
    return m->len;
}
static struct handler_ops raw_ops = { .consume = raw_consume };

int dispatch(struct handler_ops *ops, struct msg *m) {
    if (!m)
        return ops->consume(m);
    return 0;
}
struct dispatch_reg { int (*d)(struct handler_ops *o, struct msg *m); };
static struct dispatch_reg dr = { .d = dispatch };
"""


def analyze(source, resolve):
    config = AnalysisConfig(resolve_function_pointers=resolve)
    return PATA(config=config).analyze_sources([("d.c", source)])


def test_default_pata_misses_indirect_bug():
    result = analyze(DISPATCH_SOURCE, resolve=False)
    assert result.by_kind(BugKind.NPD) == []


def test_extension_finds_indirect_bug():
    result = analyze(DISPATCH_SOURCE, resolve=True)
    npd = result.by_kind(BugKind.NPD)
    assert len(npd) == 1
    assert npd[0].entry_function == "dispatch"


def test_collector_resolves_struct_field_targets():
    program = compile_program([("d.c", DISPATCH_SOURCE)])
    collector = InformationCollector(program)
    assert collector.indirect_targets("handler_ops", "consume") == ["raw_consume"]
    assert collector.indirect_targets("handler_ops", "ghost_field") == []
    # Unknown struct falls back to field-name matching.
    assert collector.indirect_targets(None, "consume") == ["raw_consume"]
    # A known-but-different struct does not borrow another struct's slot.
    assert collector.indirect_targets("dispatch_reg", "consume") == []


def test_multiple_targets_each_explored():
    source = r"""
struct msg { int len; };
struct handler_ops { int (*consume)(struct msg *m); };

static int safe_consume(struct msg *m) {
    if (!m) return 0;
    return m->len;
}
static int raw_consume(struct msg *m) {
    return m->len;
}
static struct handler_ops safe_ops = { .consume = safe_consume };
static struct handler_ops raw_ops = { .consume = raw_consume };

int dispatch(struct handler_ops *ops, struct msg *m) {
    if (!m)
        return ops->consume(m);
    return 0;
}
struct dispatch_reg { int (*d)(struct handler_ops *o, struct msg *m); };
static struct dispatch_reg dr = { .d = dispatch };
"""
    result = analyze(source, resolve=True)
    npd = result.by_kind(BugKind.NPD)
    # Only the raw target dereferences the NULL message.
    assert len(npd) == 1
    assert "raw_consume.m" in npd[0].alias_set


def test_target_cap_respected():
    config = AnalysisConfig(resolve_function_pointers=True, max_indirect_targets=1)
    result = PATA(config=config).analyze_sources([("d.c", DISPATCH_SOURCE)])
    assert result.stats.explored_paths >= 1  # terminates; cap honored


def test_extension_pattern_detectable_only_with_resolution():
    snippet = npd_indirect_dispatch("90210", random.Random(5))
    src = COMMON_DECLS + "\n" + "\n".join(snippet.lines) + "\n"
    off = PATA(config=AnalysisConfig(resolve_function_pointers=False)).analyze_sources([("e.c", src)])
    on = PATA(config=AnalysisConfig(resolve_function_pointers=True)).analyze_sources([("e.c", src)])
    assert off.by_kind(BugKind.NPD) == []
    assert len(on.by_kind(BugKind.NPD)) == 1


def test_extension_patterns_registry_nonempty():
    assert EXTENSION_PATTERNS
