"""Every example script must run cleanly (they are executable docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "PATA found 3 bugs" in proc.stdout
    assert "NULL-POINTER DEREFERENCE" in proc.stdout
    assert "MEMORY LEAK" in proc.stdout


def test_zephyr_bluetooth_npd():
    proc = run_example("zephyr_bluetooth_npd.py")
    assert proc.returncode == 0, proc.stderr
    assert "PATA-NA" in proc.stdout
    assert "no bugs found" in proc.stdout  # the ablation misses it
    assert "friend_set.cfg" in proc.stdout


def test_custom_checker():
    proc = run_example("custom_checker.py")
    assert proc.returncode == 0, proc.stderr
    assert "used after being freed" in proc.stdout
    assert "finish.r" in proc.stdout  # the alias set crosses the call


def test_linux_driver_audit_small_scale():
    proc = run_example("linux_driver_audit.py", "0.2")
    assert proc.returncode == 0, proc.stderr
    assert "real bugs" in proc.stdout
    assert "recall" in proc.stdout
    assert "reproduced at runtime" in proc.stdout


def test_tool_comparison_small_scale():
    proc = run_example("tool_comparison.py", "tencentos", "0.4")
    assert proc.returncode == 0, proc.stderr
    assert "PATA" in proc.stdout and "saber-like" in proc.stdout
