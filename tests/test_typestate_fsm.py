"""FSM framework tests (Definition 2, Table 2, §5.5)."""

import pytest

from repro.typestate import (
    ARRAY_UNDERFLOW_FSM,
    DIV_ZERO_FSM,
    DOUBLE_LOCK_FSM,
    ML_FSM,
    NPD_FSM,
    UVA_FSM,
    make_fsm,
)


def test_make_fsm_infers_states_and_alphabet():
    fsm = make_fsm("t", "S0", "ERR", {("S0", "go"): "ERR"})
    assert fsm.states == frozenset({"S0", "ERR"})
    assert fsm.alphabet == frozenset({"go"})


def test_unspecified_inputs_self_loop():
    fsm = make_fsm("t", "S0", "ERR", {("S0", "go"): "ERR"})
    assert fsm.step("S0", "unknown") == "S0"


def test_invalid_transition_rejected():
    from repro.typestate import FSM

    with pytest.raises(ValueError):
        FSM(
            name="t",
            states=frozenset({"S0", "ERR"}),
            initial="S0",
            error="ERR",
            alphabet=frozenset({"go"}),
            transitions={("S0", "go"): "GHOST"},  # GHOST not a state
        )
    with pytest.raises(ValueError):
        FSM(
            name="t",
            states=frozenset({"S0", "ERR"}),
            initial="MISSING",
            error="ERR",
            alphabet=frozenset(),
            transitions={},
        )


def test_run_folds_symbol_sequence():
    assert NPD_FSM.run(["br_null", "deref"]) == "SNPD"


def test_npd_null_then_deref_is_bug():
    assert NPD_FSM.run(["ass_null", "deref"]) == "SNPD"


def test_npd_nonnull_branch_clears():
    assert NPD_FSM.run(["ass_null", "br_nonnull", "deref"]) == "SNON"


def test_npd_deref_of_unknown_is_safe():
    assert NPD_FSM.run(["deref"]) == "S0"


def test_npd_renull_after_clear():
    assert NPD_FSM.run(["br_nonnull", "ass_null", "deref"]) == "SNPD"


def test_uva_alloc_then_use_is_bug():
    assert UVA_FSM.run(["alloc", "use"]) == "SUVA"
    assert UVA_FSM.run(["alloc", "load"]) == "SUVA"


def test_uva_init_before_use_is_safe():
    assert UVA_FSM.run(["alloc", "ass_const", "use"]) == "SI"


def test_uva_error_state_recovers_on_init():
    assert UVA_FSM.run(["alloc", "use", "ass_const"]) == "SI"


def test_ml_malloc_ret_is_leak():
    assert ML_FSM.run(["malloc", "ret"]) == "SML"


def test_ml_freed_before_ret_is_safe():
    assert ML_FSM.run(["malloc", "free", "ret"]) == "SF"


def test_ml_realloc_cycle():
    assert ML_FSM.run(["malloc", "free", "malloc", "ret"]) == "SML"


def test_double_lock_detects_relock():
    assert DOUBLE_LOCK_FSM.run(["lock", "lock"]) == "SDL"


def test_double_unlock_detects():
    assert DOUBLE_LOCK_FSM.run(["lock", "unlock", "unlock"]) == "SDL"


def test_lock_unlock_pairs_are_safe():
    assert DOUBLE_LOCK_FSM.run(["lock", "unlock", "lock", "unlock"]) == "SU"


def test_first_unlock_from_unknown_is_trusted():
    assert DOUBLE_LOCK_FSM.run(["unlock"]) == "SU"


def test_underflow_maybe_negative_then_index():
    assert ARRAY_UNDERFLOW_FSM.run(["maybe_neg", "index_use"]) == "SAIU"


def test_underflow_bounds_check_clears():
    assert ARRAY_UNDERFLOW_FSM.run(["maybe_neg", "proved_nonneg", "index_use"]) == "SNN"


def test_divzero_maybe_zero_then_div():
    assert DIV_ZERO_FSM.run(["maybe_zero", "div_use"]) == "SDBZ"


def test_divzero_proof_clears():
    assert DIV_ZERO_FSM.run(["maybe_zero", "proved_nonzero", "div_use"]) == "SNZ"


def test_error_states_declared():
    for fsm in (NPD_FSM, UVA_FSM, ML_FSM, DOUBLE_LOCK_FSM, ARRAY_UNDERFLOW_FSM, DIV_ZERO_FSM):
        assert fsm.error in fsm.states
        assert fsm.initial in fsm.states
