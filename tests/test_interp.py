"""Concrete interpreter tests: semantics and the fault model."""

import pytest

from repro.interp import (
    DivisionByZeroFault,
    DoubleFreeFault,
    DoubleLockFault,
    Machine,
    NegativeIndexFault,
    NullDereferenceFault,
    StepLimitExceeded,
    UninitializedReadFault,
    UseAfterFreeFault,
    run_entry,
)
from repro.lang import compile_program


def program_of(source):
    return compile_program([("t.c", source)])


# -- basic evaluation -----------------------------------------------------------


def test_arithmetic_and_control_flow():
    prog = program_of("int f(int a) { if (a > 2) return a * 10; return a - 1; }")
    assert run_entry(prog, "f", [5])[0] == 50
    assert run_entry(prog, "f", [1])[0] == 0


def test_loops_execute_concretely():
    prog = program_of("int f(int n) { int s = 0; for (int i = 0; i < n; i++) s = s + i; return s; }")
    assert run_entry(prog, "f", [5])[0] == 10


def test_calls_and_recursion():
    prog = program_of("int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }")
    assert run_entry(prog, "fact", [6])[0] == 720


def test_struct_fields_via_argument_object():
    prog = program_of(
        "struct s { int a; int b; };\n"
        "int f(struct s *p) { p->a = 3; p->b = 4; return p->a + p->b; }"
    )
    machine = Machine(prog)
    arg = machine.make_argument_object()
    assert machine.call("f", [arg]) == 7


def test_nested_struct_fields_use_dotted_labels():
    prog = program_of(
        "struct inner { int v; };\n"
        "struct outer { struct inner box; };\n"
        "int f(void) { struct outer o; o.box.v = 9; return o.box.v; }"
    )
    assert run_entry(prog, "f")[0] == 9


def test_globals_zero_initialized():
    prog = program_of("int counter; int f(void) { counter = counter + 2; return counter; }")
    assert run_entry(prog, "f")[0] == 2


def test_global_struct_persists_across_calls():
    prog = program_of(
        "struct s { int n; }; static struct s g;\n"
        "int bump(void) { g.n = g.n + 1; return g.n; }"
    )
    machine = Machine(prog)
    assert machine.call("bump") == 1
    assert machine.call("bump") == 2


def test_switch_semantics():
    prog = program_of(
        "int f(int t) { int r = 0; switch (t) { case 1: r = 10; break; case 2: r = 20; break; default: r = -1; break; } return r; }"
    )
    assert run_entry(prog, "f", [1])[0] == 10
    assert run_entry(prog, "f", [2])[0] == 20
    assert run_entry(prog, "f", [9])[0] == -1


def test_external_calls_use_oracle():
    prog = program_of("int f(int a) { return query(a) + 1; }")
    machine = Machine(prog, externals={"query": lambda args: args[0] * 100})
    assert machine.call("f", [3]) == 301


def test_unlisted_external_returns_zero():
    prog = program_of("int f(void) { return mystery(); }")
    assert run_entry(prog, "f")[0] == 0


# -- fault model -----------------------------------------------------------------


def test_null_deref_fault_with_location():
    prog = program_of("struct s { int v; };\nint f(struct s *p) {\n    return p->v;\n}")
    _, fault, _ = run_entry(prog, "f", [0])
    assert isinstance(fault, NullDereferenceFault)
    assert fault.loc.line == 3


def test_uninitialized_local_read_faults():
    prog = program_of("int f(int c) { int x; if (c) x = 1; return x; }")
    _, fault, _ = run_entry(prog, "f", [0])
    assert isinstance(fault, UninitializedReadFault)
    assert run_entry(prog, "f", [1])[0] == 1


def test_uninitialized_heap_field_faults():
    prog = program_of(
        "struct s { int a; };\n"
        "int f(void) { struct s *p = kmalloc(8); if (!p) return -1; return p->a; }"
    )
    _, fault, _ = run_entry(prog, "f")
    assert isinstance(fault, UninitializedReadFault)


def test_kzalloc_region_reads_zero():
    prog = program_of(
        "struct s { int a; };\n"
        "int f(void) { struct s *p = kzalloc(8); if (!p) return -1; int v = p->a; kfree(p); return v; }"
    )
    assert run_entry(prog, "f")[0] == 0


def test_memset_initializes():
    prog = program_of(
        "struct s { int a; };\n"
        "int f(void) { struct s *p = kmalloc(8); if (!p) return -1; memset(p, 0, 8); int v = p->a; kfree(p); return v; }"
    )
    assert run_entry(prog, "f")[0] == 0


def test_division_by_zero_faults():
    prog = program_of("int f(int a, int b) { return a / b; }")
    _, fault, _ = run_entry(prog, "f", [10, 0])
    assert isinstance(fault, DivisionByZeroFault)
    assert run_entry(prog, "f", [10, 3])[0] == 3


def test_negative_index_faults():
    prog = program_of("static int t[4];\nint f(int i) {\n    return t[i];\n}")
    _, fault, _ = run_entry(prog, "f", [-1])
    assert isinstance(fault, NegativeIndexFault)
    assert run_entry(prog, "f", [2])[0] == 0  # static array, zeroed


def test_double_free_faults():
    prog = program_of("void f(void) { char *p = malloc(4); free(p); free(p); }")
    _, fault, _ = run_entry(prog, "f")
    assert isinstance(fault, DoubleFreeFault)


def test_free_null_is_noop():
    prog = program_of("void f(void) { char *p = NULL; free(p); }")
    _, fault, _ = run_entry(prog, "f")
    assert fault is None


def test_use_after_free_faults():
    prog = program_of(
        "struct s { int v; };\n"
        "int f(void) { struct s *p = kmalloc(8); if (!p) return -1; p->v = 1; kfree(p); return p->v; }"
    )
    _, fault, _ = run_entry(prog, "f")
    assert isinstance(fault, UseAfterFreeFault)


def test_double_lock_faults():
    prog = program_of(
        "struct d { int lock; }; static struct d g;\n"
        "void f(void) { spin_lock(&g.lock); spin_lock(&g.lock); }"
    )
    _, fault, _ = run_entry(prog, "f")
    assert isinstance(fault, DoubleLockFault)


def test_balanced_locks_ok():
    prog = program_of(
        "struct d { int lock; }; static struct d g;\n"
        "void f(void) { spin_lock(&g.lock); spin_unlock(&g.lock); }"
    )
    assert run_entry(prog, "f")[1] is None


def test_fuel_guards_infinite_loops():
    prog = program_of("int f(void) { int x = 0; while (1) { x = x + 1; } return x; }")
    _, fault, _ = run_entry(prog, "f", fuel=2000)
    assert isinstance(fault, StepLimitExceeded)


# -- allocation / leaks --------------------------------------------------------------


def test_allocator_policy_controls_failure():
    prog = program_of("int f(int n) { char *p = malloc(n); if (!p) return -12; free(p); return 0; }")
    ok, fault, _ = run_entry(prog, "f", [8])
    assert ok == 0
    failed, fault, _ = run_entry(prog, "f", [8], allocator_policy=lambda site: False)
    assert failed == -12


def test_leaked_objects_detected():
    prog = program_of("int f(int n, int bad) { char *p = malloc(n); if (!p) return -1; if (bad) return -2; free(p); return 0; }")
    _, _, leaks_good = run_entry(prog, "f", [8, 0])
    _, _, leaks_bad = run_entry(prog, "f", [8, 1])
    assert leaks_good == []
    assert len(leaks_bad) == 1


def test_returned_pointer_not_counted_as_leak():
    prog = program_of("char *f(int n) { return malloc(n); }")
    _, fault, leaks = run_entry(prog, "f", [8])
    assert fault is None and leaks == []


def test_global_stashed_pointer_not_a_leak():
    prog = program_of("char *stash;\nvoid f(int n) { stash = malloc(n); }")
    _, fault, leaks = run_entry(prog, "f", [8])
    assert fault is None and leaks == []
