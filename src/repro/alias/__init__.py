"""Path-based alias analysis (§3.1): alias graphs, update rules, drivers."""

from .trail import Trail
from .graph import DEREF, AliasGraph, AliasNode
from .analysis import PathAliasAnalysis, PathAliasResult, apply_instruction

__all__ = [
    "Trail", "DEREF", "AliasGraph", "AliasNode",
    "PathAliasAnalysis", "PathAliasResult", "apply_instruction",
]
