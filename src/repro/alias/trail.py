"""Undo trail for depth-first path exploration.

PATA copies the alias graph at each branch (Fig. 7 "COPY").  Copying a
whole graph per branch is O(graph) at every fork; this implementation
instead records inverse operations on a trail and rewinds on backtrack,
which is O(changes) — the standard trick from Prolog/SAT engines.  The
result is observationally identical to the paper's copy semantics: each
control-flow path sees its own alias-graph history.

The same trail is shared by the typestate manager so alias state and
checker state rewind together.
"""

from __future__ import annotations

from typing import Callable, List


class Trail:
    """A stack of undo thunks with positional marks."""

    __slots__ = ("_undo",)

    def __init__(self) -> None:
        self._undo: List[Callable[[], None]] = []

    def push(self, undo: Callable[[], None]) -> None:
        self._undo.append(undo)

    def mark(self) -> int:
        return len(self._undo)

    def undo_to(self, mark: int) -> None:
        undo = self._undo
        while len(undo) > mark:
            undo.pop()()

    def __len__(self) -> int:
        return len(self._undo)
