"""The alias graph of PATA (§3.1, Definition 1) with the update rules of
Fig. 5.

A node is an *alias class*: the set of variables that, on the current
control-flow path, must refer to the same abstract object.  Edges are
labeled with a struct field name or the dereference label ``"*"`` and
describe how an abstract object is reached from another; for a given node
and label there is at most one outgoing edge.

Updates are *strong*: an assigned variable always leaves its old node.
(The paper's MOVE/LOAD rules express this with ``Vars(n1) -= {v1}``.)
All mutations are recorded on a :class:`~repro.alias.trail.Trail` so the
path-sensitive engine can rewind at branch backtracking instead of copying
the graph (see trail.py for why this is equivalent to Fig. 7's COPY).
"""

from __future__ import annotations

import itertools
import weakref
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..ir import Value, Var, is_null_const
from .trail import Trail

DEREF = "*"

_node_ids = itertools.count(1)


class AliasNode:
    """One alias class.  ``vars`` holds variable names (unique program-wide
    by construction: ``func.v``, ``%func.tN``, ``@g``)."""

    __slots__ = ("uid", "vars", "out", "inc", "__weakref__")

    def __init__(self) -> None:
        self.uid = next(_node_ids)
        self.vars: Set[str] = set()
        self.out: Dict[str, "AliasNode"] = {}
        # Incoming edges as {(source uid, label): source node} — needed by
        # the UVA checker to find the base object of a field address.
        self.inc: Dict[Tuple[int, str], "AliasNode"] = {}

    def __repr__(self) -> str:
        return f"<n{self.uid} {{{', '.join(sorted(self.vars))}}}>"


class AliasGraph:
    """Mutable alias graph with trail-based undo.

    ``skip_names`` is the P1.7 singleton fast path: variable names the
    whole-program Steensgaard partition proved can never share a node
    with another variable, carry an edge, or be pointed to
    (:mod:`repro.pointsto.steensgaard`).  Strong updates of such a
    variable skip node creation entirely and only bump a trailed
    per-name *generation* — downstream clients key typestates on
    ``(name, generation)`` instead of a node uid, which reproduces the
    fresh-node-per-detach state visibility exactly.
    """

    def __init__(self, trail: Optional[Trail] = None,
                 skip_names: Optional[FrozenSet[str]] = None):
        self.trail = trail if trail is not None else Trail()
        self._node_of: Dict[str, AliasNode] = {}
        #: uid -> node for nodes still alive (weak: undone nodes vanish);
        #: used to canonicalize typestate keys for exit-merge digests.
        self.by_uid = weakref.WeakValueDictionary()
        #: names whose binding changed, in order — lets the engine digest
        #: "what did this callee touch" for exit-path merging (§4, P2).
        #: Kept in sync with the trail (entries pop on undo).
        self.journal: List[str] = []
        #: P1.7 proven-singleton names whose per-path maintenance is skipped
        self.skip_names: FrozenSet[str] = skip_names or frozenset()
        #: current strong-update generation per skipped name (trailed)
        self.skip_generations: Dict[str, int] = {}

    def skip_generation(self, name: str) -> int:
        return self.skip_generations.get(name, 0)

    def bump_skip(self, name: str) -> None:
        """The fast-path strong update: no node, just a new generation —
        states keyed under older generations become unreachable exactly
        like states keyed on a detached node's uid."""
        old = self.skip_generations.get(name)
        self.skip_generations[name] = (old or 0) + 1

        def undo() -> None:
            if old is None:
                self.skip_generations.pop(name, None)
            else:
                self.skip_generations[name] = old

        self.trail.push(undo)

    def _journal_bind(self, name: str) -> None:
        self.journal.append(name)
        self.trail.push(self.journal.pop)

    def _new_node(self) -> AliasNode:
        node = AliasNode()
        self.by_uid[node.uid] = node
        return node

    # -- node lookup ---------------------------------------------------------

    def node_of(self, var: Var) -> AliasNode:
        """The node representing ``var``, creating an isolated node lazily.

        Lazy creation is equivalent to the paper's "insert a node for every
        variable up front" (Fig. 6 lines 4-6) but scales to OS-sized
        programs.
        """
        node = self._node_of.get(var.name)
        if node is None:
            node = self._new_node()
            node.vars.add(var.name)
            self._node_of[var.name] = node
            name = var.name
            self.trail.push(lambda: self._node_of.pop(name, None))
            self._journal_bind(name)
        return node

    def node_of_name(self, name: str) -> Optional[AliasNode]:
        return self._node_of.get(name)

    # -- primitive mutations (all trailed) ------------------------------------

    def _move_var(self, name: str, src: AliasNode, dst: AliasNode) -> None:
        src.vars.discard(name)
        dst.vars.add(name)
        self._node_of[name] = dst

        def undo() -> None:
            dst.vars.discard(name)
            src.vars.add(name)
            self._node_of[name] = src

        self.trail.push(undo)
        self._journal_bind(name)

    def _set_edge(self, src: AliasNode, label: str, dst: AliasNode) -> None:
        old = src.out.get(label)
        if old is dst:
            return  # identical edge: nothing changes (and nothing to undo)
        src.out[label] = dst
        dst.inc[(src.uid, label)] = src
        if old is not None:
            old.inc.pop((src.uid, label), None)

        def undo() -> None:
            dst.inc.pop((src.uid, label), None)
            if old is not None:
                src.out[label] = old
                old.inc[(src.uid, label)] = src
            else:
                src.out.pop(label, None)

        self.trail.push(undo)

    def detach(self, var: Var) -> Optional[AliasNode]:
        """Strong update: give ``var`` a fresh singleton node and return it.

        The node is always brand new — node identity is what downstream
        clients key typestates and SMT symbols on, so a reassigned
        variable must never keep its old node (that would resurrect stale
        states/constraints, e.g. after ``x = 0; ...; x = 1``).

        Proven singletons (P1.7 fast path) return None: no node exists,
        the generation bump carries the strong-update semantics.
        """
        if var.name in self.skip_names:
            self.bump_skip(var.name)
            return None
        current = self._node_of.get(var.name)
        fresh = self._new_node()
        if current is None:
            fresh.vars.add(var.name)
            self._node_of[var.name] = fresh
            name = var.name
            self.trail.push(lambda: self._node_of.pop(name, None))
            self._journal_bind(name)
        else:
            self._move_var(var.name, current, fresh)
        return fresh

    # -- the Fig. 5 rules -------------------------------------------------------

    def handle_move(self, dst: Var, src: Var) -> AliasNode:
        """HandleMOVE(v1 = v2): v1 joins v2's node."""
        n_src = self.node_of(src)
        n_dst = self._node_of.get(dst.name)
        if n_dst is n_src:
            return n_src
        if n_dst is None:
            self._node_of[dst.name] = n_src
            n_src.vars.add(dst.name)
            name = dst.name

            def undo() -> None:
                n_src.vars.discard(name)
                self._node_of.pop(name, None)

            self.trail.push(undo)
            self._journal_bind(name)
        else:
            self._move_var(dst.name, n_dst, n_src)
        return n_src

    def handle_store(self, ptr: Var, src: Var) -> AliasNode:
        """HandleSTORE(*v2 = v1): retarget v2's ``*`` edge to v1's node."""
        n_ptr = self.node_of(ptr)
        n_src = self.node_of(src)
        self._set_edge(n_ptr, DEREF, n_src)
        return n_src

    def handle_store_fresh(self, ptr: Var) -> AliasNode:
        """STORE of a non-variable (constant) value: ``*v2`` now refers to an
        object no variable names — a fresh node."""
        n_ptr = self.node_of(ptr)
        fresh = self._new_node()
        self._set_edge(n_ptr, DEREF, fresh)
        return fresh

    def handle_load(self, dst: Var, ptr: Var) -> AliasNode:
        """HandleLOAD(v1 = *v2)."""
        return self._follow_edge(dst, ptr, DEREF)

    def handle_gep(self, dst: Var, base: Var, field: str) -> AliasNode:
        """HandleGEP(v1 = &v2->f)."""
        return self._follow_edge(dst, base, field)

    def _follow_edge(self, dst: Var, src: Var, label: str) -> AliasNode:
        n_src = self.node_of(src)
        target = n_src.out.get(label)
        if target is not None:
            n_dst = self._node_of.get(dst.name)
            if n_dst is target:
                return target
            if n_dst is None:
                target.vars.add(dst.name)
                self._node_of[dst.name] = target
                name = dst.name

                def undo() -> None:
                    target.vars.discard(name)
                    self._node_of.pop(name, None)

                self.trail.push(undo)
                self._journal_bind(name)
            else:
                self._move_var(dst.name, n_dst, target)
            return target
        n_dst = self.detach(dst)
        self._set_edge(n_src, label, n_dst)
        return n_dst

    def handle_addr_of(self, dst: Var, var: Var) -> AliasNode:
        """``v1 = &v2``: after a strong update of v1, ``*v1`` must reach
        v2's node — i.e. STORE semantics with v1 reassigned first."""
        n_var = self.node_of(var)
        n_dst = self.detach(dst)
        self._set_edge(n_dst, DEREF, n_var)
        return n_dst

    def handle_fresh_object(self, dst: Var) -> AliasNode:
        """Allocation (``dst = malloc(...)`` / alloca): dst points to a brand
        new object nothing else aliases — a fresh singleton node."""
        return self.detach(dst)

    # -- queries -----------------------------------------------------------------

    def alias_names(self, var: Var) -> FrozenSet[str]:
        """Variable names in ``var``'s alias class (including itself)."""
        node = self._node_of.get(var.name)
        if node is None:
            return frozenset((var.name,))
        return frozenset(node.vars)

    def are_aliases(self, a: Var, b: Var) -> bool:
        if a.name == b.name:
            return True
        na = self._node_of.get(a.name)
        return na is not None and na is self._node_of.get(b.name)

    def deref_node(self, var: Var) -> Optional[AliasNode]:
        """Node reached by ``*var`` when it exists."""
        node = self._node_of.get(var.name)
        return node.out.get(DEREF) if node is not None else None

    def field_node(self, var: Var, field: str) -> Optional[AliasNode]:
        node = self._node_of.get(var.name)
        return node.out.get(field) if node is not None else None

    def access_paths(self, node: AliasNode, max_depth: int = 3, max_paths: int = 16) -> List[str]:
        """Human-readable access paths reaching ``node`` (Example 1 of the
        paper): variables in the node itself (length 0) plus
        ``&v->f`` / ``*v`` style paths through incoming edges."""
        paths: List[str] = sorted(node.vars)
        frontier: List[Tuple[AliasNode, str]] = [(node, "")]
        for _ in range(max_depth):
            next_frontier: List[Tuple[AliasNode, str]] = []
            for current, suffix in frontier:
                for (_, label), src in list(current.inc.items()):
                    if src.out.get(label) is not current:
                        continue  # stale reverse entry
                    for var_name in sorted(src.vars):
                        if label == DEREF:
                            rendered = f"*({var_name}){suffix}" if suffix else f"*{var_name}"
                        else:
                            rendered = f"&{var_name}->{label}{suffix}"
                        paths.append(rendered)
                        if len(paths) >= max_paths:
                            return paths
                    next_frontier.append((src, f"->{label}" if label != DEREF else "*"))
            frontier = next_frontier
            if not frontier:
                break
        return paths

    def nodes(self) -> Iterator[AliasNode]:
        seen: Set[int] = set()
        for node in self._node_of.values():
            if node.uid not in seen:
                seen.add(node.uid)
                yield node

    def stats(self) -> Tuple[int, int]:
        """(number of alias classes, number of tracked variables)."""
        classes = set(id(n) for n in self._node_of.values())
        return len(classes), len(self._node_of)
