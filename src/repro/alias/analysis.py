"""Per-instruction alias-graph transfer function and a standalone
path-based alias analysis (Fig. 6) usable without the bug-detection engine.

The transfer function :func:`apply_instruction` implements the dispatch of
HandleINST (Fig. 6, lines 22-29); the PATA engine invokes it and then feeds
typestate events.  :class:`PathAliasAnalysis` is a thin driver exposing
"which variables alias on this path" for library users (Discussion §7
suggests reusing the alias analysis for other clients).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..ir import (
    AddrOf,
    Alloc,
    BinOp,
    DeclLocal,
    Function,
    Gep,
    Instruction,
    Load,
    Malloc,
    Move,
    Program,
    Store,
    UnOp,
    Var,
)
from .graph import AliasGraph, AliasNode


def apply_instruction(graph: AliasGraph, inst: Instruction) -> Optional[AliasNode]:
    """Update ``graph`` for one instruction; return the node that now
    represents the instruction's primary result (None when the instruction
    has no alias effect).

    CALL instructions are *not* handled here: parameter passing is a
    sequence of MOVEs performed by the inter-procedural engine
    (HandleCALL, Fig. 6 lines 12-21).
    """
    if isinstance(inst, Move):
        if isinstance(inst.src, Var):
            return graph.handle_move(inst.dst, inst.src)
        return graph.detach(inst.dst)  # constant assignment: strong update
    if isinstance(inst, Load):
        return graph.handle_load(inst.dst, inst.ptr)
    if isinstance(inst, Store):
        if isinstance(inst.src, Var):
            return graph.handle_store(inst.ptr, inst.src)
        return graph.handle_store_fresh(inst.ptr)
    if isinstance(inst, Gep):
        return graph.handle_gep(inst.dst, inst.base, inst.field)
    if isinstance(inst, AddrOf):
        return graph.handle_addr_of(inst.dst, inst.var)
    if isinstance(inst, (Malloc, Alloc)):
        return graph.handle_fresh_object(inst.dst)
    if isinstance(inst, (BinOp, UnOp)):
        return graph.detach(inst.dst)
    if isinstance(inst, DeclLocal):
        return graph.detach(inst.var)
    # Call/CallIndirect (engine's job), Free/MemSet/LockOp: no alias effect.
    return None


@dataclass
class PathAliasResult:
    """Alias classes observed at the end of one explored path."""

    path_id: int
    alias_sets: List[FrozenSet[str]] = field(default_factory=list)

    def aliases_of(self, name: str) -> FrozenSet[str]:
        for alias_set in self.alias_sets:
            if name in alias_set:
                return alias_set
        return frozenset((name,))


class PathAliasAnalysis:
    """Standalone path-based alias analysis over one entry function.

    Explores control-flow paths depth-first (loops and recursion unrolled
    once, as in the paper), maintaining one alias graph per path via the
    undo trail.  Calls are inlined with MOVE parameter passing.
    """

    def __init__(
        self,
        program: Program,
        max_paths: int = 2048,
        max_call_depth: int = 24,
        max_steps_per_path: int = 20000,
    ):
        self.program = program
        self.max_paths = max_paths
        self.max_call_depth = max_call_depth
        self.max_steps_per_path = max_steps_per_path

    def analyze(self, entry: Function, observer: Optional[Callable] = None) -> List[PathAliasResult]:
        """Run the analysis from ``entry``; returns one result per complete
        path.  ``observer(inst, graph)`` is invoked after each instruction
        when provided (this is the TypestateTrack hook of Fig. 6)."""
        from ..core.analyzer import PathExplorer  # local import: layering

        results: List[PathAliasResult] = []

        def on_path_end(explorer: "PathExplorer") -> None:
            sets = [
                frozenset(node.vars)
                for node in explorer.graph.nodes()
                if len(node.vars) > 1
            ]
            results.append(PathAliasResult(len(results), sets))

        explorer = PathExplorer(
            self.program,
            max_paths=self.max_paths,
            max_call_depth=self.max_call_depth,
            max_steps_per_path=self.max_steps_per_path,
            instruction_observer=observer,
            path_end_observer=on_path_end,
        )
        explorer.explore(entry)
        return results

    def must_alias_on_some_path(self, entry: Function, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` share an alias class on at least one
        explored path — the paper's notion of path-based aliasing."""
        for result in self.analyze(entry):
            if b in result.aliases_of(a):
                return True
        return False
