"""Alias-aware, path-sensitive lockset race detection.

Per-path recording (:mod:`.checker`), canonical shared keys
(:mod:`.shared`), and the cross-entry matching phase P2.5
(:mod:`.match`).  See ``docs/engine-internals.md`` for the full design.
"""

from .checker import RaceChecker
from .fsm import RACE_FSM
from .match import match_races
from .shared import SharedAccess, object_root, render_key, render_lockset

__all__ = [
    "RaceChecker",
    "RACE_FSM",
    "SharedAccess",
    "match_races",
    "object_root",
    "render_key",
    "render_lockset",
]
