"""Cross-entry race matching — phase **P2.5** of the extended pipeline.

Runs in the parent process after the per-entry outcomes are merged
(deterministically, in entry order) and before the P3 bug filter.  Input
is every :class:`~repro.races.shared.SharedAccess` the explorations
recorded; output is stage-1 :class:`~repro.typestate.manager.PossibleBug`
candidates in the lockset regime:

two accesses to the same shared key **race** when

* they come from different entry functions (two interface invocations
  can interleave; with ``include_reentrant`` also from one entry, which
  models an entry racing a second invocation of itself),
* at least one is a write, and
* their locksets are disjoint — no lock identity was held around both.

Candidates carry *both* path snapshots (``trace`` and ``second_trace``);
the P3 validator conjoins the two path conditions and drops the pair iff
they are jointly unsatisfiable — e.g. a writer guarded by ``flag != 0``
cannot race a reader guarded by ``flag == 0`` *of the same never-written
flag*, which a pure lockset tool (the ``eraser_like`` baseline) reports.

Matching is deterministic: groups iterate in sorted key order, accesses
in a sorted canonical order, and repeats of an instruction pair collapse
to the first combination — the same contract as the engine's bug dedup.
"""

from __future__ import annotations

from typing import Iterable, List

from ..typestate.events import BugKind
from ..typestate.manager import PossibleBug
from .shared import SharedAccess, render_key, render_lockset

#: matcher guardrail: beyond this many accesses to one key, pair only
#: against the writes (keeps the quadratic pairing bounded on hot keys).
_MAX_FULL_PAIRING = 256


def _describe(access: SharedAccess) -> str:
    verb = "write" if access.is_write else "read"
    return f"{verb} in {access.entry} holding {render_lockset(access.lockset)}"


def match_races(accesses: Iterable[SharedAccess],
                include_reentrant: bool = False) -> List[PossibleBug]:
    """Pair recorded accesses into stage-1 race candidates."""
    by_key = {}
    for access in accesses:
        by_key.setdefault(access.key, []).append(access)
    bugs: List[PossibleBug] = []
    seen_pairs = set()
    for key in sorted(by_key):
        group = sorted(
            by_key[key],
            key=lambda a: (a.inst.uid, a.entry, not a.is_write,
                           tuple(sorted(a.lockset))),
        )
        if len(group) > _MAX_FULL_PAIRING:
            writers = [a for a in group if a.is_write]
            pairs = ((w, other) for w in writers for other in group)
        else:
            pairs = ((group[i], group[j])
                     for i in range(len(group))
                     for j in range(i + 1, len(group)))
        for first, second in pairs:
            if first is second:
                continue
            if first.entry == second.entry and not include_reentrant:
                continue
            if not (first.is_write or second.is_write):
                continue
            if not first.lockset.isdisjoint(second.lockset):
                continue
            # Canonical orientation: the textually earlier instruction
            # is the source; ties (same instruction inlined into two
            # entries) break on the entry name.
            source, sink = sorted(
                (first, second), key=lambda a: (a.inst.uid, a.entry))
            pair_key = (source.inst.uid, sink.inst.uid)
            if pair_key in seen_pairs:
                continue  # first path combination stands in for all
            seen_pairs.add(pair_key)
            subject = render_key(key)
            bugs.append(PossibleBug(
                kind=BugKind.RACE,
                checker="race",
                subject=subject,
                source=source.inst,
                sink=sink.inst,
                message=(
                    f"possible data race on '{subject}': "
                    f"{_describe(source)} vs {_describe(sink)} "
                    f"share no lock"
                ),
                trace=source.trace,
                second_trace=sink.trace,
                entry_function=f"{source.entry} vs {sink.entry}",
            ))
    return bugs
