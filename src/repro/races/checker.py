"""Alias-aware lockset race checker — the per-path recording half.

Classic lockset (Eraser) discipline, upgraded with the alias graph:

* the path's **lockset** is a set of canonical lock identities
  (``(root, field)`` keys per :mod:`repro.races.shared`), updated at
  every :class:`~repro.typestate.events.LockEvent`.  Locks reached
  through different aliases (``&s->lock`` here, ``&req->hdr.lock``
  there) canonicalize to the same identity, so holding "the same lock
  under another name" is recognized — the failure mode that makes
  purely syntactic lockset tools either noisy or blind;
* every read/write whose target canonicalizes to *shared* state — a
  global, or a heap object whose allocation site escapes per the VFG
  (:meth:`repro.core.collector.InformationCollector.shared_heap_sites`)
  — is recorded through the engine's ``record_access`` hook together
  with the entry, the lockset and the full path snapshot.

No bug is reported here: single paths cannot race.  The cross-entry
matcher (:mod:`repro.races.match`, phase P2.5) pairs the recorded
accesses, and stage 2 discharges pairs whose two path conditions are
jointly unsatisfiable (:func:`repro.smt.translate.translate_trace_pair`).

Accesses rooted in entry parameters stay unrecorded: a different entry
has no name for them, so no cross-entry pair could ever form — and the
object may genuinely be thread-local.
"""

from __future__ import annotations

from typing import FrozenSet, Optional

from ..alias.graph import DEREF
from ..ir import Move, Var
from ..presolve.events import EventKind
from ..typestate.events import (
    AllocEvent,
    AssignConstEvent,
    AssignNullEvent,
    BugKind,
    CallReturnEvent,
    Event,
    LoadEvent,
    LockEvent,
    MemInitEvent,
    StoreEvent,
    UseVarEvent,
)
from ..typestate.manager import Checker, TrackerContext
from .fsm import RACE_FSM
from .shared import (
    DIRECT,
    LOCKSET_KEY,
    LOCKSET_NAMESPACE,
    OBJ_NAMESPACE,
    AccessKey,
    object_root,
)


class RaceChecker(Checker):
    """Lockset recorder; see the module docstring."""

    name = "race"
    kind = BugKind.RACE
    fsm = RACE_FSM
    relevant_events = (
        EventKind.LOCK | EventKind.SHARED_ACCESS | EventKind.ALLOC_HEAP
        | EventKind.USE | EventKind.STORE | EventKind.DEREF
        | EventKind.MEM_INIT | EventKind.ASSIGN_CONST | EventKind.ASSIGN_NULL
        | EventKind.CALL_RETURN
    )
    # Both ends of the property are accesses: a path segment that can
    # touch no shared state can neither arm nor fire the checker, so
    # entry/suffix pruning on SHARED_ACCESS alone stays sound — the
    # P1.5 scan over-approximates it (every Load/Store/MemSet, plus all
    # syntactically global operands), and a pruned suffix therefore
    # contains nothing this checker would have recorded.
    trigger_events = EventKind.SHARED_ACCESS
    sink_events = EventKind.SHARED_ACCESS
    handled_events = (
        LockEvent, AllocEvent, LoadEvent, StoreEvent, MemInitEvent,
        UseVarEvent, AssignConstEvent, AssignNullEvent, CallReturnEvent,
    )

    @property
    def state_namespaces(self):
        return (self.name, OBJ_NAMESPACE, LOCKSET_NAMESPACE)

    def __init__(self, shared_sites: frozenset = frozenset()):
        #: uids of malloc instructions whose objects escape — the heap
        #: half of the shared universe (globals are the other half).
        self.shared_sites = shared_sites

    # -- event dispatch ----------------------------------------------------------

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, LockEvent):
            self._handle_lock(event, ctx)
        elif isinstance(event, AllocEvent):
            self._register_heap(event, ctx)
        elif isinstance(event, LoadEvent):
            self._record(ctx, self._location(ctx, event.addr), False, event.inst)
        elif isinstance(event, StoreEvent):
            self._record(ctx, self._location(ctx, event.addr), True, event.inst)
        elif isinstance(event, MemInitEvent):
            self._record(ctx, self._location(ctx, event.ptr), True, event.inst)
        elif isinstance(event, UseVarEvent):
            if self._is_global_scalar(event.var):
                self._record(ctx, (event.var.name, DIRECT), False, event.inst)
            # A Move whose source is a Var raises only UseVarEvent; when
            # its destination is a global scalar, that is also a write.
            inst = event.inst
            if isinstance(inst, Move) and self._is_global_scalar(inst.dst):
                self._record(ctx, (inst.dst.name, DIRECT), True, inst)
        elif isinstance(event, AssignConstEvent):
            if self._is_global_scalar(event.var):
                self._record(ctx, (event.var.name, DIRECT), True, event.inst)
        elif isinstance(event, AssignNullEvent):
            if self._is_global_scalar(event.ptr):
                self._record(ctx, (event.ptr.name, DIRECT), True, event.inst)
        elif isinstance(event, CallReturnEvent):
            if self._is_global_scalar(event.dst):
                self._record(ctx, (event.dst.name, DIRECT), True, event.inst)

    @staticmethod
    def _is_global_scalar(var: Var) -> bool:
        # Aggregate globals are *addresses*; reading one is not an
        # access to the struct's storage (field accesses go through
        # Load/Store and key on the aggregate's object root).
        return var.is_global and not var.is_aggregate

    # -- lockset -----------------------------------------------------------------

    def _lockset(self, ctx: TrackerContext) -> FrozenSet[AccessKey]:
        return ctx.get_key(LOCKSET_NAMESPACE, LOCKSET_KEY, frozenset())

    def _handle_lock(self, event: LockEvent, ctx: TrackerContext) -> None:
        lock_id = self._location(ctx, event.lock)
        if lock_id is None:
            # Unresolvable lock (parameter-rooted): keep it under its own
            # syntactic name.  Cross-entry identities then never match,
            # i.e. an unknown lock protects nothing — the conservative
            # direction for a *detector* (over-report, never mask).
            lock_id = ("?", event.lock.name)
        held = self._lockset(ctx)
        updated = held | {lock_id} if event.acquire else held - {lock_id}
        if updated != held:
            # Trailed store: backtracking restores the branch-point lockset.
            ctx.set_key(LOCKSET_NAMESPACE, LOCKSET_KEY, updated)

    # -- shared-key resolution ---------------------------------------------------

    def _register_heap(self, event: AllocEvent, ctx: TrackerContext) -> None:
        if not event.heap or event.inst.uid not in self.shared_sites:
            return
        if ctx.alias_aware and ctx.graph is not None:
            node = ctx.graph.node_of(event.ptr)
            ctx.set_key(OBJ_NAMESPACE, node.uid, f"heap#{event.inst.uid}")

    def _location(self, ctx: TrackerContext, addr: Var) -> Optional[AccessKey]:
        """Canonical (root, field) for an access through ``addr``."""
        base = ctx.base_of(addr)
        if base is not None:
            base_var, fieldname = base
            root = self._root_of(ctx, base_var)
            if root is None:
                return None
            return (root, fieldname)
        root = self._root_of(ctx, addr)
        if root is None:
            return None
        if root.startswith("@"):
            # ``*(&g)`` *is* the scalar global — match direct accesses.
            return (root, DIRECT)
        return (root, DEREF)

    def _root_of(self, ctx: TrackerContext, ptr: Var) -> Optional[str]:
        if ctx.alias_aware and ctx.graph is not None:
            return object_root(
                ctx.graph.node_of(ptr),
                lambda uid: ctx.get_key(OBJ_NAMESPACE, uid),
            )
        # NA ablation: no pointee identity — only syntactically global
        # pointers/aggregates resolve (Table 6's regression, on purpose).
        if ptr.name.startswith("@"):
            return "*" + ptr.name
        return None

    # -- recording ---------------------------------------------------------------

    def _record(self, ctx: TrackerContext, key: Optional[AccessKey],
                is_write: bool, inst) -> None:
        if key is None:
            return
        ctx.record_access(key, is_write, inst, self._lockset(ctx))
