"""The race property as a (degenerate) typestate FSM.

Unlike the Table 2 properties, a race is not a fact about one path: it
is a *pair* of paths from different entries whose locksets fail to
overlap.  No single-path automaton can recognize it, which is exactly
why the detector adds the cross-entry matching phase P2.5.  The FSM
below exists so the checker plugs into the same registry/CLI plumbing
as every other property (``--list-checkers`` prints its states): one
``conflict`` input — "a disjoint-lockset write/access pair was matched"
— drives it to the error state.  It is stepped conceptually by the
matcher, never by the path engine.
"""

from __future__ import annotations

from ..typestate.fsm import make_fsm

RACE_FSM = make_fsm(
    "FSM_RACE",
    initial="S0",
    error="SRACE",
    transitions={
        ("S0", "conflict"): "SRACE",
    },
)
