"""The *shared-state* universe of the race detector and its canonical
access keys.

A race pairs two accesses from different analysis entries, so the two
sides never share an alias graph — each entry's exploration builds its
own.  What they do share is the program's *named* state: global
variables, and heap objects that escape their allocating function (the
VFG ``_escapes`` notion reused via
:func:`repro.vfg.escaping_malloc_sites`).  This module canonicalizes a
per-path alias-graph node into a name of that shared state — the
**shared key** — so accesses recorded under different entries (through
arbitrarily many local aliases) can be matched syntactically in P2.5.

A key is ``(root, field)`` where ``root`` names the object and ``field``
the accessed slot:

* ``("@g", "=")`` — the global scalar ``g`` itself;
* ``("*@st", "count")`` — field ``count`` of the aggregate behind the
  global address ``@st`` (global structs/arrays *are* addresses);
* ``("*@head", "*")`` — the object a global pointer points at;
* ``("heap#42", "len")`` — field of the escaping heap object allocated
  at instruction uid 42 (the allocation-site abstraction);
* ``("*@head.next", "*")`` — one field hop further (bounded recursion).

Canonicalization is deliberately *syntactic about the shared root* and
*semantic about local aliasing*: however many locals sit between the
access and the root, the alias graph collapses them; only the root name
must agree across entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional, Tuple

from ..alias.graph import DEREF, AliasNode
from ..ir import Instruction

#: state namespace for heap-object registrations (node uid -> "heap#N")
OBJ_NAMESPACE = "race.obj"
#: state namespace + key for the path's current lockset.  The "@"
#: prefix is load-bearing: the engine's callee exit-digest treats
#: ``@``-named store keys as caller-visible (like globals), so two
#: callee exits that differ only in the lockset they return with are
#: never merged — merging them would record the continuation's
#: accesses under only one of the two locksets.
LOCKSET_NAMESPACE = "race.lock"
LOCKSET_KEY = "@held"

#: ``field`` marker for "the global scalar itself" (not behind a pointer)
DIRECT = "="

#: a canonical lock identity / shared-state key: (root, field)
AccessKey = Tuple[str, str]


@dataclass
class SharedAccess:
    """One read or write of shared state on one explored path.

    Recorded by :class:`~repro.races.checker.RaceChecker` through the
    engine's ``record_access`` hook; shipped from workers to the parent
    inside :class:`~repro.core.parallel.EntryOutcome`, so everything
    here must pickle (instructions and traces already do — possible
    bugs carry the same).
    """

    key: AccessKey
    is_write: bool
    inst: Instruction
    entry: str
    lockset: FrozenSet[AccessKey]
    #: engine path snapshot at the access — replayable by stage 2
    trace: Tuple = ()

    @property
    def dedup_key(self) -> Tuple:
        """Accesses are repeats when the same instruction touches the
        same key with the same lockset from the same entry (loop bodies,
        path re-merges); the trace snapshot of the first one stands in
        for all of them, mirroring the engine's bug dedup."""
        return (self.entry, self.key, self.inst.uid, self.is_write,
                tuple(sorted(self.lockset)))


def object_root(
    node: Optional[AliasNode],
    heap_obj: Callable[[int], Optional[str]],
    depth: int = 4,
) -> Optional[str]:
    """Canonical name of the object ``node``'s pointers refer to, or
    None when the object is not provably shared (e.g. rooted in a
    parameter of the entry — a different entry has no way to name it).

    ``heap_obj`` maps an alias-node uid to its ``heap#N`` registration
    (the checker records one at every escaping malloc on the path).

    Resolution order matters and is deterministic:

    1. a global name *in* the node — the pointer is (or aliases) a
       global: the object is whatever that global refers to, ``*@g``.
       For global aggregates (``@st`` is the struct's address) this
       also names the struct itself.
    2. a global name behind the node's ``*`` edge — the pointer holds
       ``&g`` of a scalar global: the object *is* ``@g``.  Checked
       after (1) because a store ``*g_ptr = q`` retargets the ``*``
       edge to the stored value's node, which rule 1 keys stably while
       rule 2 would not.
    3. a heap registration — an escaping allocation this path executed.
    4. a bounded walk over *field*-labeled incoming edges: an edge
       ``base --f--> node`` means this pointer came from ``&(*base).f``,
       so the object is field ``f`` of base's object.  Lexicographic
       min over candidates keeps the choice path-independent.
    """
    if node is None or depth <= 0:
        return None
    node_globals = [name for name in node.vars if name.startswith("@")]
    if node_globals:
        return "*" + min(node_globals)
    target = node.out.get(DEREF)
    if target is not None:
        target_globals = [name for name in target.vars if name.startswith("@")]
        if target_globals:
            return min(target_globals)
    registered = heap_obj(node.uid)
    if registered is not None:
        return registered
    candidates = []
    for (_, label), base in node.inc.items():
        if label == DEREF or base.out.get(label) is not node:
            continue  # deref edges and stale reverse entries
        base_root = object_root(base, heap_obj, depth - 1)
        if base_root is not None:
            candidates.append(f"{base_root}.{label}")
    if candidates:
        return min(candidates)
    return None


def render_key(key: AccessKey) -> str:
    """Human-readable form of a shared key for report messages."""
    root, fieldname = key
    if fieldname == DIRECT:
        return root
    if fieldname == DEREF:
        return f"*({root})"
    return f"{root}.{fieldname}"


def render_lockset(lockset: FrozenSet[AccessKey]) -> str:
    if not lockset:
        return "no locks"
    return "{" + ", ".join(render_key(lock) for lock in sorted(lockset)) + "}"
