"""Static per-instruction event scan — the bottom of the P1.5 summary.

Mirrors the event synthesis of :mod:`repro.core.analyzer` one abstract
level up: for every instruction the explorer could execute, compute the
set of :class:`~repro.presolve.events.EventKind` bits the corresponding
runtime events would fall under.  The scan is deliberately
flow-insensitive (a bag of kinds per block / per function); path
sensitivity is exactly what the expensive phase adds.

Call instructions contribute in two ways:

* a *call edge* for the summary fixpoint (the callee's transitive kinds
  flow into the caller), recorded by :func:`block_events` in
  ``ScanResult.callees``;
* their *havoc kinds* directly: any call — even to a defined function —
  may be handled externally at exploration time (inline depth exceeded,
  blocked recursion), in which case the explorer dispatches
  ``ExternalCallEvent``/``CallReturnEvent``/escapes instead of walking
  the body.  The scan therefore always includes those kinds, plus the
  ``NEG_CONST``/``ZERO_CONST`` triggers the underflow and division
  checkers derive from the collector's may-return facts and callee-name
  hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from ..ir import (
    AddrOf,
    Alloc,
    BasicBlock,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    DeclLocal,
    Free,
    Function,
    Gep,
    Jump,
    Load,
    LockOp,
    Malloc,
    MemSet,
    Move,
    PointerType,
    Ret,
    Store,
    UnOp,
    Var,
    is_null_const,
)
from .events import NEGATIVE_RETURN_HINTS, TAINT_SOURCE_HINTS, EventKind

_CMP_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}


@dataclass
class ScanContext:
    """Program-level facts the scan consults for call instructions.

    ``may_return_negative``/``may_return_zero`` are the collector's
    closed return facts (:class:`~repro.core.collector.InformationCollector`);
    duck-typed callables so this package never imports :mod:`repro.core`.
    """

    may_return_negative: Callable[[str], bool] = lambda name: False
    may_return_zero: Callable[[str], bool] = lambda name: False


@dataclass
class ScanResult:
    """Kinds one block generates directly, plus its outgoing call edges."""

    events: EventKind = EventKind.NONE
    #: names of directly called functions (fixpoint edges)
    callees: List[str] = field(default_factory=list)
    #: True when the block contains an indirect call (resolved separately)
    has_indirect_call: bool = False


def _const_value_kinds(value: int) -> EventKind:
    """Kinds of an ``AssignConstEvent`` carrying ``value``."""
    kinds = EventKind.ASSIGN_CONST
    if value < 0:
        kinds |= EventKind.NEG_CONST
    elif value == 0:
        kinds |= EventKind.ZERO_CONST
    return kinds


def _call_return_kinds(callee: str, ctx: ScanContext) -> EventKind:
    """Trigger kinds of a ``CallReturnEvent`` from ``callee`` — mirrors
    the underflow/div-zero checkers' CallReturn handling."""
    kinds = EventKind.CALL_RETURN
    if ctx.may_return_negative(callee) or any(h in callee for h in NEGATIVE_RETURN_HINTS):
        kinds |= EventKind.NEG_CONST
    if ctx.may_return_zero(callee):
        kinds |= EventKind.ZERO_CONST
    return kinds


def _arg_kinds(args) -> EventKind:
    """Kinds from evaluating/binding call arguments: escapes and uses for
    variables, parameter-move constants (incl. NULL) for constants."""
    kinds = EventKind.NONE
    for arg in args:
        if isinstance(arg, Var):
            if isinstance(arg.type, PointerType):
                kinds |= EventKind.ESCAPE
            else:
                kinds |= EventKind.USE
        elif is_null_const(arg):
            kinds |= EventKind.ASSIGN_NULL
        elif isinstance(arg, Const):
            kinds |= _const_value_kinds(arg.value)
    return kinds


def _comparison_kinds(inst: BinOp) -> EventKind:
    """Kinds a branch on this comparison's result could later resolve to
    (``_branch_events`` in the analyzer): null tests for pointer-vs-zero
    comparisons, integer comparisons against constants otherwise."""
    operands = (inst.lhs, inst.rhs)
    consts = [op for op in operands if isinstance(op, Const)]
    variables = [op for op in operands if isinstance(op, Var)]
    if not consts or not variables:
        return EventKind.NONE
    const = consts[0]
    var = variables[0]
    if is_null_const(const) or (isinstance(var.type, PointerType) and const.value == 0):
        return EventKind.BRANCH_NULL
    if const.value == 0:
        return EventKind.CMP_ZERO
    return EventKind.CMP_CONST


def instruction_events(inst, ctx: ScanContext, result: ScanResult) -> None:
    """Fold one instruction's possible event kinds into ``result``."""
    kinds = EventKind.NONE
    if isinstance(inst, Move):
        if isinstance(inst.src, Var):
            kinds |= EventKind.USE
            if inst.dst.is_global:
                kinds |= EventKind.ESCAPE
        elif is_null_const(inst.src):
            kinds |= EventKind.ASSIGN_NULL
        elif isinstance(inst.src, Const):
            kinds |= _const_value_kinds(inst.src.value)
        if inst.dst.is_global or (isinstance(inst.src, Var) and inst.src.is_global):
            kinds |= EventKind.SHARED_ACCESS
    elif isinstance(inst, Load):
        # DerefEvent + LoadEvent; a Load is also the UVA region sink.
        # Loads read through a pointer, which may reach shared state.
        kinds |= EventKind.DEREF | EventKind.USE | EventKind.SHARED_ACCESS
    elif isinstance(inst, Store):
        kinds |= EventKind.DEREF | EventKind.STORE | EventKind.SHARED_ACCESS
        if isinstance(inst.src, Var):
            kinds |= EventKind.USE
            if isinstance(inst.src.type, PointerType):
                kinds |= EventKind.ESCAPE
        elif is_null_const(inst.src):
            kinds |= EventKind.ASSIGN_NULL
    elif isinstance(inst, Gep):
        kinds |= EventKind.DEREF
        if inst.index is not None:
            kinds |= EventKind.INDEX
            if isinstance(inst.index, Const) and inst.index.value < 0:
                kinds |= EventKind.NEG_CONST
    elif isinstance(inst, AddrOf):
        pass
    elif isinstance(inst, BinOp):
        for operand in (inst.lhs, inst.rhs):
            if isinstance(operand, Var):
                kinds |= EventKind.USE
                if operand.is_global:
                    kinds |= EventKind.SHARED_ACCESS
        if inst.op in ("div", "mod"):
            kinds |= EventKind.DIV
            if isinstance(inst.rhs, Const) and inst.rhs.value == 0:
                # A literal zero divisor reports at the DivEvent itself.
                kinds |= EventKind.ZERO_CONST
        if inst.op in _CMP_OPS:
            kinds |= _comparison_kinds(inst)
        # AssignConstEvent: folded value when both operands are constant,
        # and the sub-operator trigger the underflow checker keys on.
        kinds |= EventKind.ASSIGN_CONST
        if inst.op == "sub":
            kinds |= EventKind.NEG_CONST
        if isinstance(inst.lhs, Const) and isinstance(inst.rhs, Const):
            from ..smt.terms import _apply_op

            try:
                folded = _apply_op(inst.op, [inst.lhs.value, inst.rhs.value])
            except ValueError:
                folded = None
            if folded is not None:
                kinds |= _const_value_kinds(folded)
    elif isinstance(inst, UnOp):
        if isinstance(inst.src, Var):
            kinds |= EventKind.USE
            if inst.src.is_global:
                kinds |= EventKind.SHARED_ACCESS
        kinds |= EventKind.ASSIGN_CONST
        if isinstance(inst.src, Const) and inst.op == "neg":
            kinds |= _const_value_kinds(-inst.src.value)
    elif isinstance(inst, Malloc):
        kinds |= EventKind.ALLOC_HEAP
        if not inst.zeroed:
            kinds |= EventKind.ALLOC_UNINIT
    elif isinstance(inst, Alloc):
        if not inst.zeroed:
            kinds |= EventKind.ALLOC_UNINIT
    elif isinstance(inst, DeclLocal):
        kinds |= EventKind.DECL_LOCAL
    elif isinstance(inst, MemSet):
        kinds |= EventKind.DEREF | EventKind.MEM_INIT | EventKind.SHARED_ACCESS
    elif isinstance(inst, Free):
        kinds |= EventKind.FREE
    elif isinstance(inst, LockOp):
        kinds |= EventKind.LOCK
    elif isinstance(inst, Call):
        result.callees.append(inst.callee)
        # Havoc kinds: any call may be handled externally at run time.
        kinds |= EventKind.EXTERNAL_CALL | _arg_kinds(inst.args)
        if any(hint in inst.callee for hint in TAINT_SOURCE_HINTS):
            # The taint checker arms on both flavors of source call —
            # value-returning (``n = get_user()``) and out-buffer
            # (``copy_from_user(&req, ...)``, no dst) — so the bit is
            # independent of ``inst.dst``.
            kinds |= EventKind.TAINT_SOURCE
        if inst.dst is not None:
            kinds |= _call_return_kinds(inst.callee, ctx)
            if inst.dst.is_global:
                kinds |= EventKind.SHARED_ACCESS
        if any(isinstance(arg, Var) and arg.is_global for arg in inst.args):
            kinds |= EventKind.SHARED_ACCESS
        # A short argument list binds missing parameters to Const(0).
        kinds |= EventKind.ZERO_CONST | EventKind.ASSIGN_CONST
    elif isinstance(inst, CallIndirect):
        result.has_indirect_call = True
        kinds |= EventKind.EXTERNAL_CALL | _arg_kinds(inst.args)
        if inst.dst is not None:
            kinds |= EventKind.CALL_RETURN
            if inst.dst.is_global:
                kinds |= EventKind.SHARED_ACCESS
        if any(isinstance(arg, Var) and arg.is_global for arg in inst.args):
            kinds |= EventKind.SHARED_ACCESS
    result.events |= kinds


def _terminator_events(term) -> EventKind:
    kinds = EventKind.NONE
    if isinstance(term, Ret):
        kinds |= EventKind.RETURN
        value = term.value
        if isinstance(value, Var):
            kinds |= EventKind.USE | EventKind.ESCAPE
            if value.is_global:
                kinds |= EventKind.SHARED_ACCESS
        elif is_null_const(value):
            # The caller's return-value move assigns NULL.
            kinds |= EventKind.ASSIGN_NULL
        elif isinstance(value, Const):
            kinds |= _const_value_kinds(value.value)
    elif isinstance(term, (Branch, Jump)):
        pass
    return kinds


def block_events(block: BasicBlock, ctx: ScanContext) -> ScanResult:
    """Kinds (and call edges) one basic block can generate directly."""
    result = ScanResult()
    for inst in block.instructions:
        instruction_events(inst, ctx, result)
    if block.terminator is not None:
        result.events |= _terminator_events(block.terminator)
    return result


def function_direct_events(func: Function, ctx: ScanContext) -> ScanResult:
    """Kinds (and call edges) ``func``'s own body can generate, before
    closing over callees."""
    result = ScanResult()
    for block in func.blocks:
        block_result = block_events(block, ctx)
        result.events |= block_result.events
        result.callees.extend(block_result.callees)
        result.has_indirect_call = result.has_indirect_call or block_result.has_indirect_call
    return result
