"""Static per-instruction event scan — the bottom of the P1.5 summary.

Mirrors the event synthesis of :mod:`repro.core.analyzer` one abstract
level up: for every instruction the explorer could execute, compute the
set of :class:`~repro.presolve.events.EventKind` bits the corresponding
runtime events would fall under.  The scan is deliberately
flow-insensitive (a bag of kinds per block / per function); path
sensitivity is exactly what the expensive phase adds.

Call instructions contribute in two ways:

* a *call edge* for the summary fixpoint (the callee's transitive kinds
  flow into the caller), recorded by :func:`block_events` in
  ``ScanResult.callees``;
* their *havoc kinds* directly: any call — even to a defined function —
  may be handled externally at exploration time (inline depth exceeded,
  blocked recursion), in which case the explorer dispatches
  ``ExternalCallEvent``/``CallReturnEvent``/escapes instead of walking
  the body.  The scan therefore always includes those kinds, plus the
  ``NEG_CONST``/``ZERO_CONST`` triggers the underflow and division
  checkers derive from the collector's may-return facts and callee-name
  hints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from ..ir import (
    AddrOf,
    Alloc,
    BasicBlock,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    DeclLocal,
    Free,
    Function,
    Gep,
    Jump,
    Load,
    LockOp,
    Malloc,
    MemSet,
    Move,
    PointerType,
    Ret,
    Store,
    UnOp,
    Var,
    is_null_const,
)
from .events import NEGATIVE_RETURN_HINTS, TAINT_SOURCE_HINTS, EventKind

_CMP_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}


@dataclass
class ScanContext:
    """Program-level facts the scan consults for call instructions.

    ``may_return_negative``/``may_return_zero`` are the collector's
    closed return facts (:class:`~repro.core.collector.InformationCollector`);
    duck-typed callables so this package never imports :mod:`repro.core`.
    """

    may_return_negative: Callable[[str], bool] = lambda name: False
    may_return_zero: Callable[[str], bool] = lambda name: False


@dataclass
class ScanResult:
    """Kinds one block generates directly, plus its outgoing call edges."""

    events: EventKind = EventKind.NONE
    #: the same kinds as a plain-int bit mask — the form the summary
    #: fixpoint and the prune walks compute with (enum bit-ops route
    #: through ``Flag.__or__`` and are far slower than int ops)
    events_mask: int = 0
    #: names of directly called functions (fixpoint edges)
    callees: List[str] = field(default_factory=list)
    #: True when the block contains an indirect call (resolved separately)
    has_indirect_call: bool = False
    #: pointer names of Load/Store/MemSet instructions — the accesses
    #: whose SHARED_ACCESS kind is *conditional*: it applies only when
    #: the pointer may reach shared state.  Kept separate from ``events``
    #: so the P1.7 tier can sharpen it per entry closure; without a
    #: points-to answer every name here counts as shared-reaching
    #: (exactly the old unconditional bit).
    shared_ptrs: List[str] = field(default_factory=list)


# Plain-int mirrors of the EventKind bits.  ``enum.Flag`` bit-ops are
# slow in CPython (every ``|`` routes through ``Flag.__or__`` plus a
# ``__call__`` interning the result); the scan visits every instruction
# of the corpus, so the handlers below accumulate plain ints and convert
# to EventKind once per block through the small ``_as_kinds`` memo.
_USE = EventKind.USE.value
_ESCAPE = EventKind.ESCAPE.value
_ASSIGN_NULL = EventKind.ASSIGN_NULL.value
_ASSIGN_CONST = EventKind.ASSIGN_CONST.value
_NEG_CONST = EventKind.NEG_CONST.value
_ZERO_CONST = EventKind.ZERO_CONST.value
_DEREF = EventKind.DEREF.value
_STORE = EventKind.STORE.value
_INDEX = EventKind.INDEX.value
_ALLOC_HEAP = EventKind.ALLOC_HEAP.value
_ALLOC_UNINIT = EventKind.ALLOC_UNINIT.value
_DECL_LOCAL = EventKind.DECL_LOCAL.value
_MEM_INIT = EventKind.MEM_INIT.value
_FREE = EventKind.FREE.value
_LOCK = EventKind.LOCK.value
_EXTERNAL_CALL = EventKind.EXTERNAL_CALL.value
_CALL_RETURN = EventKind.CALL_RETURN.value
_TAINT_SOURCE = EventKind.TAINT_SOURCE.value
_SHARED_ACCESS = EventKind.SHARED_ACCESS.value
_RETURN = EventKind.RETURN.value
_BRANCH_NULL = EventKind.BRANCH_NULL.value
_CMP_ZERO = EventKind.CMP_ZERO.value
_CMP_CONST = EventKind.CMP_CONST.value
_DIV = EventKind.DIV.value

_KIND_MEMO = {0: EventKind.NONE}


def _as_kinds(mask: int) -> EventKind:
    kinds = _KIND_MEMO.get(mask)
    if kinds is None:
        kinds = EventKind(mask)
        _KIND_MEMO[mask] = kinds
    return kinds


def _const_value_mask(value: int) -> int:
    """Kinds of an ``AssignConstEvent`` carrying ``value``."""
    if value < 0:
        return _ASSIGN_CONST | _NEG_CONST
    if value == 0:
        return _ASSIGN_CONST | _ZERO_CONST
    return _ASSIGN_CONST


def _call_return_mask(callee: str, ctx: ScanContext) -> int:
    """Trigger kinds of a ``CallReturnEvent`` from ``callee`` — mirrors
    the underflow/div-zero checkers' CallReturn handling."""
    kinds = _CALL_RETURN
    if ctx.may_return_negative(callee) or any(h in callee for h in NEGATIVE_RETURN_HINTS):
        kinds |= _NEG_CONST
    if ctx.may_return_zero(callee):
        kinds |= _ZERO_CONST
    return kinds


def _arg_mask(args) -> int:
    """Kinds from evaluating/binding call arguments: escapes and uses for
    variables, parameter-move constants (incl. NULL) for constants."""
    kinds = 0
    for arg in args:
        if isinstance(arg, Var):
            if isinstance(arg.type, PointerType):
                kinds |= _ESCAPE
            else:
                kinds |= _USE
        elif is_null_const(arg):
            kinds |= _ASSIGN_NULL
        elif isinstance(arg, Const):
            kinds |= _const_value_mask(arg.value)
    return kinds


def _comparison_mask(inst: BinOp) -> int:
    """Kinds a branch on this comparison's result could later resolve to
    (``_branch_events`` in the analyzer): null tests for pointer-vs-zero
    comparisons, integer comparisons against constants otherwise."""
    operands = (inst.lhs, inst.rhs)
    consts = [op for op in operands if isinstance(op, Const)]
    variables = [op for op in operands if isinstance(op, Var)]
    if not consts or not variables:
        return 0
    const = consts[0]
    var = variables[0]
    if is_null_const(const) or (isinstance(var.type, PointerType) and const.value == 0):
        return _BRANCH_NULL
    if const.value == 0:
        return _CMP_ZERO
    return _CMP_CONST


def _scan_move(inst, ctx, result) -> int:
    src = inst.src
    if isinstance(src, Var):
        kinds = _USE
        if inst.dst.is_global:
            kinds |= _ESCAPE | _SHARED_ACCESS
        if src.is_global:
            kinds |= _SHARED_ACCESS
        return kinds
    if is_null_const(src):
        kinds = _ASSIGN_NULL
    elif isinstance(src, Const):
        kinds = _const_value_mask(src.value)
    else:
        kinds = 0
    if inst.dst.is_global:
        kinds |= _SHARED_ACCESS
    return kinds


def _scan_load(inst, ctx, result) -> int:
    # DerefEvent + LoadEvent; a Load is also the UVA region sink.
    # Loads read through a pointer, which may reach shared state.
    result.shared_ptrs.append(inst.ptr.name)
    return _DEREF | _USE


def _scan_store(inst, ctx, result) -> int:
    kinds = _DEREF | _STORE
    result.shared_ptrs.append(inst.ptr.name)
    src = inst.src
    if isinstance(src, Var):
        kinds |= _USE
        if isinstance(src.type, PointerType):
            kinds |= _ESCAPE
    elif is_null_const(src):
        kinds |= _ASSIGN_NULL
    return kinds


def _scan_gep(inst, ctx, result) -> int:
    kinds = _DEREF
    index = inst.index
    if index is not None:
        kinds |= _INDEX
        if isinstance(index, Const) and index.value < 0:
            kinds |= _NEG_CONST
    return kinds


def _scan_addr_of(inst, ctx, result) -> int:
    return 0


def _scan_binop(inst, ctx, result) -> int:
    # AssignConstEvent is unconditional: folded value when both operands
    # are constant, and the sub-operator trigger the underflow checker
    # keys on.
    kinds = _ASSIGN_CONST
    lhs = inst.lhs
    rhs = inst.rhs
    for operand in (lhs, rhs):
        if isinstance(operand, Var):
            kinds |= _USE
            if operand.is_global:
                kinds |= _SHARED_ACCESS
    op = inst.op
    if op in ("div", "mod"):
        kinds |= _DIV
        if isinstance(rhs, Const) and rhs.value == 0:
            # A literal zero divisor reports at the DivEvent itself.
            kinds |= _ZERO_CONST
    if op in _CMP_OPS:
        kinds |= _comparison_mask(inst)
    if op == "sub":
        kinds |= _NEG_CONST
    if isinstance(lhs, Const) and isinstance(rhs, Const):
        from ..smt.terms import _apply_op

        try:
            folded = _apply_op(op, [lhs.value, rhs.value])
        except ValueError:
            folded = None
        if folded is not None:
            kinds |= _const_value_mask(folded)
    return kinds


def _scan_unop(inst, ctx, result) -> int:
    kinds = _ASSIGN_CONST
    src = inst.src
    if isinstance(src, Var):
        kinds |= _USE
        if src.is_global:
            kinds |= _SHARED_ACCESS
    elif isinstance(src, Const) and inst.op == "neg":
        kinds |= _const_value_mask(-src.value)
    return kinds


def _scan_malloc(inst, ctx, result) -> int:
    if inst.zeroed:
        return _ALLOC_HEAP
    return _ALLOC_HEAP | _ALLOC_UNINIT


def _scan_alloc(inst, ctx, result) -> int:
    if inst.zeroed:
        return 0
    return _ALLOC_UNINIT


def _scan_decl_local(inst, ctx, result) -> int:
    return _DECL_LOCAL


def _scan_memset(inst, ctx, result) -> int:
    result.shared_ptrs.append(inst.ptr.name)
    return _DEREF | _MEM_INIT


def _scan_free(inst, ctx, result) -> int:
    return _FREE


def _scan_lock(inst, ctx, result) -> int:
    return _LOCK


def _scan_call(inst, ctx, result) -> int:
    callee = inst.callee
    result.callees.append(callee)
    # Havoc kinds: any call may be handled externally at run time.  A
    # short argument list binds missing parameters to Const(0).
    kinds = _EXTERNAL_CALL | _ZERO_CONST | _ASSIGN_CONST | _arg_mask(inst.args)
    if any(hint in callee for hint in TAINT_SOURCE_HINTS):
        # The taint checker arms on both flavors of source call —
        # value-returning (``n = get_user()``) and out-buffer
        # (``copy_from_user(&req, ...)``, no dst) — so the bit is
        # independent of ``inst.dst``.
        kinds |= _TAINT_SOURCE
    if inst.dst is not None:
        kinds |= _call_return_mask(callee, ctx)
        if inst.dst.is_global:
            kinds |= _SHARED_ACCESS
    if any(isinstance(arg, Var) and arg.is_global for arg in inst.args):
        kinds |= _SHARED_ACCESS
    return kinds


def _scan_call_indirect(inst, ctx, result) -> int:
    result.has_indirect_call = True
    kinds = _EXTERNAL_CALL | _arg_mask(inst.args)
    if inst.dst is not None:
        kinds |= _CALL_RETURN
        if inst.dst.is_global:
            kinds |= _SHARED_ACCESS
    if any(isinstance(arg, Var) and arg.is_global for arg in inst.args):
        kinds |= _SHARED_ACCESS
    return kinds


#: exact-type dispatch for the hot scan loop; instruction subclasses not
#: listed here fall back to the ordered isinstance walk below
_SCAN_DISPATCH = {
    Move: _scan_move,
    Load: _scan_load,
    Store: _scan_store,
    Gep: _scan_gep,
    AddrOf: _scan_addr_of,
    BinOp: _scan_binop,
    UnOp: _scan_unop,
    Malloc: _scan_malloc,
    Alloc: _scan_alloc,
    DeclLocal: _scan_decl_local,
    MemSet: _scan_memset,
    Free: _scan_free,
    LockOp: _scan_lock,
    Call: _scan_call,
    CallIndirect: _scan_call_indirect,
}

#: same handlers in the match order of the original isinstance chain
_SCAN_FALLBACK_ORDER = tuple(_SCAN_DISPATCH.items())


def _scan_fallback(inst, ctx, result) -> int:
    for cls, handler in _SCAN_FALLBACK_ORDER:
        if isinstance(inst, cls):
            return handler(inst, ctx, result)
    return 0


def instruction_events(inst, ctx: ScanContext, result: ScanResult) -> None:
    """Fold one instruction's possible event kinds into ``result``."""
    handler = _SCAN_DISPATCH.get(inst.__class__, _scan_fallback)
    mask = handler(inst, ctx, result)
    if mask:
        result.events_mask |= mask
        result.events = _as_kinds(result.events_mask)


def _terminator_mask(term) -> int:
    if isinstance(term, Ret):
        kinds = _RETURN
        value = term.value
        if isinstance(value, Var):
            kinds |= _USE | _ESCAPE
            if value.is_global:
                kinds |= _SHARED_ACCESS
        elif is_null_const(value):
            # The caller's return-value move assigns NULL.
            kinds |= _ASSIGN_NULL
        elif isinstance(value, Const):
            kinds |= _const_value_mask(value.value)
        return kinds
    # Branch/Jump terminators generate no events of their own.
    return 0


def block_events(block: BasicBlock, ctx: ScanContext) -> ScanResult:
    """Kinds (and call edges) one basic block can generate directly.

    ``result.events`` excludes the pointer-conditional SHARED_ACCESS bit;
    consumers fold it back via ``result.shared_ptrs`` (unconditionally,
    or filtered by a shared-reaching predicate — see
    :meth:`~repro.presolve.summary.EventSummaryIndex.region_events`).
    """
    result = ScanResult()
    dispatch = _SCAN_DISPATCH
    mask = 0
    for inst in block.instructions:
        handler = dispatch.get(inst.__class__)
        if handler is None:
            handler = _scan_fallback
        mask |= handler(inst, ctx, result)
    if block.terminator is not None:
        mask |= _terminator_mask(block.terminator)
    result.events_mask = mask
    result.events = _as_kinds(mask)
    return result


def function_direct_events(func: Function, ctx: ScanContext) -> ScanResult:
    """Kinds (and call edges) ``func``'s own body can generate, before
    closing over callees."""
    result = ScanResult()
    mask = 0
    for block in func.blocks:
        block_result = block_events(block, ctx)
        mask |= block_result.events_mask
        result.callees.extend(block_result.callees)
        result.has_indirect_call = result.has_indirect_call or block_result.has_indirect_call
        result.shared_ptrs.extend(block_result.shared_ptrs)
    result.events_mask = mask
    result.events = _as_kinds(mask)
    return result
