"""The two sound pruning layers built on the P1.5 event summaries.

**Entry pruning.**  A checker can report inside an entry's exploration
only if (a) some *trigger* kind — an event that can establish reportable
state — occurs somewhere in the entry's transitive region, and (b) some
*sink* kind — an event at which the checker invokes ``report`` — occurs
there too.  Both conditions are one mask intersection against the
entry's region summary.  An entry where no enabled checker passes both
is skipped outright: its exploration dispatches no event any checker
could react to with a report, so skipping it preserves the report set
exactly.

**Block pruning.**  Within an analyzed entry, a path that enters a basic
block from which no *armed* checker's sink is reachable (through the
entry function's CFG, counting events of inlined callee regions at their
call sites, and ``Ret`` terminators as the memory-leak sweep's sink)
cannot produce any further report: reports only fire at sink events, and
none lies ahead.  The explorer abandons such a path.  State the pruned
suffix would have established or cleared is irrelevant — it could only
have influenced later sink events, of which there are none — and the
surviving prefix dispatched exactly the events it always did, so
report-order and dedup behaviour are byte-identical to the unpruned run.

A checker that does not declare its event kinds (``trigger_events`` or
``sink_events`` left empty, e.g. a user-supplied custom checker) makes
both layers shut off: the pre-analysis cannot reason about what such a
checker reacts to, so it conservatively deems everything relevant.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..ir import Function, Program, Ret
from .events import EventKind
from .scan import ScanContext, block_events
from .summary import EventSummaryIndex

_EMPTY: FrozenSet[int] = frozenset()


class RelevancePreAnalysis:
    """Checker-relevance pre-analysis over one program (phase P1.5).

    ``checkers`` are the live checker objects the explorer will run;
    their declarative ``trigger_events``/``sink_events`` masks drive both
    pruning layers.  ``scan_ctx`` carries the collector's may-return
    facts (see :class:`~repro.presolve.scan.ScanContext`).
    """

    def __init__(
        self,
        program: Program,
        checkers: Sequence,
        scan_ctx: Optional[ScanContext] = None,
        resolve_function_pointers: bool = False,
    ):
        self.program = program
        self.checkers = list(checkers)
        self.scan_ctx = scan_ctx or ScanContext()
        self.index = EventSummaryIndex(
            program,
            scan_ctx=self.scan_ctx,
            resolve_function_pointers=resolve_function_pointers,
        )
        #: pruning is sound only when every enabled checker declares its
        #: trigger and sink kinds; one undeclared checker disables both layers
        self.supported = bool(self.checkers) and all(
            getattr(c, "trigger_events", EventKind.NONE) != EventKind.NONE
            and getattr(c, "sink_events", EventKind.NONE) != EventKind.NONE
            for c in self.checkers
        )
        self._dead_blocks: Dict[str, FrozenSet[int]] = {}

    # -- entry pruning -------------------------------------------------------

    def armed_checkers(self, entry: Function) -> List:
        """Enabled checkers whose trigger *and* sink kinds both occur in
        ``entry``'s transitive region."""
        region = self.index.region_events(entry.name)
        return [
            c
            for c in self.checkers
            if (region & c.trigger_events) and (region & c.sink_events)
        ]

    def is_entry_relevant(self, entry: Function) -> bool:
        if not self.supported:
            return True
        return bool(self.armed_checkers(entry))

    def partition_entries(
        self, entries: Sequence[Function]
    ) -> Tuple[List[Function], List[str]]:
        """Split the entry list into (kept, skipped-names), preserving order."""
        if not self.supported:
            return list(entries), []
        kept: List[Function] = []
        skipped: List[str] = []
        for entry in entries:
            if self.is_entry_relevant(entry):
                kept.append(entry)
            else:
                skipped.append(entry.name)
        return kept, skipped

    # -- block pruning -------------------------------------------------------

    def _armed_sink_mask(self, entry: Function) -> EventKind:
        mask = EventKind.NONE
        for checker in self.armed_checkers(entry):
            mask |= checker.sink_events
        return mask

    def dead_blocks(self, entry: Function) -> FrozenSet[int]:
        """Uids of ``entry``'s blocks from which no armed sink is
        reachable — entering one ends the path without loss of reports.
        Cached per function name (summaries are program-wide facts)."""
        if not self.supported:
            return _EMPTY
        cached = self._dead_blocks.get(entry.name)
        if cached is not None:
            return cached
        dead = self._compute_dead_blocks(entry)
        self._dead_blocks[entry.name] = dead
        return dead

    def _compute_dead_blocks(self, entry: Function) -> FrozenSet[int]:
        sinks = self._armed_sink_mask(entry)
        if sinks == EventKind.NONE:
            # Entry pruning already skips these; if explored anyway
            # (escape hatch, direct calls), every block is prunable —
            # but keep the walk intact rather than contradict the caller.
            return _EMPTY
        blocks = entry.blocks
        generates: Dict[int, EventKind] = {}
        for block in blocks:
            result = block_events(block, self.scan_ctx)
            mask = result.events
            for callee in result.callees:
                mask |= self.index.callee_region_events(callee)
            if result.has_indirect_call:
                mask |= self.index.indirect_pool
            generates[block.uid] = mask

        # Backward reachability of sink-generating blocks: iterate to a
        # fixpoint (CFGs are small; reverse block order converges fast).
        live: Dict[int, bool] = {
            block.uid: bool(generates[block.uid] & sinks) for block in blocks
        }
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                if live[block.uid]:
                    continue
                if any(live.get(succ.uid, False) for succ in block.successors()):
                    live[block.uid] = True
                    changed = True
        return frozenset(block.uid for block in blocks if not live[block.uid])
