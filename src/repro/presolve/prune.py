"""The two sound pruning layers built on the P1.5 event summaries.

**Entry pruning.**  A checker can report inside an entry's exploration
only if (a) some *trigger* kind — an event that can establish reportable
state — occurs somewhere in the entry's transitive region, and (b) some
*sink* kind — an event at which the checker invokes ``report`` — occurs
there too.  Both conditions are one mask intersection against the
entry's region summary.  An entry where no enabled checker passes both
is skipped outright: its exploration dispatches no event any checker
could react to with a report, so skipping it preserves the report set
exactly.

**Block pruning.**  Within an analyzed entry, a path that enters a basic
block from which no *armed* checker's sink is reachable (through the
entry function's CFG, counting events of inlined callee regions at their
call sites, and ``Ret`` terminators as the memory-leak sweep's sink)
cannot produce any further report: reports only fire at sink events, and
none lies ahead.  The explorer abandons such a path.  State the pruned
suffix would have established or cleared is irrelevant — it could only
have influenced later sink events, of which there are none — and the
surviving prefix dispatched exactly the events it always did, so
report-order and dedup behaviour are byte-identical to the unpruned run.

A checker that does not declare its event kinds (``trigger_events`` or
``sink_events`` left empty, e.g. a user-supplied custom checker) makes
both layers shut off: the pre-analysis cannot reason about what such a
checker reacts to, so it conservatively deems everything relevant.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..ir import Function, Program, Ret
from .events import EventKind
from .scan import ScanContext
from .summary import EventSummaryIndex

_EMPTY: FrozenSet[int] = frozenset()
_SHARED = EventKind.SHARED_ACCESS.value
_TAINT = EventKind.TAINT_SOURCE.value


class RelevancePreAnalysis:
    """Checker-relevance pre-analysis over one program (phase P1.5).

    ``checkers`` are the live checker objects the explorer will run;
    their declarative ``trigger_events``/``sink_events`` masks drive both
    pruning layers.  ``scan_ctx`` carries the collector's may-return
    facts (see :class:`~repro.presolve.scan.ScanContext`).
    """

    def __init__(
        self,
        program: Program,
        checkers: Sequence,
        scan_ctx: Optional[ScanContext] = None,
        resolve_function_pointers: bool = False,
        sharpen_shared: bool = False,
        sharpen_taint: bool = False,
    ):
        self.program = program
        self.checkers = list(checkers)
        self.scan_ctx = scan_ctx or ScanContext()
        self.index = EventSummaryIndex(
            program,
            scan_ctx=self.scan_ctx,
            resolve_function_pointers=resolve_function_pointers,
        )
        #: P1.7 sharpening: intersect pointer-access relevance with the
        #: entry closure's shared-reaching cells (see module docstring of
        #: :mod:`repro.pointsto.steensgaard`).  Computed *per entry
        #: closure* — never from the whole-program partition — so every
        #: mask stays a pure function of the entry's transitive closure,
        #: which is exactly what the incremental mask cache keys on.
        self.sharpen_shared = sharpen_shared
        #: P1.8 sharpening: clear TAINT_SOURCE from an entry's region
        #: when the closure-local must-not-alias solve proves no taint
        #: source can flow to any taint sink there (see
        #: :func:`repro.pointsto.flow_tier.taint_flow_possible`).  Same
        #: purity contract as ``sharpen_shared``: solved per entry
        #: closure, never from whole-program state.
        self.sharpen_taint = sharpen_taint
        #: pruning is sound only when every enabled checker declares its
        #: trigger and sink kinds; one undeclared checker disables both layers
        self.supported = bool(self.checkers) and all(
            getattr(c, "trigger_events", EventKind.NONE) != EventKind.NONE
            and getattr(c, "sink_events", EventKind.NONE) != EventKind.NONE
            for c in self.checkers
        )
        #: per-checker (checker, trigger, sink) with the masks as plain
        #: ints — the arming test runs per entry per checker and enum
        #: bit-ops are slow
        self._checker_masks = [
            (
                c,
                int(getattr(c, "trigger_events", EventKind.NONE)),
                int(getattr(c, "sink_events", EventKind.NONE)),
            )
            for c in self.checkers
        ]
        #: (trigger, sink) int masks of checkers whose arming can hinge
        #: on the SHARED_ACCESS bit at all — only their (trigger | sink)
        #: masks contain it.  For any other checker the sharpened and
        #: unconditional arming answers are equal by construction, so
        #: with this list empty (no race-style checker enabled) the
        #: per-entry ``depends`` test in :meth:`armed_checkers`
        #: short-circuits without any mask work.
        self._shared_sensitive = [
            (trigger, sink)
            for _, trigger, sink in self._checker_masks
            if (trigger | sink) & _SHARED
        ]
        #: (trigger, sink) masks of checkers whose arming can hinge on
        #: the TAINT_SOURCE bit — empty (no taint-style checker with
        #: hint-covered sources) short-circuits the sharpening entirely
        self._taint_sensitive = [
            (trigger, sink)
            for _, trigger, sink in self._checker_masks
            if (trigger | sink) & _TAINT
        ]
        self._dead_blocks: Dict[str, FrozenSet[int]] = {}
        self._closures: Dict[str, FrozenSet[str]] = {}
        self._shared_by_closure: Dict[FrozenSet[str], FrozenSet[str]] = {}
        self._shared_by_entry: Dict[str, FrozenSet[str]] = {}
        self._taint_by_closure: Dict[FrozenSet[str], bool] = {}
        self._taint_by_entry: Dict[str, bool] = {}
        self._function_index: Optional[Dict[str, Function]] = None
        self._armed: Dict[str, List] = {}
        self._armed_names: Dict[str, FrozenSet[str]] = {}

    # -- P1.7 sharpening -----------------------------------------------------

    def _entry_closure(self, entry: Function) -> FrozenSet[str]:
        """Defined functions the explorer can reach from ``entry`` —
        direct call edges plus, behind an indirect call with resolution
        enabled, every registered function (the engine's per-site
        resolution picks a subset of those)."""
        cached = self._closures.get(entry.name)
        if cached is not None:
            return cached
        names = {entry.name}
        work = [entry.name]
        pool_added = False
        while work:
            result = self.index.direct.get(work.pop())
            if result is None:
                continue
            for callee in result.callees:
                if callee in self.index.direct and callee not in names:
                    names.add(callee)
                    work.append(callee)
            if (
                result.has_indirect_call
                and self.index.resolve_function_pointers
                and not pool_added
            ):
                pool_added = True
                for reg in self.program.registrations():
                    if reg.function in self.index.direct and reg.function not in names:
                        names.add(reg.function)
                        work.append(reg.function)
        closure = frozenset(names)
        self._closures[entry.name] = closure
        return closure

    def _reaches_shared(self, entry: Function):
        """The per-entry shared-reaching predicate for mask queries, or
        None when sharpening is off (= every pointer counts).  Memoized
        twice: per entry name (the hot path — every mask query re-asks)
        and per closure set (entries sharing a helper subtree share one
        unification solve)."""
        if not self.sharpen_shared:
            return None
        shared = self._shared_by_entry.get(entry.name)
        if shared is None:
            closure = self._entry_closure(entry)
            shared = self._shared_by_closure.get(closure)
            if shared is None:
                from ..pointsto.steensgaard import shared_reaching_names

                if self._function_index is None:
                    self._function_index = {
                        func.name: func for func in self.program.functions()
                    }
                functions = [
                    self._function_index[name]
                    for name in closure
                    if name in self._function_index
                ]
                shared = shared_reaching_names(self.program, functions)
                self._shared_by_closure[closure] = shared
            self._shared_by_entry[entry.name] = shared
        return shared.__contains__

    def _taint_possible(self, entry: Function) -> bool:
        """Whether any taint source can reach any taint sink within
        ``entry``'s closure — memoized per entry name and per closure
        like :meth:`_reaches_shared`, and a pure function of the closure
        contents (the cached-mask contract)."""
        possible = self._taint_by_entry.get(entry.name)
        if possible is None:
            closure = self._entry_closure(entry)
            possible = self._taint_by_closure.get(closure)
            if possible is None:
                from ..pointsto.flow_tier import taint_flow_possible

                if self._function_index is None:
                    self._function_index = {
                        func.name: func for func in self.program.functions()
                    }
                functions = [
                    self._function_index[name]
                    for name in closure
                    if name in self._function_index
                ]
                possible = taint_flow_possible(self.program, functions)
                self._taint_by_closure[closure] = possible
            self._taint_by_entry[entry.name] = possible
        return possible

    # -- entry pruning -------------------------------------------------------

    def armed_checkers(self, entry: Function) -> List:
        """Enabled checkers whose trigger *and* sink kinds both occur in
        ``entry``'s transitive region.  Memoized per entry — the explorer
        asks once per entry, the block walk once per block batch.

        The P1.7 closure solve is lazy: sharpening can only *remove* the
        SHARED_ACCESS bit, so it runs only when some checker's arming
        actually hinges on that bit — with no race-style checker enabled
        the sharpened answer is the unconditional one and no unification
        happens at all."""
        cached = self._armed.get(entry.name)
        if cached is not None:
            return cached
        region = self.index.region_events_mask(entry.name)
        if self.sharpen_shared and self._shared_sensitive and (region & _SHARED):
            without = region & ~_SHARED
            depends = any(
                (region & trigger)
                and (region & sink)
                and not ((without & trigger) and (without & sink))
                for trigger, sink in self._shared_sensitive
            )
            if depends:
                region = self.index.region_events_mask(
                    entry.name, self._reaches_shared(entry)
                )
        if self.sharpen_taint and self._taint_sensitive and (region & _TAINT):
            without = region & ~_TAINT
            depends = any(
                (region & trigger)
                and (region & sink)
                and not ((without & trigger) and (without & sink))
                for trigger, sink in self._taint_sensitive
            )
            if depends and not self._taint_possible(entry):
                # Must-not-alias proof: no source value can ever reach a
                # sink in this closure, so the taint checker cannot
                # report here — disarming it is report-preserving.
                region = without
        armed = [
            c
            for c, trigger, sink in self._checker_masks
            if (region & trigger) and (region & sink)
        ]
        self._armed[entry.name] = armed
        return armed

    def armed_names(self, entry: Function) -> Optional[FrozenSet[str]]:
        """Names of the armed checkers, for the explorer's per-entry
        dispatch restriction — or None when pruning is unsupported (an
        undeclared checker means nothing can be soundly filtered)."""
        if not self.supported:
            return None
        names = self._armed_names.get(entry.name)
        if names is None:
            names = frozenset(c.name for c in self.armed_checkers(entry))
            self._armed_names[entry.name] = names
        return names

    def is_entry_relevant(self, entry: Function) -> bool:
        if not self.supported:
            return True
        return bool(self.armed_checkers(entry))

    def partition_entries(
        self, entries: Sequence[Function]
    ) -> Tuple[List[Function], List[str]]:
        """Split the entry list into (kept, skipped-names), preserving order."""
        if not self.supported:
            return list(entries), []
        kept: List[Function] = []
        skipped: List[str] = []
        for entry in entries:
            if self.is_entry_relevant(entry):
                kept.append(entry)
            else:
                skipped.append(entry.name)
        return kept, skipped

    # -- block pruning -------------------------------------------------------

    def _armed_sink_mask(self, entry: Function) -> int:
        mask = 0
        for checker in self.armed_checkers(entry):
            mask |= int(checker.sink_events)
        return mask

    def dead_blocks(self, entry: Function) -> FrozenSet[int]:
        """Uids of ``entry``'s blocks from which no armed sink is
        reachable — entering one ends the path without loss of reports.
        Cached per function name (summaries are program-wide facts)."""
        if not self.supported:
            return _EMPTY
        cached = self._dead_blocks.get(entry.name)
        if cached is not None:
            return cached
        dead = self._compute_dead_blocks(entry)
        self._dead_blocks[entry.name] = dead
        return dead

    def _compute_dead_blocks(self, entry: Function) -> FrozenSet[int]:
        sinks = self._armed_sink_mask(entry)
        if sinks == 0:
            # Entry pruning already skips these; if explored anyway
            # (escape hatch, direct calls), every block is prunable —
            # but keep the walk intact rather than contradict the caller.
            return _EMPTY
        # Per-block SHARED_ACCESS restoration needs the closure predicate
        # only when an armed sink actually includes that bit (only
        # race-style checkers sink there); everything else is decided by
        # the other bits, identically with or without the solve.
        reaches = self._reaches_shared(entry) if sinks & _SHARED else None
        blocks = entry.blocks
        generates: Dict[int, int] = {}
        index = self.index
        callee_memo: Dict[str, int] = {}
        for block in blocks:
            result = index.block_result(block)
            mask = result.events_mask
            # _restore_shared, open-coded on the raw pointer list — the
            # per-block frozenset it would build is pure overhead here
            if result.shared_ptrs and (
                reaches is None or any(reaches(p) for p in result.shared_ptrs)
            ):
                mask |= _SHARED
            for callee in result.callees:
                callee_mask = callee_memo.get(callee)
                if callee_mask is None:
                    callee_mask = index.callee_region_events_mask(callee, reaches)
                    callee_memo[callee] = callee_mask
                mask |= callee_mask
            if result.has_indirect_call:
                mask |= index.pool_events_mask(reaches)
            generates[block.uid] = mask

        # Backward reachability of sink-generating blocks: iterate to a
        # fixpoint (CFGs are small; reverse block order converges fast).
        live: Dict[int, bool] = {
            block.uid: bool(generates[block.uid] & sinks) for block in blocks
        }
        changed = True
        while changed:
            changed = False
            for block in reversed(blocks):
                if live[block.uid]:
                    continue
                if any(live.get(succ.uid, False) for succ in block.successors()):
                    live[block.uid] = True
                    changed = True
        return frozenset(block.uid for block in blocks if not live[block.uid])
