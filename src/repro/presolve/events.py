"""The typestate-event vocabulary of the relevance pre-analysis (P1.5).

The path explorer (P2) synthesizes rich, value-carrying events
(:mod:`repro.typestate.events`).  The pre-analysis only needs to know
*which kinds* of event a piece of code can possibly trigger, so it
abstracts each runtime event class to one bit of an :class:`EventKind`
mask.  A function's *event summary* is the union of the kinds its
instructions can generate, closed over the call graph; checkers declare
which kinds can arm them (``trigger_events``) and which kinds their
reports fire at (``sink_events``), and the pruning layers intersect the
two (see :mod:`repro.presolve.prune`).

The abstraction must *over*-approximate: for every runtime event the
explorer can dispatch while walking code, the static scan of that code
must set the corresponding bit.  Missing a bit could prune a path that
would have reported a bug; setting a spurious bit only costs precision.
"""

from __future__ import annotations

from enum import IntFlag
from typing import Iterator, List


class EventKind(IntFlag):
    """One bit per abstract typestate-event kind.

    The mapping from runtime event classes (and the instructions that
    produce them) to kinds lives in :mod:`repro.presolve.scan`.
    """

    NONE = 0
    #: a pointer receives the null constant (Move/Store of NULL, a null
    #: argument bound to a parameter, a callee returning NULL)
    ASSIGN_NULL = 1 << 0
    #: a branch may resolve a null test of a pointer
    BRANCH_NULL = 1 << 1
    #: a pointer is dereferenced (Load/Store/MemSet through it, field access)
    DEREF = 1 << 2
    #: a heap object comes into existence (malloc-family)
    ALLOC_HEAP = 1 << 3
    #: an *uninitialized* object comes into existence (non-zeroed
    #: Alloc/Malloc — the UVA region trigger)
    ALLOC_UNINIT = 1 << 4
    #: an uninitialized scalar local is declared
    DECL_LOCAL = 1 << 5
    #: a variable or memory region is read (operand use, Load)
    USE = 1 << 6
    #: a heap object is released
    FREE = 1 << 7
    #: a lock is acquired or released
    LOCK = 1 << 8
    #: an integer division or modulo executes
    DIV = 1 << 9
    #: an array element is indexed
    INDEX = 1 << 10
    #: a variable receives a definitely-negative value (negative constant,
    #: a subtraction result, or the return of a may-return-negative callee)
    NEG_CONST = 1 << 11
    #: a variable receives a possibly-zero value (zero constant or the
    #: return of a may-return-zero callee)
    ZERO_CONST = 1 << 12
    #: a variable receives some statically known constant (any value)
    ASSIGN_CONST = 1 << 13
    #: a branch may resolve an integer comparison against zero
    CMP_ZERO = 1 << 14
    #: a branch may resolve an integer comparison against a nonzero constant
    CMP_CONST = 1 << 15
    #: a store writes through a pointer (UVA region initialization)
    STORE = 1 << 16
    #: memset/memcpy initializes a region
    MEM_INIT = 1 << 17
    #: a pointer escapes the analyzed scope
    ESCAPE = 1 << 18
    #: a call is handled externally (unknown callee, exceeded inline
    #: depth, blocked recursion, unresolved function pointer)
    EXTERNAL_CALL = 1 << 19
    #: an externally-handled call defines its destination with an
    #: arbitrary value
    CALL_RETURN = 1 << 20
    #: a function frame returns (where the memory-leak sweep fires)
    RETURN = 1 << 21
    #: a call to a user-input intrinsic (a taint source by callee name)
    TAINT_SOURCE = 1 << 22
    #: a read or write that may touch *shared* state — a global variable,
    #: or memory reached through a pointer (which may alias an escaped
    #: heap object).  The race checker records accesses only at these.
    SHARED_ACCESS = 1 << 23


#: every kind a function could possibly generate
ALL_EVENTS: EventKind = EventKind(
    (max(kind.value for kind in EventKind) << 1) - 1
)

#: callee-name substrings treated as may-return-negative even for
#: unknown externals.  Lives here (the dependency leaf) so both the
#: underflow checker and the P1.5 scan key on the same list.
NEGATIVE_RETURN_HINTS = ("find", "lookup", "index", "search", "get_id", "probe_id")

#: callee-name substrings treated as user-input sources (the
#: ``copy_from_user`` family).  Lives here (the dependency leaf) so the
#: taint checker's default :class:`~repro.taint.TaintSpec`, the SMT
#: translator's source havoc and the P1.5 scan all key on the same list;
#: a custom spec whose source names are not covered by these substrings
#: conservatively disables TAINT_SOURCE-based pruning (see
#: :meth:`repro.taint.TaintSpec.covered_by_hints`).
TAINT_SOURCE_HINTS = ("from_user", "get_user", "read_user", "recv_from", "user_input")


def event_names(mask: int) -> List[str]:
    """Sorted member names present in ``mask`` — for stats and debugging."""
    return [kind.name for kind in iter_kinds(mask)]


def iter_kinds(mask: int) -> Iterator[EventKind]:
    """The individual :class:`EventKind` members set in ``mask``."""
    for kind in EventKind:
        if kind is EventKind.NONE:
            continue
        if mask & kind:
            yield kind
