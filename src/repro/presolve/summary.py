"""Per-function typestate-event summaries and their call-graph fixpoint.

``EventSummaryIndex`` computes, for every defined function, the set of
event kinds the function can trigger *directly* (its own instructions,
:mod:`repro.presolve.scan`) and *transitively* (closing the direct sets
over the call graph with a worklist fixpoint).  The lattice is the
powerset of :class:`~repro.presolve.events.EventKind` ordered by
inclusion — finite height, monotone union transfer, so the fixpoint
terminates in at most ``|kinds| × |functions|`` edge relaxations.

Call edges:

* **direct calls** — an edge to the callee by name; calls to *unknown*
  functions (no definition in the program) have no body to summarize,
  and their havoc kinds are already part of the caller's direct set;
* **indirect calls** — when the engine is configured to resolve function
  pointers, any function registered to an interface slot may be invoked,
  so an indirect call site conservatively links to *every* registered
  function (the engine's per-site (struct, field) resolution can only
  pick a subset of those).  With resolution off the engine havocs the
  call, which the direct scan already covers.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set

from ..ir import Function, Program
from .events import EventKind
from .scan import ScanContext, ScanResult, _as_kinds, block_events

_EMPTY_NAMES: FrozenSet[str] = frozenset()
_SHARED = EventKind.SHARED_ACCESS.value


class EventSummaryIndex:
    """Direct and transitive event summaries for one program.

    ``registered_functions`` are the possible indirect-call targets
    (interface registrations); only consulted when
    ``resolve_function_pointers`` is True, matching the engine.
    """

    def __init__(
        self,
        program: Program,
        scan_ctx: Optional[ScanContext] = None,
        resolve_function_pointers: bool = False,
    ):
        self.program = program
        self.scan_ctx = scan_ctx or ScanContext()
        self.resolve_function_pointers = resolve_function_pointers
        #: per-function direct scan results (events + call edges)
        self.direct: Dict[str, ScanResult] = {}
        #: per-function transitive event masks (the fixpoint), as plain
        #: int bit masks.  NOTE: excludes the pointer-conditional
        #: SHARED_ACCESS bit; query methods fold it back from
        #: ``_trans_ptrs`` (see :meth:`region_events`).
        self.transitive: Dict[str, int] = {}
        #: per-function transitive pointer names of Load/Store/MemSet
        #: accesses — the conditional SHARED_ACCESS contributors
        self._trans_ptrs: Dict[str, FrozenSet[str]] = {}
        #: per-block direct scan results, keyed by block uid.  The P1.5
        #: dead-block walk re-reads the same per-block kinds the summary
        #: build already computed; sharing the ScanResult (it is never
        #: mutated after construction) avoids a second instruction scan
        #: over every analyzed entry.
        self.block_results: Dict[int, ScanResult] = {}
        self._build()

    # -- construction --------------------------------------------------------

    def block_result(self, block) -> ScanResult:
        """The cached direct scan of one block (computing and caching it
        on first sight — entries outside the program walk, e.g. direct
        ``analyze(entries=...)`` calls, still resolve)."""
        result = self.block_results.get(block.uid)
        if result is None:
            result = block_events(block, self.scan_ctx)
            self.block_results[block.uid] = result
        return result

    def _function_events(self, func: Function) -> ScanResult:
        """Like :func:`~repro.presolve.scan.function_direct_events`, but
        populating the per-block cache as it goes."""
        result = ScanResult()
        mask = 0
        for block in func.blocks:
            block_result = self.block_result(block)
            mask |= block_result.events_mask
            result.callees.extend(block_result.callees)
            result.has_indirect_call = (
                result.has_indirect_call or block_result.has_indirect_call
            )
            result.shared_ptrs.extend(block_result.shared_ptrs)
        result.events_mask = mask
        result.events = _as_kinds(mask)
        return result

    def _build(self) -> None:
        functions: List[Function] = list(self.program.functions())
        for func in functions:
            self.direct[func.name] = self._function_events(func)

        indirect_pool = 0
        registered: Set[str] = set()
        if self.resolve_function_pointers:
            registered = {
                reg.function
                for reg in self.program.registrations()
                if self.program.lookup(reg.function) is not None
            }

        # Reverse edges: callee -> callers, to relax only affected nodes.
        # Direct pointer sets are frozen once here — the fixpoint below
        # re-reads them every relaxation.
        callers: Dict[str, List[str]] = {}
        direct_ptrs: Dict[str, FrozenSet[str]] = {}
        for name, result in self.direct.items():
            self.transitive[name] = result.events_mask
            direct_ptrs[name] = frozenset(result.shared_ptrs)
            self._trans_ptrs[name] = direct_ptrs[name]
            for callee in result.callees:
                if callee in self.direct:
                    callers.setdefault(callee, []).append(name)

        # Worklist fixpoint over direct call edges, relaxing the event
        # masks and the conditional shared-pointer sets together (same
        # lattice shape: finite powersets, monotone union transfer).
        work: List[str] = list(self.direct)
        in_work: Set[str] = set(work)
        while work:
            name = work.pop()
            in_work.discard(name)
            mask = self.direct[name].events_mask
            ptrs = direct_ptrs[name]
            for callee in self.direct[name].callees:
                mask |= self.transitive.get(callee, 0)
                ptrs |= self._trans_ptrs.get(callee, _EMPTY_NAMES)
            if mask != self.transitive[name] or ptrs != self._trans_ptrs[name]:
                self.transitive[name] = mask
                self._trans_ptrs[name] = ptrs
                for caller in callers.get(name, ()):
                    if caller not in in_work:
                        in_work.add(caller)
                        work.append(caller)

        # Indirect calls: a second, outer fixpoint.  The pool of kinds an
        # indirect call can trigger is the union over registered targets,
        # and feeding the pool into a function with an indirect call can
        # enlarge the pool (a registered function may itself make
        # indirect calls) — iterate until stable.
        indirect_pool_ptrs: FrozenSet[str] = _EMPTY_NAMES
        if registered:
            while True:
                pool = 0
                pool_ptrs: FrozenSet[str] = _EMPTY_NAMES
                for target in registered:
                    pool |= self.transitive.get(target, 0)
                    pool_ptrs |= self._trans_ptrs.get(target, _EMPTY_NAMES)
                changed = False
                for name, result in self.direct.items():
                    if not result.has_indirect_call:
                        continue
                    merged = self.transitive[name] | pool
                    merged_ptrs = self._trans_ptrs[name] | pool_ptrs
                    if merged != self.transitive[name] or merged_ptrs != self._trans_ptrs[name]:
                        self.transitive[name] = merged
                        self._trans_ptrs[name] = merged_ptrs
                        changed = True
                if not changed:
                    break
                # Re-close over direct edges so callers of
                # indirect-calling functions see the enlarged masks.
                self._close_direct_edges(callers)
            indirect_pool = pool
            indirect_pool_ptrs = pool_ptrs
        self.indirect_pool = indirect_pool
        self.indirect_pool_ptrs = indirect_pool_ptrs

    def _close_direct_edges(self, callers: Dict[str, List[str]]) -> None:
        work: List[str] = list(self.direct)
        in_work: Set[str] = set(work)
        while work:
            name = work.pop()
            in_work.discard(name)
            mask = self.transitive[name]
            ptrs = self._trans_ptrs[name]
            for callee in self.direct[name].callees:
                mask |= self.transitive.get(callee, 0)
                ptrs |= self._trans_ptrs.get(callee, _EMPTY_NAMES)
            if mask != self.transitive[name] or ptrs != self._trans_ptrs[name]:
                self.transitive[name] = mask
                self._trans_ptrs[name] = ptrs
                for caller in callers.get(name, ()):
                    if caller not in in_work:
                        in_work.add(caller)
                        work.append(caller)

    # -- queries -------------------------------------------------------------

    @staticmethod
    def _restore_shared(
        mask: int,
        ptrs: FrozenSet[str],
        reaches_shared: Optional[Callable[[str], bool]],
    ) -> int:
        """Fold the pointer-conditional SHARED_ACCESS bit back into a
        mask.  Without a predicate every pointer access counts (the old
        unconditional semantics); with one — the P1.7 closure-local
        sharpening — only accesses whose pointer may reach a shared root
        do."""
        if ptrs and (
            reaches_shared is None or any(reaches_shared(p) for p in ptrs)
        ):
            mask |= _SHARED
        return mask

    # The ``*_mask`` variants are the computation; the EventKind-typed
    # methods are thin conversion wrappers for external callers.

    def direct_events_mask(self, name: str, reaches_shared=None) -> int:
        result = self.direct.get(name)
        if result is None:
            return 0
        return self._restore_shared(
            result.events_mask, frozenset(result.shared_ptrs), reaches_shared
        )

    def direct_events(self, name: str, reaches_shared=None) -> EventKind:
        return _as_kinds(self.direct_events_mask(name, reaches_shared))

    def region_events_mask(self, name: str, reaches_shared=None) -> int:
        """Every kind ``name`` can trigger directly or transitively."""
        return self._restore_shared(
            self.transitive.get(name, 0),
            self._trans_ptrs.get(name, _EMPTY_NAMES),
            reaches_shared,
        )

    def region_events(self, name: str, reaches_shared=None) -> EventKind:
        return _as_kinds(self.region_events_mask(name, reaches_shared))

    def callee_region_events_mask(self, callee: str, reaches_shared=None) -> int:
        """Kinds a call to ``callee`` can trigger: its transitive region
        when defined, nothing extra otherwise (the call site's own havoc
        kinds are part of the *caller's* direct set)."""
        return self._restore_shared(
            self.transitive.get(callee, 0),
            self._trans_ptrs.get(callee, _EMPTY_NAMES),
            reaches_shared,
        )

    def callee_region_events(self, callee: str, reaches_shared=None) -> EventKind:
        return _as_kinds(self.callee_region_events_mask(callee, reaches_shared))

    def pool_events_mask(self, reaches_shared=None) -> int:
        """Kinds an indirect call can trigger through the registration
        pool (0 with function-pointer resolution off)."""
        return self._restore_shared(
            self.indirect_pool, self.indirect_pool_ptrs, reaches_shared
        )

    def pool_events(self, reaches_shared=None) -> EventKind:
        return _as_kinds(self.pool_events_mask(reaches_shared))
