"""Per-function typestate-event summaries and their call-graph fixpoint.

``EventSummaryIndex`` computes, for every defined function, the set of
event kinds the function can trigger *directly* (its own instructions,
:mod:`repro.presolve.scan`) and *transitively* (closing the direct sets
over the call graph with a worklist fixpoint).  The lattice is the
powerset of :class:`~repro.presolve.events.EventKind` ordered by
inclusion — finite height, monotone union transfer, so the fixpoint
terminates in at most ``|kinds| × |functions|`` edge relaxations.

Call edges:

* **direct calls** — an edge to the callee by name; calls to *unknown*
  functions (no definition in the program) have no body to summarize,
  and their havoc kinds are already part of the caller's direct set;
* **indirect calls** — when the engine is configured to resolve function
  pointers, any function registered to an interface slot may be invoked,
  so an indirect call site conservatively links to *every* registered
  function (the engine's per-site (struct, field) resolution can only
  pick a subset of those).  With resolution off the engine havocs the
  call, which the direct scan already covers.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set

from ..ir import Function, Program
from .events import EventKind
from .scan import ScanContext, ScanResult, function_direct_events


class EventSummaryIndex:
    """Direct and transitive event summaries for one program.

    ``registered_functions`` are the possible indirect-call targets
    (interface registrations); only consulted when
    ``resolve_function_pointers`` is True, matching the engine.
    """

    def __init__(
        self,
        program: Program,
        scan_ctx: Optional[ScanContext] = None,
        resolve_function_pointers: bool = False,
    ):
        self.program = program
        self.scan_ctx = scan_ctx or ScanContext()
        self.resolve_function_pointers = resolve_function_pointers
        #: per-function direct scan results (events + call edges)
        self.direct: Dict[str, ScanResult] = {}
        #: per-function transitive event masks (the fixpoint)
        self.transitive: Dict[str, EventKind] = {}
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self) -> None:
        functions: List[Function] = list(self.program.functions())
        for func in functions:
            self.direct[func.name] = function_direct_events(func, self.scan_ctx)

        indirect_pool: EventKind = EventKind.NONE
        registered: Set[str] = set()
        if self.resolve_function_pointers:
            registered = {
                reg.function
                for reg in self.program.registrations()
                if self.program.lookup(reg.function) is not None
            }

        # Reverse edges: callee -> callers, to relax only affected nodes.
        callers: Dict[str, List[str]] = {}
        for name, result in self.direct.items():
            self.transitive[name] = result.events
            for callee in result.callees:
                if callee in self.direct:
                    callers.setdefault(callee, []).append(name)

        # Worklist fixpoint over direct call edges.
        work: List[str] = list(self.direct)
        in_work: Set[str] = set(work)
        while work:
            name = work.pop()
            in_work.discard(name)
            mask = self.direct[name].events
            for callee in self.direct[name].callees:
                mask |= self.transitive.get(callee, EventKind.NONE)
            if mask != self.transitive[name]:
                self.transitive[name] = mask
                for caller in callers.get(name, ()):
                    if caller not in in_work:
                        in_work.add(caller)
                        work.append(caller)

        # Indirect calls: a second, outer fixpoint.  The pool of kinds an
        # indirect call can trigger is the union over registered targets,
        # and feeding the pool into a function with an indirect call can
        # enlarge the pool (a registered function may itself make
        # indirect calls) — iterate until stable.
        if registered:
            while True:
                pool = EventKind.NONE
                for target in registered:
                    pool |= self.transitive.get(target, EventKind.NONE)
                changed = False
                for name, result in self.direct.items():
                    if not result.has_indirect_call:
                        continue
                    merged = self.transitive[name] | pool
                    if merged != self.transitive[name]:
                        self.transitive[name] = merged
                        changed = True
                if not changed:
                    break
                # Re-close over direct edges so callers of
                # indirect-calling functions see the enlarged masks.
                self._close_direct_edges(callers)
            indirect_pool = pool
        self.indirect_pool = indirect_pool

    def _close_direct_edges(self, callers: Dict[str, List[str]]) -> None:
        work: List[str] = list(self.direct)
        in_work: Set[str] = set(work)
        while work:
            name = work.pop()
            in_work.discard(name)
            mask = self.transitive[name]
            for callee in self.direct[name].callees:
                mask |= self.transitive.get(callee, EventKind.NONE)
            if mask != self.transitive[name]:
                self.transitive[name] = mask
                for caller in callers.get(name, ()):
                    if caller not in in_work:
                        in_work.add(caller)
                        work.append(caller)

    # -- queries -------------------------------------------------------------

    def direct_events(self, name: str) -> EventKind:
        result = self.direct.get(name)
        return result.events if result is not None else EventKind.NONE

    def region_events(self, name: str) -> EventKind:
        """Every kind ``name`` can trigger directly or transitively."""
        return self.transitive.get(name, EventKind.NONE)

    def callee_region_events(self, callee: str) -> EventKind:
        """Kinds a call to ``callee`` can trigger: its transitive region
        when defined, nothing extra otherwise (the call site's own havoc
        kinds are part of the *caller's* direct set)."""
        return self.transitive.get(callee, EventKind.NONE)
