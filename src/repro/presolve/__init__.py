"""Checker-relevance pre-analysis — phase **P1.5** of the pipeline.

Sits between the information collector (P1) and path exploration (P2):
a cheap, sound pre-analysis that summarizes, per function, the kinds of
typestate events the function can trigger directly or transitively, and
uses the summaries to skip entry functions and CFG regions that cannot
produce a report for any enabled checker.  Pruning is report-preserving
by construction; ``AnalysisConfig.prune`` / ``--no-prune`` switch it off
for differential runs.

Modules
-------
- :mod:`repro.presolve.events` — the abstract event-kind lattice
- :mod:`repro.presolve.scan` — per-instruction/per-block direct scan
- :mod:`repro.presolve.summary` — call-graph fixpoint over summaries
- :mod:`repro.presolve.prune` — entry pruning + backward CFG liveness
"""

from .events import ALL_EVENTS, NEGATIVE_RETURN_HINTS, EventKind, event_names, iter_kinds
from .scan import ScanContext, ScanResult, block_events, function_direct_events
from .summary import EventSummaryIndex
from .prune import RelevancePreAnalysis

__all__ = [
    "ALL_EVENTS",
    "NEGATIVE_RETURN_HINTS",
    "EventKind",
    "event_names",
    "iter_kinds",
    "ScanContext",
    "ScanResult",
    "block_events",
    "function_direct_events",
    "EventSummaryIndex",
    "RelevancePreAnalysis",
]
