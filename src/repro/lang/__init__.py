"""Mini-C frontend: lexer, parser, AST and lowering to the repro IR.

The one-call entry point is :func:`compile_source`; multi-file programs go
through :func:`compile_program`.
"""

from typing import Iterable, Tuple

from ..ir import Module, Program
from .lexer import Lexer, Token, tokenize
from .parser import Parser, parse
from .lower import ALLOCATORS, DEALLOCATORS, LOCK_APIS, compile_source, lower_unit
from .sema import Diagnostic, SemaChecker, check_source

__all__ = [
    "Lexer", "Token", "tokenize", "Parser", "parse",
    "ALLOCATORS", "DEALLOCATORS", "LOCK_APIS",
    "compile_source", "lower_unit", "compile_program",
    "Diagnostic", "SemaChecker", "check_source",
]


def compile_program(sources: Iterable[Tuple[str, str]]) -> Program:
    """Compile ``(filename, source)`` pairs into a linked :class:`Program`.

    Uids are renumbered deterministically (1..N in program order) so two
    compiles of the same sources — in one process or across processes —
    produce byte-identical analysis output (uids reach report text via
    ``heap#<uid>`` shared-state roots; see
    :func:`repro.incremental.coords.renumber_program`)."""
    from ..incremental.coords import renumber_program

    program = Program()
    for filename, source in sources:
        program.add_module(compile_source(source, filename))
    renumber_program(program)
    return program
