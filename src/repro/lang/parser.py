"""Recursive-descent parser for mini-C.

The parser keeps a set of typedef names so declarations can be
distinguished from expressions without full C semantics.  Output is a
:class:`~repro.lang.ast.TranslationUnit`.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..errors import ParseError
from . import ast
from .lexer import Token, parse_int_literal, tokenize

BASE_TYPE_KEYWORDS = {
    "void", "int", "char", "long", "short", "float", "double", "bool",
    "unsigned", "signed",
}
QUALIFIERS = {"const", "volatile"}
STORAGE = {"static", "extern", "inline"}

# Binary operator precedence (higher binds tighter).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    """Recursive-descent parser; one instance per translation unit."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.tokens: List[Token] = tokenize(source, filename)
        self.filename = filename
        self.pos = 0
        self.typedefs: Set[str] = set()
        self.source_lines = source.count("\n") + 1

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        tok = self._peek()
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self._peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._at(kind, text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self._peek()
        if not self._at(kind, text):
            want = text or kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", self.filename, tok.line, tok.column)
        return self._next()

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        return ParseError(message, self.filename, tok.line, tok.column)

    # -- type detection ------------------------------------------------------

    def _starts_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind == "kw" and (tok.text in BASE_TYPE_KEYWORDS or tok.text in QUALIFIERS or tok.text in ("struct", "union", "enum")):
            return True
        return tok.kind == "id" and tok.text in self.typedefs

    # -- entry point ----------------------------------------------------------

    def parse(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(1, self.filename, [], self.source_lines)
        while not self._at("eof"):
            unit.decls.append(self._parse_top_level())
        return unit

    def _parse_top_level(self) -> ast.Node:
        tok = self._peek()
        if self._at("kw", "typedef"):
            return self._parse_typedef()
        if self._at("kw", "struct") and self._peek(1).kind == "id" and self._peek(2).text == "{":
            return self._parse_struct_def()
        if self._at("kw", "enum"):
            return self._parse_enum_def()
        storage: Set[str] = set()
        while self._peek().kind == "kw" and self._peek().text in STORAGE:
            storage.add(self._next().text)
        if self._at("kw", "struct") and self._peek(1).kind == "id" and self._peek(2).text == "{":
            # "static struct X {...}" is not valid mini-C; treat as struct def.
            return self._parse_struct_def()
        if not self._starts_type():
            raise self._error(f"expected declaration, found {tok.text!r}")
        base = self._parse_type_spec()
        if self._accept("punct", ";"):
            # Bare forward declaration: "struct foo;" — registers the tag.
            return ast.StructDef(tok.line, f"@forward {base.base}", [])
        decl = self._parse_declarator(base)
        if self._at("punct", "(") and decl.type.func_params is None:
            return self._parse_function_rest(decl, "static" in storage, tok.line)
        return self._parse_global_rest(decl, "static" in storage, tok.line)

    def _parse_typedef(self) -> ast.TypedefDecl:
        tok = self._expect("kw", "typedef")
        base = self._parse_type_spec()
        decl = self._parse_declarator(base)
        self._expect("punct", ";")
        self.typedefs.add(decl.name)
        return ast.TypedefDecl(tok.line, decl.name, decl.type)

    def _parse_struct_def(self) -> ast.StructDef:
        tok = self._expect("kw", "struct")
        name = self._expect("id").text
        self._expect("punct", "{")
        fields: List[ast.Declarator] = []
        while not self._accept("punct", "}"):
            base = self._parse_type_spec()
            while True:
                fields.append(self._parse_declarator(base))
                if not self._accept("punct", ","):
                    break
            self._expect("punct", ";")
        self._expect("punct", ";")
        return ast.StructDef(tok.line, name, fields)

    def _parse_enum_def(self) -> ast.TypedefDecl:
        """Enums are lowered to int constants via typedef-like handling.

        ``enum name { A, B = 3, C };`` registers nothing globally here; the
        lowering pass evaluates enumerators as int literals.  We keep the
        enumerators in a TypedefDecl-ish node for simplicity.
        """
        tok = self._expect("kw", "enum")
        name = self._accept("id")
        enum_name = name.text if name else "<anon>"
        node = ast.StructDef(tok.line, f"enum {enum_name}", [])
        if self._accept("punct", "{"):
            value = 0
            while not self._accept("punct", "}"):
                ident = self._expect("id").text
                if self._accept("punct", "="):
                    value = self._parse_constant_int()
                node.fields.append(
                    ast.Declarator(tok.line, ident, ast.TypeRef(tok.line, "int"), ast.Initializer(tok.line, ast.IntLit(tok.line, value)))
                )
                value += 1
                self._accept("punct", ",")
        self._expect("punct", ";")
        return node

    def _parse_constant_int(self) -> int:
        neg = bool(self._accept("punct", "-"))
        tok = self._expect("num")
        value = parse_int_literal(tok.text)
        return -value if neg else value

    # -- type spec / declarator ------------------------------------------------

    def _parse_type_spec(self) -> ast.TypeRef:
        tok = self._peek()
        words: List[str] = []
        while True:
            cur = self._peek()
            if cur.kind == "kw" and cur.text in QUALIFIERS:
                self._next()
                continue
            if cur.kind == "kw" and cur.text in ("struct", "union"):
                self._next()
                name = self._expect("id").text
                base = f"struct {name}"
                break
            if cur.kind == "kw" and cur.text == "enum":
                self._next()
                self._accept("id")
                base = "int"
                break
            if cur.kind == "kw" and cur.text in BASE_TYPE_KEYWORDS:
                words.append(self._next().text)
                continue
            if cur.kind == "id" and cur.text in self.typedefs and not words:
                self._next()
                base = cur.text
                break
            if words:
                base = " ".join(words)
                break
            raise self._error(f"expected type, found {cur.text!r}")
        return ast.TypeRef(tok.line, base, 0)

    def _parse_declarator(self, base: ast.TypeRef) -> ast.Declarator:
        pointers = 0
        while self._accept("punct", "*"):
            while self._peek().kind == "kw" and self._peek().text in QUALIFIERS:
                self._next()
            pointers += 1
        # Function-pointer declarator: ( * name ) ( params )
        if self._at("punct", "(") and self._peek(1).text == "*":
            self._next()
            self._expect("punct", "*")
            name_tok = self._expect("id")
            self._expect("punct", ")")
            self._expect("punct", "(")
            params: List[ast.TypeRef] = []
            if not self._at("punct", ")"):
                while True:
                    if self._accept("punct", "..."):
                        break
                    ptype = self._parse_type_spec()
                    pdecl_ptr = 0
                    while self._accept("punct", "*"):
                        pdecl_ptr += 1
                    self._accept("id")
                    params.append(ptype.with_pointers(pdecl_ptr))
                    if not self._accept("punct", ","):
                        break
            self._expect("punct", ")")
            ty = ast.TypeRef(base.line, base.base, base.pointer_depth + pointers, (), tuple(params))
            # A function pointer is pointer-like: one extra level.
            ty.pointer_depth += 1
            return ast.Declarator(name_tok.line, name_tok.text, ty, None)
        name_tok = self._expect("id")
        dims: List[int] = []
        while self._accept("punct", "["):
            if self._at("punct", "]"):
                dims.append(0)
            else:
                dims.append(self._parse_constant_int())
            self._expect("punct", "]")
        ty = ast.TypeRef(base.line, base.base, base.pointer_depth + pointers, tuple(dims))
        return ast.Declarator(name_tok.line, name_tok.text, ty, None)

    # -- functions & globals ---------------------------------------------------

    def _parse_function_rest(self, decl: ast.Declarator, is_static: bool, line: int) -> ast.FunctionDef:
        self._expect("punct", "(")
        params: List[ast.ParamDecl] = []
        variadic = False
        if not self._at("punct", ")"):
            if self._at("kw", "void") and self._peek(1).text == ")":
                self._next()
            else:
                while True:
                    if self._accept("punct", "..."):
                        variadic = True
                        break
                    ptok = self._peek()
                    base = self._parse_type_spec()
                    if self._at("punct", ")") or self._at("punct", ","):
                        params.append(ast.ParamDecl(ptok.line, f"<anon{len(params)}>", base))
                    else:
                        pdecl = self._parse_declarator(base)
                        params.append(ast.ParamDecl(pdecl.line, pdecl.name, pdecl.type))
                    if not self._accept("punct", ","):
                        break
        self._expect("punct", ")")
        body: Optional[ast.Block] = None
        if not self._accept("punct", ";"):
            body = self._parse_block()
        return ast.FunctionDef(line, decl.name, decl.type, params, body, is_static, variadic)

    def _parse_global_rest(self, first: ast.Declarator, is_static: bool, line: int) -> ast.Node:
        decls = [first]
        if self._accept("punct", "="):
            first.init = self._parse_initializer()
        while self._accept("punct", ","):
            decl = self._parse_declarator(ast.TypeRef(first.type.line, first.type.base, 0))
            if self._accept("punct", "="):
                decl.init = self._parse_initializer()
            decls.append(decl)
        self._expect("punct", ";")
        if len(decls) == 1:
            return ast.GlobalVar(line, decls[0], is_static)
        block = ast.TranslationUnit(line, self.filename, [ast.GlobalVar(line, d, is_static) for d in decls])
        return block

    def _parse_initializer(self) -> ast.Initializer:
        tok = self._peek()
        if self._accept("punct", "{"):
            fields: List[Tuple[str, ast.Initializer]] = []
            elements: List[ast.Initializer] = []
            while not self._accept("punct", "}"):
                if self._accept("punct", "."):
                    fname = self._expect("id").text
                    self._expect("punct", "=")
                    fields.append((fname, self._parse_initializer()))
                else:
                    elements.append(self._parse_initializer())
                self._accept("punct", ",")
            if fields:
                return ast.Initializer(tok.line, None, fields, None)
            return ast.Initializer(tok.line, None, None, elements)
        return ast.Initializer(tok.line, self._parse_assignment())

    # -- statements ---------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        tok = self._expect("punct", "{")
        statements: List[ast.Stmt] = []
        while not self._accept("punct", "}"):
            statements.append(self._parse_statement())
        return ast.Block(tok.line, statements)

    def _parse_statement(self) -> ast.Stmt:
        tok = self._peek()
        if self._at("punct", "{"):
            return self._parse_block()
        if self._at("punct", ";"):
            self._next()
            return ast.EmptyStmt(tok.line)
        if self._at("kw", "if"):
            return self._parse_if()
        if self._at("kw", "while"):
            return self._parse_while()
        if self._at("kw", "do"):
            return self._parse_do_while()
        if self._at("kw", "for"):
            return self._parse_for()
        if self._at("kw", "switch"):
            return self._parse_switch()
        if self._accept("kw", "return"):
            value = None if self._at("punct", ";") else self._parse_expression()
            self._expect("punct", ";")
            return ast.ReturnStmt(tok.line, value)
        if self._accept("kw", "break"):
            self._expect("punct", ";")
            return ast.BreakStmt(tok.line)
        if self._accept("kw", "continue"):
            self._expect("punct", ";")
            return ast.ContinueStmt(tok.line)
        if self._accept("kw", "goto"):
            label = self._expect("id").text
            self._expect("punct", ";")
            return ast.GotoStmt(tok.line, label)
        if tok.kind == "id" and self._peek(1).text == ":" and self._peek(2).text != ":":
            self._next()
            self._next()
            inner = None
            if not self._at("punct", "}"):
                inner = self._parse_statement()
            return ast.LabelStmt(tok.line, tok.text, inner)
        if self._starts_type() and not self._is_expression_start_despite_type():
            return self._parse_decl_stmt()
        expr = self._parse_expression()
        self._expect("punct", ";")
        return ast.ExprStmt(tok.line, expr)

    def _is_expression_start_despite_type(self) -> bool:
        """A typedef name followed by something that is not a declarator is an
        expression (e.g. ``obj_t * p`` declares, ``size = n`` assigns)."""
        tok = self._peek()
        if tok.kind != "id":
            return False
        nxt = self._peek(1)
        return nxt.text not in ("*",) and nxt.kind != "id" and not (nxt.text == "(" and self._peek(2).text == "*")

    def _parse_decl_stmt(self) -> ast.DeclStmt:
        tok = self._peek()
        while self._peek().kind == "kw" and self._peek().text in STORAGE:
            self._next()
        base = self._parse_type_spec()
        declarators: List[ast.Declarator] = []
        while True:
            decl = self._parse_declarator(base)
            if self._accept("punct", "="):
                decl.init = self._parse_initializer()
            declarators.append(decl)
            if not self._accept("punct", ","):
                break
        self._expect("punct", ";")
        return ast.DeclStmt(tok.line, declarators)

    def _parse_if(self) -> ast.IfStmt:
        tok = self._expect("kw", "if")
        self._expect("punct", "(")
        cond = self._parse_expression()
        self._expect("punct", ")")
        then_body = self._parse_statement()
        else_body = self._parse_statement() if self._accept("kw", "else") else None
        return ast.IfStmt(tok.line, cond, then_body, else_body)

    def _parse_while(self) -> ast.WhileStmt:
        tok = self._expect("kw", "while")
        self._expect("punct", "(")
        cond = self._parse_expression()
        self._expect("punct", ")")
        return ast.WhileStmt(tok.line, cond, self._parse_statement(), False)

    def _parse_do_while(self) -> ast.WhileStmt:
        tok = self._expect("kw", "do")
        body = self._parse_statement()
        self._expect("kw", "while")
        self._expect("punct", "(")
        cond = self._parse_expression()
        self._expect("punct", ")")
        self._expect("punct", ";")
        return ast.WhileStmt(tok.line, cond, body, True)

    def _parse_for(self) -> ast.ForStmt:
        tok = self._expect("kw", "for")
        self._expect("punct", "(")
        init: Optional[ast.Stmt] = None
        if not self._accept("punct", ";"):
            if self._starts_type():
                init = self._parse_decl_stmt()
            else:
                init = ast.ExprStmt(tok.line, self._parse_expression())
                self._expect("punct", ";")
        cond = None if self._at("punct", ";") else self._parse_expression()
        self._expect("punct", ";")
        step = None if self._at("punct", ")") else self._parse_expression()
        self._expect("punct", ")")
        return ast.ForStmt(tok.line, init, cond, step, self._parse_statement())

    def _parse_switch(self) -> ast.SwitchStmt:
        tok = self._expect("kw", "switch")
        self._expect("punct", "(")
        value = self._parse_expression()
        self._expect("punct", ")")
        self._expect("punct", "{")
        cases: List[Tuple[Optional[int], List[ast.Stmt]]] = []
        current: Optional[List[ast.Stmt]] = None
        while not self._accept("punct", "}"):
            if self._accept("kw", "case"):
                label = self._parse_constant_int()
                self._expect("punct", ":")
                current = []
                cases.append((label, current))
            elif self._accept("kw", "default"):
                self._expect("punct", ":")
                current = []
                cases.append((None, current))
            else:
                if current is None:
                    raise self._error("statement before first case label")
                current.append(self._parse_statement())
        return ast.SwitchStmt(tok.line, value, cases)

    # -- expressions ------------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        expr = self._parse_assignment()
        while self._accept("punct", ","):
            expr = ast.Binary(expr.line, ",", expr, self._parse_assignment())
        return expr

    def _parse_assignment(self) -> ast.Expr:
        lhs = self._parse_ternary()
        tok = self._peek()
        if tok.kind == "punct" and tok.text in _ASSIGN_OPS:
            self._next()
            rhs = self._parse_assignment()
            op = tok.text[:-1] if tok.text != "=" else ""
            return ast.Assign(tok.line, lhs, rhs, op)
        return lhs

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept("punct", "?"):
            then_expr = self._parse_expression()
            self._expect("punct", ":")
            else_expr = self._parse_ternary()
            return ast.Ternary(cond.line, cond, then_expr, else_expr)
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            tok = self._peek()
            prec = _BINARY_PRECEDENCE.get(tok.text) if tok.kind == "punct" else None
            if prec is None or prec < min_prec:
                return lhs
            self._next()
            rhs = self._parse_binary(prec + 1)
            lhs = ast.Binary(tok.line, tok.text, lhs, rhs)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "punct" and tok.text in ("-", "~", "!", "*", "&"):
            self._next()
            return ast.Unary(tok.line, tok.text, self._parse_unary())
        if tok.kind == "punct" and tok.text in ("++", "--"):
            self._next()
            return ast.Unary(tok.line, tok.text, self._parse_unary())
        if tok.kind == "kw" and tok.text == "sizeof":
            self._next()
            if self._at("punct", "(") and self._starts_type(1):
                self._next()
                ty = self._parse_type_spec()
                depth = 0
                while self._accept("punct", "*"):
                    depth += 1
                self._expect("punct", ")")
                return ast.SizeOf(tok.line, ty.with_pointers(depth), None)
            return ast.SizeOf(tok.line, None, self._parse_unary())
        if self._at("punct", "(") and self._starts_type(1):
            self._next()
            ty = self._parse_type_spec()
            depth = 0
            while self._accept("punct", "*"):
                depth += 1
            self._expect("punct", ")")
            return ast.Cast(tok.line, ty.with_pointers(depth), self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if self._accept("punct", "("):
                args: List[ast.Expr] = []
                if not self._at("punct", ")"):
                    while True:
                        args.append(self._parse_assignment())
                        if not self._accept("punct", ","):
                            break
                self._expect("punct", ")")
                expr = ast.CallExpr(tok.line, expr, args)
            elif self._accept("punct", "["):
                index = self._parse_expression()
                self._expect("punct", "]")
                expr = ast.IndexExpr(tok.line, expr, index)
            elif self._accept("punct", "."):
                expr = ast.Member(tok.line, expr, self._expect("id").text, False)
            elif self._accept("punct", "->"):
                expr = ast.Member(tok.line, expr, self._expect("id").text, True)
            elif tok.kind == "punct" and tok.text in ("++", "--"):
                self._next()
                expr = ast.Unary(tok.line, "p" + tok.text, expr)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == "num":
            self._next()
            return ast.IntLit(tok.line, parse_int_literal(tok.text))
        if tok.kind == "char":
            self._next()
            return ast.CharLit(tok.line, tok.text)
        if tok.kind == "string":
            self._next()
            return ast.StrLit(tok.line, tok.text)
        if self._accept("kw", "NULL"):
            return ast.NullLit(tok.line)
        if tok.kind == "id":
            self._next()
            return ast.Name(tok.line, tok.text)
        if self._accept("punct", "("):
            expr = self._parse_expression()
            self._expect("punct", ")")
            return expr
        raise self._error(f"expected expression, found {tok.text!r}")


def parse(source: str, filename: str = "<input>") -> ast.TranslationUnit:
    """Parse mini-C ``source`` into a translation unit."""
    unit = Parser(source, filename).parse()
    # Flatten multi-declarator globals that the parser wrapped.
    flattened: List[ast.Node] = []
    for decl in unit.decls:
        if isinstance(decl, ast.TranslationUnit):
            flattened.extend(decl.decls)
        else:
            flattened.append(decl)
    unit.decls = flattened
    return unit
