"""Lexer for mini-C, the C subset the corpus and examples are written in.

Mini-C covers the constructs PATA's evaluation exercises: structs with
designated initializers (module-interface registration), pointers, field
accesses, arrays, control flow including ``goto``, and the kernel-ish
allocation/locking APIs (recognized later, at lowering).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..errors import LexError

KEYWORDS = {
    "struct", "union", "enum", "typedef", "static", "extern", "inline",
    "const", "volatile", "unsigned", "signed", "void", "int", "char",
    "long", "short", "float", "double", "bool",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "goto", "switch", "case", "default", "sizeof", "NULL",
}

# Multi-character punctuation, longest first so maximal munch works.
PUNCT = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'id', 'num', 'char', 'string', 'kw', 'punct', 'eof'
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


class Lexer:
    """Streaming tokenizer over one mini-C source buffer."""

    def __init__(self, source: str, filename: str = "<input>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self.filename, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            elif ch == "#":
                # Preprocessor lines are ignored (the corpus does not rely on
                # macros; kernel-ish APIs are plain functions in mini-C).
                while self.pos < len(self.source) and self._peek() != "\n":
                    if self._peek() == "\\" and self._peek(1) == "\n":
                        self._advance()
                    self._advance()
            else:
                return

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield Token("eof", "", self.line, self.column)
                return
            start_line, start_col = self.line, self.column
            ch = self._peek()
            if ch.isalpha() or ch == "_":
                text = self._lex_word()
                kind = "kw" if text in KEYWORDS else "id"
                yield Token(kind, text, start_line, start_col)
            elif ch.isdigit():
                yield Token("num", self._lex_number(), start_line, start_col)
            elif ch == '"':
                yield Token("string", self._lex_string(), start_line, start_col)
            elif ch == "'":
                yield Token("char", self._lex_char(), start_line, start_col)
            else:
                for punct in PUNCT:
                    if self.source.startswith(punct, self.pos):
                        self._advance(len(punct))
                        yield Token("punct", punct, start_line, start_col)
                        break
                else:
                    raise self._error(f"unexpected character {ch!r}")

    def _lex_word(self) -> str:
        start = self.pos
        while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        return self.source[start : self.pos]

    def _lex_number(self) -> str:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        # Integer suffixes (UL, LL, u, ...) are consumed and ignored.
        while self._peek() and self._peek() in "uUlL":
            self._advance()
        return self.source[start : self.pos]

    def _lex_string(self) -> str:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                return "".join(chars)
            if ch == "\\":
                self._advance()
                chars.append(self._peek())
                self._advance()
            else:
                chars.append(ch)
                self._advance()

    def _lex_char(self) -> str:
        self._advance()  # opening quote
        if self._peek() == "\\":
            self._advance()
            escapes = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\", "'": "'", "r": "\r"}
            ch = escapes.get(self._peek(), self._peek())
            self._advance()
        else:
            ch = self._peek()
            self._advance()
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return ch


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize ``source`` fully, returning the token list ending with EOF."""
    return list(Lexer(source, filename).tokens())


def parse_int_literal(text: str) -> int:
    """Parse a C integer literal (decimal or 0x hex, suffixes ignored)."""
    text = text.rstrip("uUlL")
    return int(text, 16) if text.lower().startswith("0x") else int(text, 10)
