"""Source-level semantic diagnostics for mini-C (a lint pass).

Runs on the AST only — no compilation — so, like Cppcheck/Coccinelle in
the paper's comparison, it can vet files that are excluded from the
build configuration.  Collected (never raised) diagnostics:

* ``call-arity``        — call with the wrong number of arguments;
* ``implicit-decl``     — call to a function with no visible declaration
  (the known intrinsics are exempt);
* ``undeclared-var``    — use of a name that is neither local, global,
  enum constant nor function;
* ``unused-var``        — local declared and assigned but never read;
* ``unreachable``       — statements after a ``return``/``goto``/``break``
  in the same block;
* ``missing-return``    — a non-void function whose body can fall off the
  end;
* ``duplicate-def``     — two definitions of one function in a unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from . import ast
from .lower import ALLOCATORS, DEALLOCATORS, LOCK_APIS, MEMSET_APIS
from .parser import parse

_KNOWN_INTRINSICS = (
    set(ALLOCATORS) | set(DEALLOCATORS) | set(LOCK_APIS) | set(MEMSET_APIS)
)


@dataclass
class Diagnostic:
    code: str
    message: str
    filename: str
    line: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}: [{self.code}] {self.message}"


class SemaChecker:
    """Collects all diagnostics for one translation unit (see module docstring for the rule list)."""

    def __init__(self, unit: ast.TranslationUnit, extra_known_functions: Optional[Set[str]] = None):
        self.unit = unit
        self.diagnostics: List[Diagnostic] = []
        self.functions: Dict[str, ast.FunctionDef] = {}
        self.globals: Set[str] = set()
        self.enums: Set[str] = set()
        self.known_functions: Set[str] = set(_KNOWN_INTRINSICS)
        if extra_known_functions:
            self.known_functions |= extra_known_functions

    def _report(self, code: str, message: str, node: ast.Node) -> None:
        self.diagnostics.append(Diagnostic(code, message, self.unit.filename, node.line))

    # -- entry ----------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        for decl in self.unit.decls:
            if isinstance(decl, ast.FunctionDef):
                previous = self.functions.get(decl.name)
                if previous is not None and previous.body is not None and decl.body is not None:
                    self._report("duplicate-def", f"function '{decl.name}' defined twice", decl)
                if previous is None or decl.body is not None:
                    self.functions[decl.name] = decl
                self.known_functions.add(decl.name)
            elif isinstance(decl, ast.GlobalVar):
                self.globals.add(decl.declarator.name)
            elif isinstance(decl, ast.StructDef) and decl.name.startswith("enum "):
                for enumerator in decl.fields:
                    self.enums.add(enumerator.name)
        for decl in self.unit.decls:
            if isinstance(decl, ast.FunctionDef) and decl.body is not None:
                _FunctionSema(self, decl).run()
        return self.diagnostics


class _FunctionSema:
    def __init__(self, owner: SemaChecker, fdef: ast.FunctionDef):
        self.owner = owner
        self.fdef = fdef
        self.declared: Dict[str, ast.Node] = {}
        self.read: Set[str] = set()
        self.labels: Set[str] = set()

    def run(self) -> None:
        for param in self.fdef.params:
            self.declared[param.name] = param
            self.read.add(param.name)  # parameters are exempt from unused
        self._collect_labels(self.fdef.body)
        self._walk_block(self.fdef.body)
        for name, node in self.declared.items():
            if name not in self.read:
                self.owner._report("unused-var", f"local '{name}' is never read", node)
        if not self._returns_on_all_paths(self.fdef.body) and self.fdef.return_type.base != "void":
            self.owner._report(
                "missing-return",
                f"non-void function '{self.fdef.name}' may fall off the end",
                self.fdef,
            )

    # -- statements --------------------------------------------------------------

    def _collect_labels(self, node) -> None:
        if isinstance(node, ast.LabelStmt):
            self.labels.add(node.label)
        for value in vars(node).values():
            if isinstance(value, ast.Node):
                self._collect_labels(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Node):
                        self._collect_labels(item)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, list):
                                for s in sub:
                                    if isinstance(s, ast.Node):
                                        self._collect_labels(s)
                            elif isinstance(sub, ast.Node):
                                self._collect_labels(sub)

    def _walk_block(self, block: ast.Block) -> None:
        terminated_at: Optional[ast.Stmt] = None
        for stmt in block.statements:
            if terminated_at is not None and not isinstance(stmt, (ast.LabelStmt, ast.EmptyStmt)):
                self.owner._report(
                    "unreachable",
                    f"statement is unreachable (control left at line {terminated_at.line})",
                    stmt,
                )
                terminated_at = None  # one report per run of dead code
            self._walk_stmt(stmt)
            if isinstance(stmt, (ast.ReturnStmt, ast.GotoStmt, ast.BreakStmt, ast.ContinueStmt)):
                terminated_at = stmt

    def _walk_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._walk_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarators:
                self.declared[decl.name] = decl
                if decl.init is not None:
                    self._walk_init(decl.init)
        elif isinstance(stmt, ast.ExprStmt):
            self._walk_expr(stmt.expr, is_read=False)
        elif isinstance(stmt, ast.IfStmt):
            self._walk_expr(stmt.cond)
            self._walk_stmt(stmt.then_body)
            if stmt.else_body is not None:
                self._walk_stmt(stmt.else_body)
        elif isinstance(stmt, ast.WhileStmt):
            self._walk_expr(stmt.cond)
            self._walk_stmt(stmt.body)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._walk_stmt(stmt.init)
            if stmt.cond is not None:
                self._walk_expr(stmt.cond)
            if stmt.step is not None:
                self._walk_expr(stmt.step, is_read=False)
            self._walk_stmt(stmt.body)
        elif isinstance(stmt, ast.SwitchStmt):
            self._walk_expr(stmt.value)
            for _, body in stmt.cases:
                for inner in body:
                    self._walk_stmt(inner)
        elif isinstance(stmt, ast.ReturnStmt):
            if stmt.value is not None:
                self._walk_expr(stmt.value)
        elif isinstance(stmt, ast.LabelStmt):
            if stmt.stmt is not None:
                self._walk_stmt(stmt.stmt)
        elif isinstance(stmt, ast.GotoStmt):
            if stmt.label not in self.labels:
                self.owner._report("undeclared-var", f"goto to unknown label '{stmt.label}'", stmt)

    def _walk_init(self, init: ast.Initializer) -> None:
        if init.expr is not None:
            self._walk_expr(init.expr)
        if init.fields:
            for _, sub in init.fields:
                self._walk_init(sub)
        if init.elements:
            for sub in init.elements:
                self._walk_init(sub)

    # -- expressions -----------------------------------------------------------------

    def _walk_expr(self, expr: ast.Expr, is_read: bool = True) -> None:
        if isinstance(expr, ast.Name):
            self._check_name(expr, is_read)
        elif isinstance(expr, ast.Assign):
            self._walk_lvalue(expr.target)
            self._walk_expr(expr.value)
        elif isinstance(expr, ast.Unary):
            if expr.op in ("++", "--", "p++", "p--"):
                self._walk_lvalue(expr.operand)
                self._walk_expr(expr.operand)
            else:
                self._walk_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            self._walk_expr(expr.lhs)
            self._walk_expr(expr.rhs)
        elif isinstance(expr, ast.Ternary):
            self._walk_expr(expr.cond)
            self._walk_expr(expr.then_expr)
            self._walk_expr(expr.else_expr)
        elif isinstance(expr, ast.CallExpr):
            self._walk_call(expr)
        elif isinstance(expr, ast.Member):
            self._walk_expr(expr.base)
        elif isinstance(expr, ast.IndexExpr):
            self._walk_expr(expr.base)
            self._walk_expr(expr.index)
        elif isinstance(expr, ast.Cast):
            self._walk_expr(expr.operand, is_read)
        elif isinstance(expr, ast.SizeOf):
            if expr.operand is not None:
                self._walk_expr(expr.operand)

    def _walk_lvalue(self, target: ast.Expr) -> None:
        # An assignment target is a *write*; only the base of a member or
        # index write counts as a read.
        if isinstance(target, ast.Name):
            if target.ident not in self.declared and not self._is_known_name(target.ident):
                self.owner._report(
                    "undeclared-var", f"assignment to undeclared '{target.ident}'", target
                )
        elif isinstance(target, (ast.Member, ast.IndexExpr, ast.Unary, ast.Cast)):
            base = getattr(target, "base", None) or getattr(target, "operand", None)
            if base is not None:
                self._walk_expr(base)
            index = getattr(target, "index", None)
            if index is not None:
                self._walk_expr(index)

    def _walk_call(self, call: ast.CallExpr) -> None:
        for arg in call.args:
            self._walk_expr(arg)
        if not isinstance(call.callee, ast.Name):
            self._walk_expr(call.callee)
            return
        name = call.callee.ident
        if name in self.declared:
            self.read.add(name)  # call through a local function pointer
            return
        target = self.owner.functions.get(name)
        if target is not None:
            if not target.variadic and len(call.args) != len(target.params):
                self.owner._report(
                    "call-arity",
                    f"'{name}' called with {len(call.args)} argument(s), declared with {len(target.params)}",
                    call,
                )
            return
        if name not in self.owner.known_functions:
            self.owner._report("implicit-decl", f"call to undeclared function '{name}'", call)
            self.owner.known_functions.add(name)  # once per unit

    def _check_name(self, expr: ast.Name, is_read: bool) -> None:
        name = expr.ident
        if name in self.declared:
            if is_read:
                self.read.add(name)
            return
        if self._is_known_name(name):
            return
        self.owner._report("undeclared-var", f"use of undeclared '{name}'", expr)

    def _is_known_name(self, name: str) -> bool:
        return (
            name in self.owner.globals
            or name in self.owner.enums
            or name in self.owner.known_functions
            or name in self.owner.functions
        )

    def _returns_on_all_paths(self, block: ast.Block) -> bool:
        for stmt in block.statements:
            if self._stmt_returns(stmt):
                return True
        return False

    def _stmt_returns(self, stmt: ast.Stmt) -> bool:
        if isinstance(stmt, (ast.ReturnStmt, ast.GotoStmt)):
            return True
        if isinstance(stmt, ast.Block):
            return self._returns_on_all_paths(stmt)
        if isinstance(stmt, ast.IfStmt):
            return (
                stmt.else_body is not None
                and self._stmt_returns(stmt.then_body)
                and self._stmt_returns(stmt.else_body)
            )
        if isinstance(stmt, ast.LabelStmt):
            return stmt.stmt is not None and self._stmt_returns(stmt.stmt)
        if isinstance(stmt, ast.WhileStmt):
            # `while (1)` without break is treated as non-returning but
            # also non-falling-through; approximate as returning.
            return isinstance(stmt.cond, ast.IntLit) and stmt.cond.value != 0
        return False


def check_source(source: str, filename: str = "<input>",
                 known_functions: Optional[Set[str]] = None) -> List[Diagnostic]:
    """Parse and lint one mini-C source; returns the diagnostics."""
    return SemaChecker(parse(source, filename), known_functions).run()
