"""Lowering from the mini-C AST to the repro IR.

This plays the role of Clang in PATA's phase P1 (Fig. 10): it produces the
MOVE/LOAD/STORE/GEP-shaped instruction stream the alias analysis consumes,
records module-interface registrations from designated struct initializers
(``.probe = fn``), and recognizes the kernel-ish allocation / locking /
memset APIs as intrinsic instructions.

Naming convention (matches the paper's ``func:v`` notation): locals and
parameters of function ``f`` become ``f.v``; temporaries ``%f.hintN``;
globals ``@g``.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from ..errors import SemaError
from .. import ir
from ..ir import (
    Const,
    IRBuilder,
    IntType,
    Module,
    PointerType,
    SourceLoc,
    StructType,
    Var,
)
from . import ast
from .parser import parse

# Allocation APIs: name -> (size-argument index, zero-initialized, may return NULL)
ALLOCATORS: Dict[str, Tuple[int, bool, bool]] = {
    "malloc": (0, False, True),
    "kmalloc": (0, False, True),
    "vmalloc": (0, False, True),
    "kvmalloc": (0, False, True),
    "calloc": (1, True, True),
    "kzalloc": (0, True, True),
    "kcalloc": (1, True, True),
    "vzalloc": (0, True, True),
    "devm_kzalloc": (1, True, True),
    "devm_kmalloc": (1, False, True),
    "kmem_cache_alloc": (0, False, True),
}

DEALLOCATORS: Dict[str, int] = {
    "free": 0,
    "kfree": 0,
    "vfree": 0,
    "kvfree": 0,
    "kfree_sensitive": 0,
    "devm_kfree": 1,
    "kmem_cache_free": 1,
}

# Lock APIs: name -> (lock argument index, acquires?)
LOCK_APIS: Dict[str, Tuple[int, bool]] = {
    "spin_lock": (0, True),
    "spin_unlock": (0, False),
    "spin_lock_irqsave": (0, True),
    "spin_unlock_irqrestore": (0, False),
    "raw_spin_lock": (0, True),
    "raw_spin_unlock": (0, False),
    "mutex_lock": (0, True),
    "mutex_unlock": (0, False),
    "read_lock": (0, True),
    "read_unlock": (0, False),
    "write_lock": (0, True),
    "write_unlock": (0, False),
}

MEMSET_APIS = {"memset": (0, 2), "memcpy": (0, 2), "memmove": (0, 2), "memzero_explicit": (0, 1)}

_INT_WIDTHS = {
    "char": 8, "bool": 8, "short": 16, "int": 32, "long": 64,
    "long long": 64, "long int": 64, "float": 32, "double": 64,
}

_string_ids = itertools.count(0x10000)


class _Local:
    """A resolved name binding inside a function scope."""

    __slots__ = ("kind", "var", "ctype")

    def __init__(self, kind: str, var: Var, ctype: ir.Type):
        self.kind = kind  # 'reg' | 'slot' | 'param'
        self.var = var
        self.ctype = ctype  # the declared (C-level) type


class UnitLowerer:
    """Lowers one translation unit into an :class:`~repro.ir.Module`."""

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.module = Module(unit.filename)
        self.module.source_lines = unit.source_lines
        self.typedefs: Dict[str, ast.TypeRef] = {}
        self.enum_constants: Dict[str, int] = {}
        self.function_defs: Dict[str, ast.FunctionDef] = {}
        self.global_aggregates: Set[str] = set()

    # -- type resolution -----------------------------------------------------

    def resolve_type(self, ref: Optional[ast.TypeRef], depth: int = 0) -> ir.Type:
        if ref is None:
            return ir.INT
        if depth > 32:
            raise SemaError(f"cyclic typedef {ref.base!r}", self.unit.filename, ref.line)
        if ref.func_params is not None:
            base: ir.Type = ir.FunctionType(self._resolve_base(ref, depth), ())
        else:
            base = self._resolve_base(ref, depth)
        for _ in range(ref.pointer_depth):
            base = PointerType(base)
        for dim in reversed(ref.array_dims):
            base = ir.ArrayType(base, dim)
        return base

    def _resolve_base(self, ref: ast.TypeRef, depth: int) -> ir.Type:
        name = ref.base
        if name.startswith("struct "):
            return self.module.get_struct(name[len("struct "):])
        if name == "void":
            return ir.VOID
        width = _INT_WIDTHS.get(name.replace("unsigned", "").replace("signed", "").strip() or "int")
        if "unsigned" in name or "signed" in name:
            return IntType(width or 32)
        if width is not None:
            return IntType(width)
        alias = self.typedefs.get(name)
        if alias is not None:
            resolved = self.resolve_type(alias, depth + 1)
            return resolved
        raise SemaError(f"unknown type {name!r}", self.unit.filename, ref.line)

    @staticmethod
    def sizeof(ty: ir.Type) -> int:
        if isinstance(ty, IntType):
            return max(1, ty.width // 8)
        if isinstance(ty, PointerType) or isinstance(ty, ir.FunctionType):
            return 8
        if isinstance(ty, StructType):
            return max(8, 8 * len(ty.fields))
        if isinstance(ty, ir.ArrayType):
            return max(1, ty.length) * UnitLowerer.sizeof(ty.element)
        return 8

    # -- top-level ------------------------------------------------------------

    def lower(self) -> Module:
        # Pass 1: types, enums, prototypes, globals.
        for decl in self.unit.decls:
            if isinstance(decl, ast.TypedefDecl):
                self.typedefs[decl.name] = decl.type
            elif isinstance(decl, ast.StructDef):
                if decl.name.startswith("@forward "):
                    self.module.get_struct(decl.name[len("@forward struct "):])
                    continue
                if decl.name.startswith("enum "):
                    for enumerator in decl.fields:
                        value = enumerator.init.expr.value if enumerator.init else 0
                        self.enum_constants[enumerator.name] = value
                else:
                    struct = self.module.get_struct(decl.name)
                    fields = {f.name: self.resolve_type(f.type) for f in decl.fields}
                    if not struct.is_complete:
                        struct.set_fields(fields)
            elif isinstance(decl, ast.FunctionDef):
                self._declare_function(decl)
                if decl.body is not None:
                    self.function_defs[decl.name] = decl
            elif isinstance(decl, ast.GlobalVar):
                self._lower_global(decl)
        # Pass 2: function bodies.
        for fdef in self.function_defs.values():
            FunctionLowerer(self, fdef).lower()
        return self.module

    def _declare_function(self, decl: ast.FunctionDef) -> ir.Function:
        params = [
            Var(f"{decl.name}.{p.name}", self.resolve_type(p.type), source_name=p.name)
            for p in decl.params
        ]
        func = ir.Function(
            decl.name,
            params,
            self.resolve_type(decl.return_type),
            self.unit.filename,
            decl.line,
            decl.is_static,
            decl.variadic,
        )
        return self.module.add_function(func)

    def _lower_global(self, decl: ast.GlobalVar) -> None:
        d = decl.declarator
        ctype = self.resolve_type(d.type)
        if isinstance(ctype, (StructType, ir.ArrayType)):
            # Aggregates are referenced through their address.
            var = Var(f"@{d.name}", PointerType(ctype), source_name=d.name,
                      is_global=True, is_aggregate=True)
            self.global_aggregates.add(d.name)
        else:
            var = Var(f"@{d.name}", ctype, source_name=d.name, is_global=True)
        self.module.add_global(var)
        init = d.init
        if init is not None and init.fields is not None and isinstance(ctype, StructType):
            for field_name, field_init in init.fields:
                expr = field_init.expr
                if isinstance(expr, ast.Name) and self._is_function_name(expr.ident):
                    self.module.add_registration(
                        ir.InterfaceRegistration(
                            d.name, ctype, field_name, expr.ident, SourceLoc(self.unit.filename, field_init.line)
                        )
                    )

    def _is_function_name(self, name: str) -> bool:
        if name in self.module.functions:
            return True
        return any(isinstance(d, ast.FunctionDef) and d.name == name for d in self.unit.decls)


class _LoopTargets:
    __slots__ = ("break_block", "continue_block")

    def __init__(self, break_block, continue_block):
        self.break_block = break_block
        self.continue_block = continue_block


class FunctionLowerer:
    """Lowers one function body.  See module docstring for conventions."""

    def __init__(self, unit: UnitLowerer, fdef: ast.FunctionDef):
        self.unit = unit
        self.fdef = fdef
        self.func = unit.module.functions[fdef.name]
        self.builder = IRBuilder(self.func)
        self.scopes: List[Dict[str, _Local]] = [{}]
        self.labels: Dict[str, ir.BasicBlock] = {}
        self.loop_stack: List[_LoopTargets] = []
        self.switch_breaks: List[ir.BasicBlock] = []
        self.address_taken: Set[str] = set()
        self._sc_ids = itertools.count(1)
        #: per-source-name declaration counter: a shadowing declaration in
        #: a nested scope must be a distinct IR variable
        self._decl_counts: Dict[str, int] = {}

    def _loc(self, node: ast.Node) -> SourceLoc:
        return SourceLoc(self.unit.unit.filename, node.line)

    def error(self, message: str, node: ast.Node) -> SemaError:
        return SemaError(message, self.unit.unit.filename, node.line)

    # -- name handling ---------------------------------------------------------

    def _bind(self, name: str, local: _Local) -> None:
        self.scopes[-1][name] = local

    def _lookup(self, name: str) -> Optional[_Local]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def _sc_var(self, ty: ir.Type) -> Var:
        """A multiple-assignment result variable for short-circuit/ternary
        values (named without the % prefix: temps must be single-def)."""
        return Var(f"{self.func.name}.$sc{next(self._sc_ids)}", ty)

    # -- entry ------------------------------------------------------------------

    def lower(self) -> None:
        self._collect_address_taken(self.fdef.body)
        entry = self.builder.new_block("entry")
        self.builder.position_at(entry)
        self.builder.set_loc(SourceLoc(self.unit.unit.filename, self.fdef.line))
        for param, pdecl in zip(self.func.params, self.fdef.params):
            ctype = self.unit.resolve_type(pdecl.type)
            if isinstance(ctype, ir.ArrayType):
                # Arrays decay to pointers.
                ctype = PointerType(ctype.element)
            if pdecl.name in self.address_taken:
                slot = self.builder.alloc(ctype, hint=f"slot.{pdecl.name}")
                self.builder.store(slot, param)
                self._bind(pdecl.name, _Local("slot", slot, ctype))
            else:
                self._bind(pdecl.name, _Local("param", param, ctype))
        self._lower_block(self.fdef.body)
        # Terminate any fall-through blocks (implicit return).
        for block in self.func.blocks:
            if not block.is_terminated:
                self.builder.position_at(block)
                if self.func.return_type.is_void():
                    self.builder.ret()
                else:
                    self.builder.ret(Const(0, self.func.return_type))

    def _collect_address_taken(self, node) -> None:
        """Pre-pass: find ``&name`` so those locals get memory slots."""
        if node is None:
            return
        if isinstance(node, ast.Unary) and node.op == "&" and isinstance(node.operand, ast.Name):
            self.address_taken.add(node.operand.ident)
        for value in vars(node).values():
            if isinstance(value, ast.Node):
                self._collect_address_taken(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.Node):
                        self._collect_address_taken(item)
                    elif isinstance(item, tuple):
                        for sub in item:
                            if isinstance(sub, ast.Node):
                                self._collect_address_taken(sub)
                            elif isinstance(sub, list):
                                for s2 in sub:
                                    if isinstance(s2, ast.Node):
                                        self._collect_address_taken(s2)

    # -- statements ---------------------------------------------------------------

    def _lower_block(self, block: ast.Block) -> None:
        self.scopes.append({})
        for stmt in block.statements:
            self._lower_stmt(stmt)
        self.scopes.pop()

    def _start_dead_block(self) -> None:
        """After goto/return, later statements in the block are unreachable;
        give them a fresh block so lowering can proceed."""
        dead = self.builder.new_block("dead")
        self.builder.position_at(dead)

    def _lower_stmt(self, stmt: ast.Stmt) -> None:
        if self.builder.is_terminated and not isinstance(stmt, ast.LabelStmt):
            self._start_dead_block()
        self.builder.set_loc(self._loc(stmt))
        if isinstance(stmt, ast.Block):
            self._lower_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.declarators:
                self._lower_local_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.SwitchStmt):
            self._lower_switch(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.builder.ret(value)
        elif isinstance(stmt, ast.BreakStmt):
            target = self.switch_breaks[-1] if self.switch_breaks and (
                not self.loop_stack or self._innermost_is_switch()
            ) else (self.loop_stack[-1].break_block if self.loop_stack else None)
            if target is None:
                raise self.error("break outside loop/switch", stmt)
            self.builder.jump(target)
        elif isinstance(stmt, ast.ContinueStmt):
            if not self.loop_stack:
                raise self.error("continue outside loop", stmt)
            self.builder.jump(self.loop_stack[-1].continue_block)
        elif isinstance(stmt, ast.GotoStmt):
            self.builder.jump(self._label_block(stmt.label))
        elif isinstance(stmt, ast.LabelStmt):
            block = self._label_block(stmt.label)
            if not self.builder.is_terminated:
                self.builder.jump(block)
            self.builder.position_at(block)
            if stmt.stmt is not None:
                self._lower_stmt(stmt.stmt)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:
            raise self.error(f"unsupported statement {type(stmt).__name__}", stmt)

    def _innermost_is_switch(self) -> bool:
        # Tracks whether the nearest breakable construct is a switch: the
        # switch lowering pushes onto switch_breaks and pops eagerly, so a
        # non-empty switch_breaks always wins (switches nest inside loops in
        # the corpus only this way).
        return True

    def _label_block(self, label: str) -> ir.BasicBlock:
        if label not in self.labels:
            self.labels[label] = self.builder.new_block(f"label.{label}")
        return self.labels[label]

    def _lower_local_decl(self, decl: ast.Declarator) -> None:
        ctype = self.unit.resolve_type(decl.type)
        name = decl.name
        count = self._decl_counts.get(name, 0)
        self._decl_counts[name] = count + 1
        qualified = f"{self.func.name}.{name}" if count == 0 else f"{self.func.name}.{name}.{count + 1}"
        if isinstance(ctype, (StructType, ir.ArrayType)) or name in self.address_taken:
            pointee = ctype
            slot = self.builder.alloc(pointee, hint=f"slot.{name}")
            self._bind(name, _Local("slot", slot, ctype))
            if decl.init is not None:
                self._lower_slot_init(slot, ctype, decl.init)
            return
        var = Var(qualified, ctype, source_name=name)
        self._bind(name, _Local("reg", var, ctype))
        if decl.init is not None and decl.init.expr is not None:
            value = self.lower_expr(decl.init.expr)
            self.builder.move(var, self._coerce(value, ctype))
        else:
            self.builder.decl_local(var)

    def _lower_slot_init(self, slot: Var, ctype: ir.Type, init: ast.Initializer) -> None:
        if init.expr is not None:
            self.builder.store(slot, self.lower_expr(init.expr))
        elif init.fields is not None:
            for field_name, field_init in init.fields:
                if field_init.expr is None:
                    continue
                addr = self.builder.gep(slot, field_name)
                self.builder.store(addr, self.lower_expr(field_init.expr))
        elif init.elements is not None:
            if not init.elements or all(
                e.expr is not None and isinstance(e.expr, ast.IntLit) and e.expr.value == 0
                for e in init.elements
            ):
                # {0} / {} zero-initialize the aggregate.
                self.builder.memset(slot, Const(0), Const(UnitLowerer.sizeof(ctype)))
            else:
                for index, element in enumerate(init.elements):
                    if element.expr is None:
                        continue
                    addr = self.builder.gep(slot, f"[{index}]", index=Const(index))
                    self.builder.store(addr, self.lower_expr(element.expr))

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        then_bb = self.builder.new_block("if.then")
        else_bb = self.builder.new_block("if.else") if stmt.else_body else None
        end_bb = self.builder.new_block("if.end")
        self.lower_condition(stmt.cond, then_bb, else_bb or end_bb)
        self.builder.position_at(then_bb)
        self._lower_stmt(stmt.then_body)
        if not self.builder.is_terminated:
            self.builder.jump(end_bb)
        if else_bb is not None:
            self.builder.position_at(else_bb)
            self._lower_stmt(stmt.else_body)
            if not self.builder.is_terminated:
                self.builder.jump(end_bb)
        self.builder.position_at(end_bb)

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        cond_bb = self.builder.new_block("while.cond")
        body_bb = self.builder.new_block("while.body")
        end_bb = self.builder.new_block("while.end")
        self.builder.jump(body_bb if stmt.is_do_while else cond_bb)
        self.builder.position_at(cond_bb)
        self.lower_condition(stmt.cond, body_bb, end_bb)
        self.builder.position_at(body_bb)
        self.loop_stack.append(_LoopTargets(end_bb, cond_bb))
        self._lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.is_terminated:
            self.builder.jump(cond_bb)
        self.builder.position_at(end_bb)

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        self.scopes.append({})
        if stmt.init is not None:
            self._lower_stmt(stmt.init)
        cond_bb = self.builder.new_block("for.cond")
        body_bb = self.builder.new_block("for.body")
        step_bb = self.builder.new_block("for.step")
        end_bb = self.builder.new_block("for.end")
        self.builder.jump(cond_bb)
        self.builder.position_at(cond_bb)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body_bb, end_bb)
        else:
            self.builder.jump(body_bb)
        self.builder.position_at(body_bb)
        self.loop_stack.append(_LoopTargets(end_bb, step_bb))
        self._lower_stmt(stmt.body)
        self.loop_stack.pop()
        if not self.builder.is_terminated:
            self.builder.jump(step_bb)
        self.builder.position_at(step_bb)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.builder.jump(cond_bb)
        self.builder.position_at(end_bb)
        self.scopes.pop()

    def _lower_switch(self, stmt: ast.SwitchStmt) -> None:
        value = self.lower_expr(stmt.value)
        end_bb = self.builder.new_block("switch.end")
        case_blocks = [self.builder.new_block(f"case.{label if label is not None else 'default'}") for label, _ in stmt.cases]
        # Dispatch chain.
        default_bb = end_bb
        for (label, _), block in zip(stmt.cases, case_blocks):
            if label is None:
                default_bb = block
        for (label, _), block in zip(stmt.cases, case_blocks):
            if label is None:
                continue
            cmp = self.builder.binop("eq", value, Const(label))
            next_bb = self.builder.new_block("switch.next")
            self.builder.branch(cmp, block, next_bb)
            self.builder.position_at(next_bb)
        self.builder.jump(default_bb)
        # Case bodies with C fall-through.
        self.switch_breaks.append(end_bb)
        for index, ((_, body), block) in enumerate(zip(stmt.cases, case_blocks)):
            self.builder.position_at(block)
            for inner in body:
                self._lower_stmt(inner)
            if not self.builder.is_terminated:
                fallthrough = case_blocks[index + 1] if index + 1 < len(case_blocks) else end_bb
                self.builder.jump(fallthrough)
        self.switch_breaks.pop()
        self.builder.position_at(end_bb)

    # -- conditions -----------------------------------------------------------------

    def lower_condition(self, expr: ast.Expr, true_bb: ir.BasicBlock, false_bb: ir.BasicBlock) -> None:
        self.builder.set_loc(self._loc(expr))
        if isinstance(expr, ast.Binary) and expr.op == "&&":
            mid = self.builder.new_block("land")
            self.lower_condition(expr.lhs, mid, false_bb)
            self.builder.position_at(mid)
            self.lower_condition(expr.rhs, true_bb, false_bb)
            return
        if isinstance(expr, ast.Binary) and expr.op == "||":
            mid = self.builder.new_block("lor")
            self.lower_condition(expr.lhs, true_bb, mid)
            self.builder.position_at(mid)
            self.lower_condition(expr.rhs, true_bb, false_bb)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self.lower_condition(expr.operand, false_bb, true_bb)
            return
        if isinstance(expr, ast.Binary) and expr.op in ("==", "!=", "<", "<=", ">", ">="):
            op = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}[expr.op]
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            lhs, rhs = self._match_null(lhs, rhs)
            cmp = self.builder.binop(op, lhs, rhs)
            self.builder.branch(cmp, true_bb, false_bb)
            return
        value = self.lower_expr(expr)
        zero = Const(0, value.type) if isinstance(value.type, PointerType) else Const(0)
        cmp = self.builder.binop("ne", value, zero)
        self.builder.branch(cmp, true_bb, false_bb)

    @staticmethod
    def _match_null(lhs: ir.Value, rhs: ir.Value) -> Tuple[ir.Value, ir.Value]:
        """Give a 0 literal a pointer type when compared against a pointer so
        the NPD checker sees a null comparison."""
        if isinstance(lhs.type, PointerType) and isinstance(rhs, Const) and rhs.value == 0:
            rhs = Const(0, lhs.type)
        elif isinstance(rhs.type, PointerType) and isinstance(lhs, Const) and lhs.value == 0:
            lhs = Const(0, rhs.type)
        return lhs, rhs

    # -- expressions -------------------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> ir.Value:
        self.builder.set_loc(self._loc(expr))
        if isinstance(expr, ast.IntLit):
            return Const(expr.value)
        if isinstance(expr, ast.CharLit):
            return Const(ord(expr.value[0]) if expr.value else 0, IntType(8))
        if isinstance(expr, ast.StrLit):
            return Const(next(_string_ids), PointerType(IntType(8)))
        if isinstance(expr, ast.NullLit):
            return Const(0, ir.VOID_PTR)
        if isinstance(expr, ast.Name):
            return self._lower_name(expr)
        if isinstance(expr, ast.SizeOf):
            if expr.target_type is not None:
                return Const(UnitLowerer.sizeof(self.unit.resolve_type(expr.target_type)))
            return Const(8)
        if isinstance(expr, ast.Cast):
            value = self.lower_expr(expr.operand)
            target = self.unit.resolve_type(expr.target_type)
            if isinstance(value, Const):
                return Const(value.value, target)
            if isinstance(target, PointerType) and not isinstance(value.type, PointerType):
                # Casting an integer to a pointer: keep the value flowing
                # through a MOVE so aliasing still tracks it.
                dst = self.builder.temp(target, "cast")
                self.builder.move(dst, value)
                return dst
            return value
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._lower_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.Ternary):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.CallExpr):
            return self._lower_call(expr)
        if isinstance(expr, ast.Member):
            addr = self.lower_addr(expr)
            return self.builder.load(addr, self._member_type(expr))
        if isinstance(expr, ast.IndexExpr):
            addr = self.lower_addr(expr)
            return self.builder.load(addr)
        raise self.error(f"unsupported expression {type(expr).__name__}", expr)

    def _lower_name(self, expr: ast.Name) -> ir.Value:
        name = expr.ident
        local = self._lookup(name)
        if local is not None:
            if local.kind == "slot":
                if isinstance(local.ctype, ir.ArrayType):
                    return local.var  # arrays decay to their address
                if isinstance(local.ctype, StructType):
                    return local.var
                return self.builder.load(local.var, local.ctype)
            return local.var
        if name in self.unit.enum_constants:
            return Const(self.unit.enum_constants[name])
        if name in self.unit.module.globals:
            return self.unit.module.globals[name]
        gvar = self.unit.module.globals.get(f"@{name}")
        if gvar is not None:
            return gvar
        if name in self.unit.module.functions or self.unit._is_function_name(name):
            return Var(f"@fn.{name}", ir.VOID_PTR, source_name=name, is_global=True)
        # Unknown identifier: mini-C follows C89 and assumes an extern int.
        # The corpus never relies on this, but hand-written examples may.
        return Var(f"@{name}", ir.INT, source_name=name, is_global=True)

    def _member_type(self, expr: ast.Member) -> ir.Type:
        base_ty = self._expr_ctype(expr.base)
        struct: Optional[StructType] = None
        if expr.arrow and isinstance(base_ty, PointerType) and isinstance(base_ty.pointee, StructType):
            struct = base_ty.pointee
        elif not expr.arrow and isinstance(base_ty, StructType):
            struct = base_ty
        if struct is not None and struct.has_field(expr.field_name):
            return struct.field_type(expr.field_name)
        return ir.INT

    def _expr_ctype(self, expr: ast.Expr) -> ir.Type:
        """Best-effort static type of an expression (drives field types)."""
        if isinstance(expr, ast.Name):
            local = self._lookup(expr.ident)
            if local is not None:
                return local.ctype
            gvar = self.unit.module.globals.get(f"@{expr.ident}")
            if gvar is not None:
                ty = gvar.type
                if isinstance(ty, PointerType) and isinstance(ty.pointee, (StructType, ir.ArrayType)):
                    return ty.pointee
                return ty
            return ir.INT
        if isinstance(expr, ast.Member):
            return self._member_type(expr)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            inner = self._expr_ctype(expr.operand)
            return inner.pointee or ir.INT if isinstance(inner, PointerType) else ir.INT
        if isinstance(expr, ast.Unary) and expr.op == "&":
            return PointerType(self._expr_ctype(expr.operand))
        if isinstance(expr, ast.IndexExpr):
            base = self._expr_ctype(expr.base)
            if isinstance(base, ir.ArrayType):
                return base.element
            if isinstance(base, PointerType):
                return base.pointee or ir.INT
            return ir.INT
        if isinstance(expr, ast.Cast):
            return self.unit.resolve_type(expr.target_type)
        if isinstance(expr, ast.CallExpr) and isinstance(expr.callee, ast.Name):
            func = self.unit.module.functions.get(expr.callee.ident)
            if func is not None:
                return func.return_type
        if isinstance(expr, ast.Assign):
            return self._expr_ctype(expr.target)
        return ir.INT

    def _lower_unary(self, expr: ast.Unary) -> ir.Value:
        if expr.op == "*":
            ptr = self._as_var(self.lower_expr(expr.operand))
            pointee = self._expr_ctype(expr)
            return self.builder.load(ptr, pointee)
        if expr.op == "&":
            return self.lower_addr(expr.operand)
        if expr.op == "!":
            value = self.lower_expr(expr.operand)
            zero = Const(0, value.type) if isinstance(value.type, PointerType) else Const(0)
            return self.builder.binop("eq", value, zero)
        if expr.op == "-":
            value = self.lower_expr(expr.operand)
            if isinstance(value, Const):
                return Const(-value.value, value.type)
            return self.builder.unop("neg", value)
        if expr.op == "~":
            value = self.lower_expr(expr.operand)
            if isinstance(value, Const):
                return Const(~value.value, value.type)
            return self.builder.unop("not", value)
        if expr.op in ("++", "--", "p++", "p--"):
            return self._lower_incdec(expr)
        raise self.error(f"unsupported unary operator {expr.op!r}", expr)

    def _lower_incdec(self, expr: ast.Unary) -> ir.Value:
        op = "add" if "+" in expr.op else "sub"
        old = self.lower_expr(expr.operand)
        if expr.op.startswith("p") and isinstance(old, Var):
            # Post-inc/dec yields the value *before* the update; snapshot it,
            # since `old` is the live variable about to change.
            snapshot = self.builder.temp(old.type, "old")
            self.builder.move(snapshot, old)
            old = snapshot
        new = self.builder.binop(op, old, Const(1), ty=old.type if isinstance(old.type, IntType) else ir.INT)
        self._store_to(expr.operand, new)
        return old if expr.op.startswith("p") else new

    def _lower_binary(self, expr: ast.Binary) -> ir.Value:
        if expr.op == ",":
            self.lower_expr(expr.lhs)
            return self.lower_expr(expr.rhs)
        if expr.op in ("&&", "||"):
            result = self._sc_var(ir.INT)
            true_bb = self.builder.new_block("sc.true")
            false_bb = self.builder.new_block("sc.false")
            end_bb = self.builder.new_block("sc.end")
            self.lower_condition(expr, true_bb, false_bb)
            self.builder.position_at(true_bb)
            self.builder.move(result, Const(1))
            self.builder.jump(end_bb)
            self.builder.position_at(false_bb)
            self.builder.move(result, Const(0))
            self.builder.jump(end_bb)
            self.builder.position_at(end_bb)
            return result
        op_map = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
            "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
            "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
        }
        op = op_map.get(expr.op)
        if op is None:
            raise self.error(f"unsupported binary operator {expr.op!r}", expr)
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        if op in ("eq", "ne", "lt", "le", "gt", "ge"):
            lhs, rhs = self._match_null(lhs, rhs)
        result_ty = lhs.type if isinstance(lhs.type, PointerType) and op in ("add", "sub") else ir.INT
        return self.builder.binop(op, lhs, rhs, ty=result_ty)

    def _lower_ternary(self, expr: ast.Ternary) -> ir.Value:
        result = self._sc_var(ir.VOID_PTR if isinstance(self._expr_ctype(expr.then_expr), PointerType) else ir.INT)
        then_bb = self.builder.new_block("ter.then")
        else_bb = self.builder.new_block("ter.else")
        end_bb = self.builder.new_block("ter.end")
        self.lower_condition(expr.cond, then_bb, else_bb)
        self.builder.position_at(then_bb)
        self.builder.move(result, self.lower_expr(expr.then_expr))
        self.builder.jump(end_bb)
        self.builder.position_at(else_bb)
        self.builder.move(result, self.lower_expr(expr.else_expr))
        self.builder.jump(end_bb)
        self.builder.position_at(end_bb)
        return result

    def _lower_assign(self, expr: ast.Assign) -> ir.Value:
        if expr.op:
            op_map = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
                      "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr"}
            current = self.lower_expr(expr.target)
            rhs = self.lower_expr(expr.value)
            value: ir.Value = self.builder.binop(op_map[expr.op], current, rhs)
        else:
            value = self.lower_expr(expr.value)
        self._store_to(expr.target, value)
        return value

    def _store_to(self, target: ast.Expr, value: ir.Value) -> None:
        if isinstance(target, ast.Name):
            local = self._lookup(target.ident)
            if local is not None:
                if local.kind == "slot":
                    self.builder.store(local.var, value)
                else:
                    self.builder.move(local.var, self._coerce(value, local.var.type))
                return
            gvar = self.unit.module.globals.get(f"@{target.ident}")
            if gvar is None:
                gvar = Var(f"@{target.ident}", value.type, source_name=target.ident, is_global=True)
                self.unit.module.add_global(gvar)
            if target.ident in self.unit.global_aggregates:
                # The global Var *is* the aggregate's address.
                self.builder.store(gvar, value)
            else:
                self.builder.move(gvar, self._coerce(value, gvar.type))
            return
        if isinstance(target, (ast.Member, ast.IndexExpr)):
            addr = self.lower_addr(target)
            self.builder.store(addr, value)
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            ptr = self._as_var(self.lower_expr(target.operand))
            self.builder.store(ptr, value)
            return
        if isinstance(target, ast.Cast):
            self._store_to(target.operand, value)
            return
        raise self.error("expression is not assignable", target)

    def _coerce(self, value: ir.Value, ty: ir.Type) -> ir.Value:
        if isinstance(value, Const) and isinstance(ty, PointerType) and value.value == 0:
            return Const(0, ty)
        return value

    def _as_var(self, value: ir.Value) -> Var:
        if isinstance(value, Var):
            return value
        tmp = self.builder.temp(value.type, "ptr")
        self.builder.move(tmp, value)
        return tmp

    # -- lvalue addresses ------------------------------------------------------

    def lower_addr(self, expr: ast.Expr) -> Var:
        self.builder.set_loc(self._loc(expr))
        if isinstance(expr, ast.Name):
            local = self._lookup(expr.ident)
            if local is not None:
                if local.kind == "slot":
                    return local.var
                raise self.error(f"cannot take address of register variable {expr.ident!r}", expr)
            gvar = self.unit.module.globals.get(f"@{expr.ident}")
            if gvar is not None:
                if isinstance(gvar.type, PointerType) and isinstance(gvar.type.pointee, (StructType, ir.ArrayType)):
                    return gvar
                return self.builder.addr_of(gvar)
            raise self.error(f"unknown variable {expr.ident!r}", expr)
        if isinstance(expr, ast.Member):
            if expr.arrow:
                base = self._as_var(self.lower_expr(expr.base))
            else:
                base = self.lower_addr(expr.base)
            field_ty = self._member_type(expr)
            return self.builder.gep(base, expr.field_name, PointerType(field_ty))
        if isinstance(expr, ast.IndexExpr):
            base_ty = self._expr_ctype(expr.base)
            if isinstance(base_ty, ir.ArrayType):
                base = self.lower_addr(expr.base) if isinstance(expr.base, (ast.Member, ast.IndexExpr)) else self._as_var(self.lower_expr(expr.base))
            else:
                base = self._as_var(self.lower_expr(expr.base))
            index = self.lower_expr(expr.index)
            label = f"[{index.value}]" if isinstance(index, Const) else f"[{index.name}]"
            elem_ty = base_ty.element if isinstance(base_ty, ir.ArrayType) else (
                base_ty.pointee if isinstance(base_ty, PointerType) and base_ty.pointee else ir.INT
            )
            return self.builder.gep(base, label, PointerType(elem_ty), index=index)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._as_var(self.lower_expr(expr.operand))
        if isinstance(expr, ast.Cast):
            return self.lower_addr(expr.operand)
        raise self.error(f"cannot take address of {type(expr).__name__}", expr)

    # -- calls --------------------------------------------------------------------

    def _lower_call(self, expr: ast.CallExpr) -> ir.Value:
        callee = expr.callee
        if isinstance(callee, ast.Name):
            name = callee.ident
            if self._lookup(name) is None:
                intrinsic = self._try_intrinsic(name, expr)
                if intrinsic is not None:
                    return intrinsic
                func = self.unit.module.functions.get(name)
                ret_ty = func.return_type if func is not None else self._guess_return_type(name)
                args = [self.lower_expr(a) for a in expr.args]
                dst = self.builder.call(name, args, None if ret_ty.is_void() else ret_ty)
                return dst if dst is not None else Const(0)
        # Function-pointer call (PATA does not follow these, §7).
        fn = self._as_var(self.lower_expr(callee))
        args = [self.lower_expr(a) for a in expr.args]
        dst = self.builder.call_indirect(fn, args, ir.INT)
        return dst if dst is not None else Const(0)

    @staticmethod
    def _guess_return_type(name: str) -> ir.Type:
        # Unknown externals default to int, the C89 rule; *_alloc-ish names
        # get a pointer so null checks on their results type-match.
        if any(tag in name for tag in ("alloc", "create", "get_", "lookup", "find")):
            return ir.VOID_PTR
        return ir.INT

    def _try_intrinsic(self, name: str, expr: ast.CallExpr) -> Optional[ir.Value]:
        if name in ALLOCATORS:
            size_index, zeroed, may_fail = ALLOCATORS[name]
            for index, arg in enumerate(expr.args):
                if index != size_index:
                    self.lower_expr(arg)
            size = self.lower_expr(expr.args[size_index]) if size_index < len(expr.args) else Const(8)
            return self.builder.malloc(size, zeroed, may_fail, name)
        if name in DEALLOCATORS:
            arg_index = DEALLOCATORS[name]
            ptr = self._as_var(self.lower_expr(expr.args[arg_index]))
            for index, arg in enumerate(expr.args):
                if index != arg_index:
                    self.lower_expr(arg)
            self.builder.free(ptr, name)
            return Const(0)
        if name in MEMSET_APIS:
            dst_index, size_index = MEMSET_APIS[name]
            dst = self._as_var(self.lower_expr(expr.args[dst_index]))
            value = self.lower_expr(expr.args[1]) if name == "memset" and len(expr.args) > 1 else Const(0)
            size = self.lower_expr(expr.args[size_index]) if size_index < len(expr.args) else Const(8)
            self.builder.memset(dst, value, size)
            return Const(0)
        if name in LOCK_APIS:
            arg_index, acquires = LOCK_APIS[name]
            lock = self._as_var(self.lower_expr(expr.args[arg_index]))
            for index, arg in enumerate(expr.args):
                if index != arg_index:
                    self.lower_expr(arg)
            if acquires:
                self.builder.lock(lock, name)
            else:
                self.builder.unlock(lock, name)
            return Const(0)
        return None


def lower_unit(unit: ast.TranslationUnit) -> Module:
    """Lower a parsed translation unit to an IR module."""
    return UnitLowerer(unit).lower()


def compile_source(source: str, filename: str = "<input>") -> Module:
    """Parse + lower mini-C source into an IR module (the Clang stand-in)."""
    return lower_unit(parse(source, filename))
