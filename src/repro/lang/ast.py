"""Abstract syntax tree for mini-C.

All nodes carry a source line for diagnostics and bug reports.  Types are
represented syntactically (:class:`TypeRef`) and resolved during lowering,
so that forward references between structs work naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class Node:
    line: int = 0


# --------------------------------------------------------------------------
# Types (syntactic)
# --------------------------------------------------------------------------


@dataclass
class TypeRef(Node):
    """A syntactic type: base name + pointer depth + array dims.

    ``base`` is ``"int"``/``"char"``/``"void"``/... or ``"struct NAME"`` or a
    typedef name.  ``array_dims`` holds constant lengths (0 = unsized).
    ``func_params`` is set for function-pointer declarators.
    """

    base: str = "int"
    pointer_depth: int = 0
    array_dims: Tuple[int, ...] = ()
    func_params: Optional[Tuple["TypeRef", ...]] = None

    def with_pointers(self, extra: int) -> "TypeRef":
        return TypeRef(self.line, self.base, self.pointer_depth + extra, self.array_dims, self.func_params)

    def __str__(self) -> str:
        return self.base + "*" * self.pointer_depth + "".join(f"[{d}]" for d in self.array_dims)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class CharLit(Expr):
    value: str = "\0"


@dataclass
class StrLit(Expr):
    value: str = ""


@dataclass
class NullLit(Expr):
    pass


@dataclass
class Name(Expr):
    ident: str = ""


@dataclass
class Unary(Expr):
    """op in {'-', '~', '!', '*', '&', '++', '--', 'p++', 'p--'}."""

    op: str = "-"
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = "+"
    lhs: Expr = None
    rhs: Expr = None


@dataclass
class Assign(Expr):
    """``target op= value``; op is '' for plain assignment."""

    target: Expr = None
    value: Expr = None
    op: str = ""


@dataclass
class Ternary(Expr):
    cond: Expr = None
    then_expr: Expr = None
    else_expr: Expr = None


@dataclass
class CallExpr(Expr):
    callee: Expr = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    base: Expr = None
    field_name: str = ""
    arrow: bool = False


@dataclass
class IndexExpr(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Cast(Expr):
    target_type: TypeRef = None
    operand: Expr = None


@dataclass
class SizeOf(Expr):
    target_type: Optional[TypeRef] = None
    operand: Optional[Expr] = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Declarator(Node):
    name: str = ""
    type: TypeRef = None
    init: Optional["Initializer"] = None


@dataclass
class Initializer(Node):
    """Either a scalar expression or a brace list of designated fields."""

    expr: Optional[Expr] = None
    fields: Optional[List[Tuple[str, "Initializer"]]] = None
    elements: Optional[List["Initializer"]] = None


@dataclass
class DeclStmt(Stmt):
    declarators: List[Declarator] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then_body: Stmt = None
    else_body: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: Stmt = None
    is_do_while: bool = False


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class GotoStmt(Stmt):
    label: str = ""


@dataclass
class LabelStmt(Stmt):
    label: str = ""
    stmt: Optional[Stmt] = None


@dataclass
class SwitchStmt(Stmt):
    value: Expr = None
    cases: List[Tuple[Optional[int], List[Stmt]]] = field(default_factory=list)


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class EmptyStmt(Stmt):
    pass


# --------------------------------------------------------------------------
# Top-level declarations
# --------------------------------------------------------------------------


@dataclass
class StructDef(Node):
    name: str = ""
    fields: List[Declarator] = field(default_factory=list)


@dataclass
class TypedefDecl(Node):
    name: str = ""
    type: TypeRef = None


@dataclass
class ParamDecl(Node):
    name: str = ""
    type: TypeRef = None


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: TypeRef = None
    params: List[ParamDecl] = field(default_factory=list)
    body: Optional[Block] = None  # None for prototypes
    is_static: bool = False
    variadic: bool = False


@dataclass
class GlobalVar(Node):
    declarator: Declarator = None
    is_static: bool = False


@dataclass
class TranslationUnit(Node):
    filename: str = "<input>"
    decls: List[Node] = field(default_factory=list)
    source_lines: int = 0
