"""Typestate events.

The engine (repro.core.analyzer) walks each control-flow path and, after
updating the alias graph for an instruction, synthesizes the events below
and feeds them to the registered checkers.  The event vocabulary is the
union of the FSM input alphabets of Table 2 plus the extra checkers of
§5.5 (double-lock, array-index-underflow, division-by-zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..ir import Instruction, Value, Var


class BugKind(Enum):
    """Bug categories detected by the shipped checkers."""

    NPD = "null-pointer dereference"
    UVA = "uninitialized-variable access"
    ML = "memory leak"
    DOUBLE_LOCK = "double lock/unlock"
    ARRAY_UNDERFLOW = "array index underflow"
    DIV_BY_ZERO = "division by zero"
    TAINT = "tainted data reaches sensitive sink"
    RACE = "data race on shared state"

    @property
    def short(self) -> str:
        return self.name


@dataclass
class Event:
    """Base event; ``inst`` is the originating instruction."""

    inst: Instruction


@dataclass
class AssignNullEvent(Event):
    """``p = NULL`` or ``*q = NULL`` — FSM input ``ass_null``.

    For stores through a pointer the affected location has no variable of
    its own; ``node_key`` then carries the alias-graph node uid of the
    stored location (aware mode only)."""

    ptr: Var
    node_key: Optional[int] = None


@dataclass
class BranchNullEvent(Event):
    """A branch resolved a null test of ``ptr``: ``is_null`` tells which arm
    was taken — ``br_null`` (True) or ``br_nonnull`` (False)."""

    ptr: Var
    is_null: bool


@dataclass
class DerefEvent(Event):
    """``ptr`` was dereferenced: Load/Store through it, or as the base of a
    field access (``p->f`` requires a valid ``p``) — FSM input ``deref``."""

    ptr: Var


@dataclass
class AllocEvent(Event):
    """An object came into existence.  ``heap`` distinguishes malloc-style
    allocations from locals; ``zeroed`` marks calloc/kzalloc; ``may_fail``
    marks allocators that can return NULL."""

    ptr: Var
    heap: bool
    zeroed: bool
    may_fail: bool


@dataclass
class DeclLocalEvent(Event):
    """An uninitialized scalar local was declared (UVA ``alloc`` input for
    register-allocated variables)."""

    var: Var


@dataclass
class AssignConstEvent(Event):
    """A variable received a definite value (``ass_const``): direct constant
    move, arithmetic result, or a call return.  ``value`` is the constant
    when statically known, ``op`` the producing arithmetic operator."""

    var: Var
    value: Optional[int] = None
    op: Optional[str] = None


@dataclass
class StoreEvent(Event):
    """``*addr = value``; initializes what ``addr`` refers to."""

    addr: Var
    value: Value


@dataclass
class LoadEvent(Event):
    """``dst = *addr`` — the UVA ``load``/``use`` input."""

    addr: Var
    dst: Var


@dataclass
class UseVarEvent(Event):
    """A register variable was read as an operand (UVA ``use``)."""

    var: Var


@dataclass
class MemInitEvent(Event):
    """memset/memcpy initialized the region behind ``ptr``."""

    ptr: Var


@dataclass
class FreeEvent(Event):
    """``free(ptr)`` — ML ``free`` input."""

    ptr: Var


@dataclass
class ReturnEvent(Event):
    """A function frame returns; ``value`` is what it returns, ``frame_id``
    identifies the frame and ``is_entry_frame`` marks the analysis root
    (where ML's ``ret`` input fires)."""

    value: Optional[Value]
    frame_id: int
    is_entry_frame: bool


@dataclass
class EscapeEvent(Event):
    """``ptr``'s object escaped the analyzed scope: stored into memory,
    passed to an unknown external function, or returned upward."""

    ptr: Var
    reason: str


@dataclass
class TransferEvent(Event):
    """A callee returned ``ptr`` to its caller: ownership of the pointed-to
    object moves to frame ``frame_id`` (un-escaping it, since the caller
    now holds the only reference the analysis knows about)."""

    ptr: Var
    frame_id: int


@dataclass
class LockEvent(Event):
    """lock/unlock on ``lock`` (acquire=True for lock)."""

    lock: Var
    acquire: bool


@dataclass
class BranchCmpEvent(Event):
    """A branch resolved an integer comparison ``var op rhs`` where the
    comparison held (op already adjusted for the taken arm).  Used by the
    underflow / div-zero checkers, e.g. op='ge', rhs=0 proves non-negative.
    """

    var: Var
    op: str
    rhs: int


@dataclass
class DivEvent(Event):
    """Division/modulo with ``divisor``."""

    divisor: Value


@dataclass
class IndexEvent(Event):
    """Array indexing with a (possibly negative) ``index`` operand."""

    index: Value


@dataclass
class ExternalCallEvent(Event):
    """A call to a function outside the analyzed program (or one the
    engine chose not to inline): callee name plus the evaluated argument
    operands, for API-rule checkers."""

    callee: str
    args: tuple = ()


@dataclass
class CallReturnEvent(Event):
    """``dst = call fn(...)`` where the callee body is unknown; ``dst`` has
    an arbitrary value afterwards.  ``callee`` is the target name."""

    dst: Var
    callee: str
