"""Alias-aware typestate tracking (§3.2).

The :class:`TypestateManager` owns one state store shared by all
registered checkers.  States are keyed per *alias set* — the alias-graph
node uid — so all aliased variables share one typestate (Definition 3).
In the PATA-NA ablation (Table 6), states are keyed per *variable name*
and synchronized only across direct assignments, reproducing traditional
typestate tracking (Fig. 8a).

The store is trailed: path backtracking rewinds checker state together
with the alias graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from ..alias import AliasGraph, Trail
from ..ir import Instruction, Var
from ..presolve.events import EventKind
from .events import BugKind, Event
from .fsm import FSM


@dataclass
class PossibleBug:
    """A stage-1 finding (path feasibility not yet validated)."""

    kind: BugKind
    checker: str
    subject: str          # display name of the offending variable
    source: Instruction   # where the bad state was established
    sink: Instruction     # where it was consumed (the buggy operation)
    message: str
    trace: Tuple = ()     # engine-recorded path snapshot for stage 2
    alias_set: Tuple[str, ...] = ()
    entry_function: str = ""
    #: optional extra atom ("op", var_name, const) the validator must prove
    #: satisfiable together with the path constraints (underflow/div-zero).
    extra_requirement: Optional[Tuple[str, str, int]] = None
    #: second path snapshot for *pair* findings (the race detector's
    #: P2.5 matches): when non-empty, stage 2 validates the conjunction
    #: of both paths' constraints (:func:`repro.smt.translate.translate_trace_pair`)
    #: instead of a single path's.
    second_trace: Tuple = ()

    @property
    def dedup_key(self) -> Tuple[str, int, int]:
        """Bugs with the same problematic instruction pair are repeats
        (§4, P3).

        Instruction uids are assigned at construction and survive
        pickling, so a bug found in a worker process (whose ``Program``
        is an unpickled copy of the parent's) carries the *same* dedup
        key as the parent would compute — the parallel driver's
        entry-order merge collapses cross-worker duplicates exactly like the
        in-process ``seen_bug_keys`` set does.  A
        :class:`TypestateManager`'s checkers are never shipped to
        workers; they are rebuilt there from a spec name
        (:func:`repro.typestate.checkers.checkers_from_spec`).
        """
        return (self.checker, self.source.uid, self.sink.uid)

    def __str__(self) -> str:
        return (
            f"[{self.kind.short}] {self.message} "
            f"(source {self.source.loc}, sink {self.sink.loc})"
        )


class StateStore:
    """Trailed map from (checker, key) to an immutable state value."""

    def __init__(self, trail: Trail):
        self.trail = trail
        self._states: Dict[Tuple[str, Hashable], Any] = {}
        self.aware_updates = 0
        self.unaware_updates = 0
        #: keys set since the beginning, in order; kept in sync with the
        #: trail (entries pop on undo).  Used for callee exit digests.
        self.journal: List[Tuple[str, Hashable]] = []

    def get(self, checker: str, key: Hashable, default: Any = None) -> Any:
        value = self._states.get((checker, key), default)
        return default if value is None else value

    def set(self, checker: str, key: Hashable, value: Any, fanout: int = 1) -> None:
        """Record a state; ``fanout`` is the alias-set size, used to count
        what a per-variable (alias-unaware) tracker would have stored."""
        full_key = (checker, key)
        missing = object()
        old = self._states.get(full_key, missing)
        self._states[full_key] = value
        self.aware_updates += 1
        self.unaware_updates += max(1, fanout)

        def undo() -> None:
            if old is missing:
                self._states.pop(full_key, None)
            else:
                self._states[full_key] = old

        self.trail.push(undo)
        self.journal.append(full_key)
        self.trail.push(self.journal.pop)

    def items_for(self, checker: str):
        """Snapshot of (key, value) pairs for one checker — used by the ML
        checker to sweep unfreed allocations at returns."""
        return [(key[1], value) for key, value in self._states.items() if key[0] == checker]

    def copy_all(self, checker_names: List[str], src_key: Hashable, dst_key: Hashable) -> None:
        """NA-mode state sync on direct assignment (Fig. 8a's ``sync``)."""
        for name in checker_names:
            value = self._states.get((name, src_key))
            if value is not None:
                self.set(name, dst_key, value)


class TrackerContext:
    """What a checker may see and do.  Constructed by the engine per run."""

    def __init__(
        self,
        graph: Optional[AliasGraph],
        store: StateStore,
        alias_aware: bool,
        report_fn: Callable[[PossibleBug], None],
        base_of_fn: Callable[[str], Optional[Tuple[Var, str]]],
        known_function_fn: Callable[[str], bool],
    ):
        self.graph = graph
        self.store = store
        self.alias_aware = alias_aware
        self._report = report_fn
        self._base_of = base_of_fn
        self._known_function = known_function_fn
        self.frame_id = 0
        self.entry_function = ""
        #: engine hook for shared-access recording (the race checker's
        #: output channel); None when no recording engine is attached.
        self.record_access_fn: Optional[Callable] = None
        #: engine hook for cross-module taint-flow recording (the xtaint
        #: checker's output channel, P2.6 input); same contract.
        self.record_flow_fn: Optional[Callable] = None

    # -- keys -------------------------------------------------------------------

    def key(self, var: Var) -> Hashable:
        """The typestate key for ``var``: its alias-set identity when alias
        aware, its own name otherwise.

        P1.7 proven singletons have no per-path node; their alias-set
        identity is the versioned ``("s", name, generation)`` tuple —
        a strong update bumps the generation, making states keyed under
        older generations unreachable exactly like a detached node's uid.
        (Tuples cannot collide with node uids, which are ints, nor with
        NA-mode keys, which are plain strings.)
        """
        if self.alias_aware and self.graph is not None:
            name = var.name
            if name in self.graph.skip_names:
                return ("s", name, self.graph.skip_generation(name))
            return self.graph.node_of(var).uid
        return var.name

    def fanout(self, var: Var) -> int:
        """Size of var's alias set (1 in NA mode) — for Table 5 counters."""
        if self.alias_aware and self.graph is not None:
            if var.name in self.graph.skip_names:
                return 1  # a proven singleton's alias set is always {var}
            return max(1, len(self.graph.node_of(var).vars))
        return 1

    def alias_names(self, var: Var) -> Tuple[str, ...]:
        if self.alias_aware and self.graph is not None:
            return tuple(sorted(self.graph.alias_names(var)))
        return (var.name,)

    # -- state ------------------------------------------------------------------

    def get(self, checker: str, var: Var, default: Any = None) -> Any:
        return self.store.get(checker, self.key(var), default)

    def set(self, checker: str, var: Var, value: Any) -> None:
        self.store.set(checker, self.key(var), value, self.fanout(var))

    def get_key(self, checker: str, key: Hashable, default: Any = None) -> Any:
        return self.store.get(checker, key, default)

    def set_key(self, checker: str, key: Hashable, value: Any, fanout: int = 1) -> None:
        self.store.set(checker, key, value, fanout)

    # -- FSM helper ----------------------------------------------------------------

    def step_fsm(self, checker: "Checker", var: Var, symbol: str) -> Tuple[str, str]:
        """Apply one δ step on ``var``'s alias-set state for ``checker``'s
        FSM; returns (old_state, new_state)."""
        old = self.get(checker.name, var, checker.fsm.initial)
        if isinstance(old, tuple):  # (state, source inst) pairs
            old_state = old[0]
        else:
            old_state = old
        new_state = checker.fsm.step(old_state, symbol)
        return old_state, new_state

    # -- environment -----------------------------------------------------------------

    def base_of(self, addr_var: Var) -> Optional[Tuple[Var, str]]:
        """For an address computed by ``a = &b->f`` on this path, return
        (b, 'f'); None when ``addr_var`` is not a known field address."""
        return self._base_of(addr_var.name)

    def is_known_function(self, name: str) -> bool:
        return self._known_function(name)

    def report(self, bug: PossibleBug) -> None:
        bug.entry_function = self.entry_function
        self._report(bug)

    def record_access(self, key, is_write: bool, inst: Instruction, lockset) -> None:
        """Record a shared-state access on the current path (race
        detection, P2.5 input).  A no-op unless the engine attached its
        recorder — checkers may call this unconditionally."""
        if self.record_access_fn is not None:
            self.record_access_fn(key, is_write, inst, lockset)

    def record_flow(self, flow) -> None:
        """Record a cross-module taint half-flow on the current path
        (P2.6 input).  Same no-op contract as :meth:`record_access`."""
        if self.record_flow_fn is not None:
            self.record_flow_fn(flow)


class Checker:
    """Base class of typestate checkers.

    A checker declares its :class:`~repro.typestate.fsm.FSM` and reacts to
    engine events by stepping per-alias-set states; entering the FSM's
    error state reports a possible bug.  Each concrete checker is ~100-200
    lines, matching the paper's claim (§5.1).
    """

    name: str = "checker"
    kind: BugKind = BugKind.NPD
    fsm: FSM = None
    #: P1.5 relevance metadata (:mod:`repro.presolve`): every event kind
    #: the checker reacts to at all ...
    relevant_events: EventKind = EventKind.NONE
    #: ... the kinds that can establish reportable (non-initial) state ...
    trigger_events: EventKind = EventKind.NONE
    #: ... and the kinds at which the checker can invoke ``report``.
    #: Leaving trigger or sink at ``NONE`` (e.g. in a custom checker)
    #: conservatively disables relevance pruning for the whole run.
    sink_events: EventKind = EventKind.NONE
    #: runtime event classes this checker's ``handle`` reacts to — every
    #: built-in handle is a pure isinstance chain over these, so dispatch
    #: may skip the call for any other class without changing behavior.
    #: An empty tuple (e.g. a custom checker) means "unknown: always
    #: call" — the per-class filter never drops such a checker.
    handled_events: Tuple[type, ...] = ()

    #: state namespaces this checker stores under; NA-mode assignment sync
    #: copies each of them (a checker may keep several state families,
    #: e.g. UVA's scalar states vs. pointee-region states).
    @property
    def state_namespaces(self):
        return (self.name,)

    def handle(self, event: Event, ctx: TrackerContext) -> None:  # pragma: no cover
        raise NotImplementedError

    def on_path_start(self, ctx: TrackerContext) -> None:
        """Hook invoked when exploration of a new entry function begins."""


class TypestateManager:
    """Dispatches events to all registered checkers (TypestateTrack of
    Fig. 6, line 31)."""

    def __init__(self, checkers: List[Checker]):
        self.checkers = list(checkers)
        #: the subset dispatch actually visits (see :meth:`set_active`);
        #: every checker by default
        self.active = self.checkers
        self.checker_names = [ns for c in self.checkers for ns in c.state_namespaces]
        #: namespaces of the *active* checkers — what the Table 5
        #: unaware-updates accounting walks.  With per-entry arming this
        #: legitimately shrinks: a skipped checker's states can never be
        #: read, so counting their would-be syncs measures work the
        #: restricted run genuinely does not do.
        self.active_namespaces = self.checker_names
        #: event-class -> active checkers whose ``handled_events`` cover
        #: it, built lazily per :meth:`set_active` restriction.  None in
        #: the unrestricted state: the default path stays the plain loop
        #: over every checker, exactly today's dispatch.
        self._by_class: Optional[Dict[type, List[Checker]]] = None

    def set_active(self, names=None) -> None:
        """Restrict dispatch to the named checkers, or restore every
        checker with ``None``.  Used by the explorer's per-entry arming
        (P1.5 masks + P1.7 sharpening): a checker whose trigger or sink
        kinds don't occur in the entry's transitive region cannot report
        there, so skipping its ``handle`` calls preserves the report set
        exactly — it only skips typestate updates no report could read."""
        if names is None:
            self.active = self.checkers
            self.active_namespaces = self.checker_names
            self._by_class = None
        else:
            self.active = [c for c in self.checkers if c.name in names]
            self.active_namespaces = [
                ns for c in self.active for ns in c.state_namespaces
            ]
            self._by_class = {}

    def dispatch(self, event: Event, ctx: TrackerContext) -> None:
        by_class = self._by_class
        if by_class is None:
            for checker in self.active:
                checker.handle(event, ctx)
            return
        cls = event.__class__
        handlers = by_class.get(cls)
        if handlers is None:
            # A checker with no declared classes is never filtered; the
            # declared ones are skipped for classes their isinstance
            # chains cannot match (a behavior-preserving no-op).
            handlers = by_class[cls] = [
                c
                for c in self.active
                if not c.handled_events or issubclass(cls, c.handled_events)
            ]
        for checker in handlers:
            checker.handle(event, ctx)

    def wants(self, cls: type) -> bool:
        """Whether any active checker would handle an event of ``cls`` —
        lets the explorer skip *constructing* events nobody can observe
        (dispatching one is already a no-op, but the allocation is not
        free).  Always True in the unrestricted state, so the default
        path builds exactly the events it always did."""
        by_class = self._by_class
        if by_class is None:
            return True
        handlers = by_class.get(cls)
        if handlers is None:
            handlers = by_class[cls] = [
                c
                for c in self.active
                if not c.handled_events or issubclass(cls, c.handled_events)
            ]
        return bool(handlers)

    def sync_on_move(self, ctx: TrackerContext, dst: Var, src: Var) -> None:
        """In NA mode states live per variable; a direct assignment copies
        the source's states to the destination (traditional tracking)."""
        if not ctx.alias_aware:
            ctx.store.copy_all(self.checker_names, src.name, dst.name)
