"""Alias-aware typestate tracking (§3.2): FSMs, events, manager, checkers."""

from .events import (
    AllocEvent,
    AssignConstEvent,
    AssignNullEvent,
    BranchCmpEvent,
    BranchNullEvent,
    BugKind,
    CallReturnEvent,
    DeclLocalEvent,
    DerefEvent,
    DivEvent,
    EscapeEvent,
    Event,
    ExternalCallEvent,
    FreeEvent,
    IndexEvent,
    LoadEvent,
    LockEvent,
    MemInitEvent,
    ReturnEvent,
    StoreEvent,
    TransferEvent,
    UseVarEvent,
)
from .fsm import (
    ARRAY_UNDERFLOW_FSM,
    DIV_ZERO_FSM,
    DOUBLE_LOCK_FSM,
    FSM,
    ML_FSM,
    NPD_FSM,
    UVA_FSM,
    make_fsm,
)
from .manager import (
    Checker,
    PossibleBug,
    StateStore,
    TrackerContext,
    TypestateManager,
)
from .checkers import (
    ArrayUnderflowChecker,
    PairedAPIChecker,
    DivByZeroChecker,
    DoubleLockChecker,
    MemoryLeakChecker,
    NullDereferenceChecker,
    UninitializedAccessChecker,
    all_checkers,
    default_checkers,
)

__all__ = [
    "AllocEvent", "AssignConstEvent", "AssignNullEvent", "BranchCmpEvent",
    "BranchNullEvent", "BugKind", "CallReturnEvent", "DeclLocalEvent",
    "DerefEvent", "DivEvent", "EscapeEvent", "Event", "ExternalCallEvent", "FreeEvent",
    "IndexEvent", "LoadEvent", "LockEvent", "MemInitEvent", "ReturnEvent",
    "StoreEvent", "TransferEvent", "UseVarEvent",
    "ARRAY_UNDERFLOW_FSM", "DIV_ZERO_FSM", "DOUBLE_LOCK_FSM", "FSM",
    "ML_FSM", "NPD_FSM", "UVA_FSM", "make_fsm",
    "Checker", "PossibleBug", "StateStore", "TrackerContext",
    "TypestateManager",
    "ArrayUnderflowChecker", "DivByZeroChecker", "DoubleLockChecker", "PairedAPIChecker",
    "MemoryLeakChecker", "NullDereferenceChecker",
    "UninitializedAccessChecker", "all_checkers", "default_checkers",
]
