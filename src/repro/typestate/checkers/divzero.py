"""Division-by-zero checker (§5.5, Table 7).

A divisor is suspicious (SMZ) when zero is possible on the path: assigned
the constant 0, the ``== 0`` branch of a test was taken, or it came from
a function known to return 0 on some path.  Dividing while SMZ is a
possible bug; a constant-zero divisor is definite.  ``!= 0`` proofs move
the state to SNZ.
"""

from __future__ import annotations

from ..events import (
    AssignConstEvent,
    BranchCmpEvent,
    BugKind,
    CallReturnEvent,
    DivEvent,
    Event,
)
from ..fsm import DIV_ZERO_FSM
from ..manager import Checker, PossibleBug, TrackerContext
from ...ir import Const, Var
from ...presolve.events import EventKind


class DivByZeroChecker(Checker):
    """Division-by-zero checker; see the module docstring."""

    name = "dbz"
    kind = BugKind.DIV_BY_ZERO
    fsm = DIV_ZERO_FSM
    relevant_events = (
        EventKind.ASSIGN_CONST | EventKind.ZERO_CONST | EventKind.CALL_RETURN
        | EventKind.CMP_ZERO | EventKind.DIV
    )
    #: SMZ needs a possibly-zero value (ZERO_CONST covers zero constants,
    #: may-return-zero callees, and literal zero divisors) or a taken
    #: `== 0` test
    trigger_events = EventKind.ZERO_CONST | EventKind.CMP_ZERO
    sink_events = EventKind.DIV
    handled_events = (AssignConstEvent, CallReturnEvent, BranchCmpEvent, DivEvent)

    def __init__(self, may_return_zero=None):
        self.may_return_zero = may_return_zero or (lambda name: False)

    # State values are ("SMZ"|"SNZ", source_inst).

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, AssignConstEvent):
            if event.value == 0:
                ctx.set(self.name, event.var, ("SMZ", event.inst))
            elif event.value is not None:
                ctx.set(self.name, event.var, ("SNZ", None))
        elif isinstance(event, CallReturnEvent):
            if self.may_return_zero(event.callee):
                ctx.set(self.name, event.dst, ("SMZ", event.inst))
        elif isinstance(event, BranchCmpEvent):
            if event.rhs == 0:
                if event.op == "eq":
                    ctx.set(self.name, event.var, ("SMZ", event.inst))
                elif event.op in ("ne", "gt", "lt"):
                    ctx.set(self.name, event.var, ("SNZ", None))
        elif isinstance(event, DivEvent):
            self._handle_div(event, ctx)

    def _handle_div(self, event: DivEvent, ctx: TrackerContext) -> None:
        divisor = event.divisor
        if isinstance(divisor, Const):
            if divisor.value == 0:
                ctx.report(
                    PossibleBug(
                        kind=self.kind,
                        checker=self.name,
                        subject="0",
                        source=event.inst,
                        sink=event.inst,
                        message="division by constant zero",
                    )
                )
            return
        assert isinstance(divisor, Var)
        state = ctx.get(self.name, divisor)
        if state is not None and state[0] == "SMZ":
            bug = PossibleBug(
                kind=self.kind,
                checker=self.name,
                subject=divisor.display_name(),
                source=state[1] if state[1] is not None else event.inst,
                sink=event.inst,
                message=f"divisor '{divisor.display_name()}' may be zero",
            )
            bug.extra_requirement = ("eq", divisor.name, 0)
            ctx.report(bug)
            ctx.set(self.name, divisor, ("SNZ", None))
