"""Double-lock / double-unlock checker (§5.5, Table 7).

State per lock alias set: S0 (unknown), SL (held), SU (released).
Acquiring a held lock or releasing a released lock is a possible bug.
From S0 the first operation is trusted (the caller may own the lock).
"""

from __future__ import annotations

from ..events import BugKind, Event, LockEvent
from ..fsm import DOUBLE_LOCK_FSM
from ..manager import Checker, PossibleBug, TrackerContext
from ...presolve.events import EventKind


class DoubleLockChecker(Checker):
    """Double-lock/unlock checker; see the module docstring."""

    name = "dl"
    kind = BugKind.DOUBLE_LOCK
    fsm = DOUBLE_LOCK_FSM
    relevant_events = EventKind.LOCK
    trigger_events = EventKind.LOCK
    sink_events = EventKind.LOCK
    handled_events = (LockEvent,)

    # State values are ("SL"|"SU", last_op_inst).

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if not isinstance(event, LockEvent):
            return
        state = ctx.get(self.name, event.lock, ("S0", None))
        status = state[0]
        if event.acquire:
            if status == "SL":
                self._report(ctx, event, state[1], "acquired twice without release")
                # Keep the ORIGINAL acquire site: a third acquire of the
                # same alias set must still cite the true first acquire,
                # not the second one that already reported.
                ctx.set(self.name, event.lock, ("SL", state[1]))
            else:
                ctx.set(self.name, event.lock, ("SL", event.inst))
        else:
            if status == "SU":
                self._report(ctx, event, state[1], "released twice without acquire")
                ctx.set(self.name, event.lock, ("SU", state[1]))
            else:
                ctx.set(self.name, event.lock, ("SU", event.inst))

    def _report(self, ctx: TrackerContext, event: LockEvent, source, detail: str) -> None:
        ctx.report(
            PossibleBug(
                kind=self.kind,
                checker=self.name,
                subject=event.lock.display_name(),
                source=source if source is not None else event.inst,
                sink=event.inst,
                message=f"lock '{event.lock.display_name()}' {detail}",
                alias_set=ctx.alias_names(event.lock),
            )
        )
