"""The shipped typestate checkers.

``default_checkers()`` returns the paper's three primary checkers (§5.1);
``all_checkers()`` adds the three of the generality study (§5.5).
"""

from typing import Callable, List, Optional

from ..manager import Checker
from .npd import NullDereferenceChecker
from .uva import UninitializedAccessChecker
from .ml import MemoryLeakChecker
from .locks import DoubleLockChecker
from .underflow import ArrayUnderflowChecker
from .divzero import DivByZeroChecker
from .api_pairs import DEFAULT_ACQUIRE_APIS, DEFAULT_RELEASE_APIS, PairedAPIChecker

__all__ = [
    "NullDereferenceChecker",
    "UninitializedAccessChecker",
    "MemoryLeakChecker",
    "DoubleLockChecker",
    "ArrayUnderflowChecker",
    "DivByZeroChecker",
    "PairedAPIChecker", "DEFAULT_ACQUIRE_APIS", "DEFAULT_RELEASE_APIS",
    "default_checkers",
    "all_checkers",
    "CHECKER_SPECS",
    "checkers_from_spec",
]


def default_checkers() -> List[Checker]:
    """The paper's three primary checkers: NPD, UVA, ML (§5.1)."""
    return [NullDereferenceChecker(), UninitializedAccessChecker(), MemoryLeakChecker()]


def all_checkers(
    may_return_negative: Optional[Callable[[str], bool]] = None,
    may_return_zero: Optional[Callable[[str], bool]] = None,
) -> List[Checker]:
    """The six shipped checkers (§5.1 + §5.5); the two callables feed the
    collector's may-return facts to the underflow/div-zero checkers."""
    return default_checkers() + [
        DoubleLockChecker(),
        ArrayUnderflowChecker(may_return_negative),
        DivByZeroChecker(may_return_zero),
    ]


#: Named checker-set factories.  Worker processes of the parallel driver
#: rebuild their checkers from one of these *names* — live checker
#: objects are never pickled across the process boundary, because two of
#: them close over per-program collector facts that each worker derives
#: from its own unpickled :class:`~repro.ir.Program` copy.
CHECKER_SPECS = ("default", "all")


def checkers_from_spec(spec: str, collector=None) -> List[Checker]:
    """Reconstruct a checker set from its spec name.

    ``collector`` (an :class:`~repro.core.InformationCollector`) supplies
    the may-return facts the ``"all"`` set's underflow/div-zero checkers
    need; ``"default"`` ignores it.
    """
    if spec == "default":
        return default_checkers()
    if spec == "all":
        return all_checkers(
            may_return_negative=collector.may_return_negative if collector else None,
            may_return_zero=collector.may_return_zero if collector else None,
        )
    raise ValueError(f"unknown checker spec: {spec!r} (expected one of {CHECKER_SPECS})")
