"""The shipped typestate checkers.

``default_checkers()`` returns the paper's three primary checkers (§5.1);
``all_checkers()`` adds the three of the generality study (§5.5).
"""

from typing import Callable, List, Optional

from ..manager import Checker
from .npd import NullDereferenceChecker
from .uva import UninitializedAccessChecker
from .ml import MemoryLeakChecker
from .locks import DoubleLockChecker
from .underflow import ArrayUnderflowChecker
from .divzero import DivByZeroChecker
from .api_pairs import DEFAULT_ACQUIRE_APIS, DEFAULT_RELEASE_APIS, PairedAPIChecker

__all__ = [
    "NullDereferenceChecker",
    "UninitializedAccessChecker",
    "MemoryLeakChecker",
    "DoubleLockChecker",
    "ArrayUnderflowChecker",
    "DivByZeroChecker",
    "PairedAPIChecker", "DEFAULT_ACQUIRE_APIS", "DEFAULT_RELEASE_APIS",
    "default_checkers",
    "all_checkers",
]


def default_checkers() -> List[Checker]:
    """The paper's three primary checkers: NPD, UVA, ML (§5.1)."""
    return [NullDereferenceChecker(), UninitializedAccessChecker(), MemoryLeakChecker()]


def all_checkers(
    may_return_negative: Optional[Callable[[str], bool]] = None,
    may_return_zero: Optional[Callable[[str], bool]] = None,
) -> List[Checker]:
    """The six shipped checkers (§5.1 + §5.5); the two callables feed the
    collector's may-return facts to the underflow/div-zero checkers."""
    return default_checkers() + [
        DoubleLockChecker(),
        ArrayUnderflowChecker(may_return_negative),
        DivByZeroChecker(may_return_zero),
    ]
