"""The shipped typestate checkers.

``default_checkers()`` returns the paper's three primary checkers (§5.1);
``all_checkers()`` adds the three of the generality study (§5.5).  Checker
*sets* are named by comma-separated specs (``"npd,ml,taint"``) resolved by
:func:`checkers_from_spec`; ``"default"`` and ``"all"`` are aliases for
the two historical sets.
"""

from typing import Callable, List, Optional

from ..manager import Checker
from .npd import NullDereferenceChecker
from .uva import UninitializedAccessChecker
from .ml import MemoryLeakChecker
from .locks import DoubleLockChecker
from .underflow import ArrayUnderflowChecker
from .divzero import DivByZeroChecker
from .api_pairs import DEFAULT_ACQUIRE_APIS, DEFAULT_RELEASE_APIS, PairedAPIChecker

__all__ = [
    "NullDereferenceChecker",
    "UninitializedAccessChecker",
    "MemoryLeakChecker",
    "DoubleLockChecker",
    "ArrayUnderflowChecker",
    "DivByZeroChecker",
    "PairedAPIChecker", "DEFAULT_ACQUIRE_APIS", "DEFAULT_RELEASE_APIS",
    "default_checkers",
    "all_checkers",
    "CHECKER_ALIASES",
    "CHECKER_NAMES",
    "CHECKER_SPECS",
    "checkers_from_spec",
    "configure_checkers",
    "registered_checkers",
]


def default_checkers() -> List[Checker]:
    """The paper's three primary checkers: NPD, UVA, ML (§5.1)."""
    return [NullDereferenceChecker(), UninitializedAccessChecker(), MemoryLeakChecker()]


def all_checkers(
    may_return_negative: Optional[Callable[[str], bool]] = None,
    may_return_zero: Optional[Callable[[str], bool]] = None,
) -> List[Checker]:
    """The six original checkers (§5.1 + §5.5); the two callables feed the
    collector's may-return facts to the underflow/div-zero checkers."""
    return default_checkers() + [
        DoubleLockChecker(),
        ArrayUnderflowChecker(may_return_negative),
        DivByZeroChecker(may_return_zero),
    ]


def _make_taint_checker(collector):
    # Imported lazily: repro.taint depends on repro.typestate submodules,
    # and this package is itself imported while repro.typestate initializes.
    from ...taint import TaintChecker

    return TaintChecker()


def _make_race_checker(collector):
    # Lazy for the same reason as taint.  The collector feeds the VFG
    # escape facts that define the shared heap universe; without one
    # (spec validation, --list-checkers) the checker sees only globals.
    from ...races import RaceChecker

    return RaceChecker(
        shared_sites=collector.shared_heap_sites() if collector else frozenset()
    )


def _make_xtaint_checker(collector):
    # Lazy like taint/race.  The collector feeds the shared heap
    # universe and the border set (interface functions without any
    # extern caller); without one (spec validation, --list-checkers)
    # the checker sees only globals and an empty border.
    from ...xtaint import CrossModuleTaintChecker, border_entries_of

    if collector is None:
        return CrossModuleTaintChecker()
    return CrossModuleTaintChecker(
        shared_sites=collector.shared_heap_sites(),
        border_entries=border_entries_of(collector.program, collector.callgraph),
    )


def configure_checkers(checkers: List[Checker], config) -> List[Checker]:
    """Apply run-configuration knobs to freshly built checkers — called
    by the sequential driver and by each parallel worker's initializer,
    so both sides arm identically.  Currently one knob: border-source
    inference (``config.taint_borders``), which also widens the armed
    trigger mask — a border entry carries taint *at path start* with no
    trigger event in its region, so any sink-bearing region must stay
    armed for entry pruning to remain report-preserving."""
    borders = bool(getattr(config, "taint_borders", False))
    for checker in checkers:
        if hasattr(checker, "taint_borders"):
            checker.taint_borders = borders
            if borders:
                checker.trigger_events = (
                    checker.trigger_events | checker.sink_events
                )
    return checkers


#: individual checker factories, keyed by the checker's ``name`` attribute;
#: each takes the information collector (or None) and returns a fresh
#: instance.
_CHECKER_FACTORIES = {
    "npd": lambda collector: NullDereferenceChecker(),
    "uva": lambda collector: UninitializedAccessChecker(),
    "ml": lambda collector: MemoryLeakChecker(),
    "dl": lambda collector: DoubleLockChecker(),
    "aiu": lambda collector: ArrayUnderflowChecker(
        collector.may_return_negative if collector else None
    ),
    "dbz": lambda collector: DivByZeroChecker(
        collector.may_return_zero if collector else None
    ),
    "taint": _make_taint_checker,
    "race": _make_race_checker,
    "xtaint": _make_xtaint_checker,
}

#: every individually addressable checker name, in canonical order
CHECKER_NAMES = tuple(_CHECKER_FACTORIES)

#: named shorthands for common sets (kept for CLI/worker back-compat).
#: ``race``, ``taint`` and ``xtaint`` stay opt-in: they are not part of
#: the paper's historical six, and their matching phases (P2.5 / P2.6)
#: have cost even on code without the respective bug class.
CHECKER_ALIASES = {
    "default": "npd,uva,ml",
    "all": "npd,uva,ml,dl,aiu,dbz",
}

#: everything :func:`checkers_from_spec` accepts as a single token
CHECKER_SPECS = CHECKER_NAMES + tuple(CHECKER_ALIASES)


def _expand_spec(spec: str) -> List[str]:
    """Comma-split ``spec``, expand aliases, dedup preserving first
    occurrence.  Raises ValueError on unknown names."""
    names: List[str] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        expanded = CHECKER_ALIASES.get(token, token).split(",")
        for name in expanded:
            if name not in _CHECKER_FACTORIES:
                raise ValueError(
                    f"unknown checker {name!r} in spec {spec!r} "
                    f"(valid names: {', '.join(CHECKER_SPECS)})"
                )
            if name not in names:
                names.append(name)
    if not names:
        raise ValueError(
            f"empty checker spec {spec!r} (valid names: {', '.join(CHECKER_SPECS)})"
        )
    return names


def checkers_from_spec(spec: str, collector=None) -> List[Checker]:
    """Reconstruct a checker set from a spec string.

    A spec is a comma-separated list of checker names and/or aliases —
    ``"default"``, ``"all"``, ``"npd,ml,taint"``, ``"default,taint"`` —
    deduplicated in first-occurrence order.  Worker processes of the
    parallel driver rebuild their checkers from this *string* — live
    checker objects are never pickled across the process boundary,
    because some close over per-program collector facts that each worker
    derives from its own unpickled :class:`~repro.ir.Program` copy.

    ``collector`` (an :class:`~repro.core.InformationCollector`) supplies
    the may-return facts the underflow/div-zero checkers need; sets that
    exclude them ignore it.
    """
    return [_CHECKER_FACTORIES[name](collector) for name in _expand_spec(spec)]


def registered_checkers(collector=None) -> List[Checker]:
    """One fresh instance of every registered checker, in canonical
    order — the ``--list-checkers`` inventory."""
    return [factory(collector) for factory in _CHECKER_FACTORIES.values()]
