"""Memory-leak checker (FSM_ML of Table 2).

State per alias set of a heap pointer: SNF (allocated, not freed), SF
(freed), SML (leak).  The ``ret`` input fires when the *allocating frame*
returns: an SNF object that never escaped that frame is reported.

Escape handling (engineering refinement over the bare FSM, which would
flag every allocation at every return): an object is not leak-eligible
once it (a) is stored through a pointer / into a global, (b) is passed to
an unanalyzable external function, or (c) is the value being returned.
The engine emits :class:`EscapeEvent` for these; real leak detectors
(Saber, SMOKE) apply the same liveness reasoning.
"""

from __future__ import annotations

from ..events import (
    AllocEvent,
    BranchNullEvent,
    BugKind,
    EscapeEvent,
    Event,
    FreeEvent,
    ReturnEvent,
    TransferEvent,
)
from ..fsm import ML_FSM
from ..manager import Checker, PossibleBug, TrackerContext
from ...presolve.events import EventKind


class MemoryLeakChecker(Checker):
    """Memory-leak checker (FSM_ML); see the module docstring."""

    name = "ml"
    kind = BugKind.ML
    fsm = ML_FSM
    relevant_events = (
        EventKind.ALLOC_HEAP | EventKind.FREE | EventKind.BRANCH_NULL
        | EventKind.ESCAPE | EventKind.RETURN
    )
    #: SNF only exists after a heap allocation
    trigger_events = EventKind.ALLOC_HEAP
    #: the sweep reports at frame returns — any block reaching a Ret is a
    #: potential sink, so block pruning is a no-op for ML-armed entries
    sink_events = EventKind.RETURN
    handled_events = (
        AllocEvent, FreeEvent, BranchNullEvent, EscapeEvent, TransferEvent, ReturnEvent,
    )

    # State values are ("SNF"|"SF", alloc_inst, alloc_frame, escaped).

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, AllocEvent):
            if event.heap:
                ctx.set(self.name, event.ptr, ("SNF", event.inst, ctx.frame_id, False))
        elif isinstance(event, FreeEvent):
            state = ctx.get(self.name, event.ptr)
            if state is not None:
                ctx.set(self.name, event.ptr, ("SF", state[1], state[2], state[3]))
        elif isinstance(event, BranchNullEvent):
            if event.is_null:
                # On this path the allocation failed (pointer is NULL):
                # there is nothing to free, so the tracked object dies.
                state = ctx.get(self.name, event.ptr)
                if state is not None and state[0] == "SNF":
                    ctx.set(self.name, event.ptr, ("SF", state[1], state[2], state[3]))
        elif isinstance(event, EscapeEvent):
            state = ctx.get(self.name, event.ptr)
            if state is not None and state[0] == "SNF":
                ctx.set(self.name, event.ptr, ("SNF", state[1], state[2], True))
        elif isinstance(event, TransferEvent):
            state = ctx.get(self.name, event.ptr)
            if state is not None and state[0] == "SNF":
                # Ownership moves to the caller's frame; the "returned"
                # escape no longer applies — the caller holds the reference.
                ctx.set(self.name, event.ptr, ("SNF", state[1], event.frame_id, False))
        elif isinstance(event, ReturnEvent):
            self._sweep(event, ctx)

    def _sweep(self, event: ReturnEvent, ctx: TrackerContext) -> None:
        """The FSM's ``ret`` input: allocations owned by the returning frame
        that are still SNF and never escaped leak here."""
        for key, state in ctx.store.items_for(self.name):
            if state[0] != "SNF" or state[3] or state[2] != event.frame_id:
                continue
            alloc_inst = state[1]
            ctx.report(
                PossibleBug(
                    kind=self.kind,
                    checker=self.name,
                    subject=str(alloc_inst.dst.display_name()) if hasattr(alloc_inst, "dst") else "<heap>",
                    source=alloc_inst,
                    sink=event.inst,
                    message=(
                        f"memory allocated at {alloc_inst.loc} is never freed "
                        f"on a path returning at {event.inst.loc}"
                    ),
                )
            )
            ctx.set_key(self.name, key, ("SF", state[1], state[2], state[3]))
