"""Array-index-underflow checker (§5.5, Table 7).

An index is *suspicious* (SMN) when it may be negative: it came from a
function that can return a negative error code (the classic
``idx = lookup(...); arr[idx]`` kernel pattern), from a subtraction, or
from a negative constant.  A bounds check (``if (idx < 0)`` guarding, or
``idx >= 0`` proven on the path) moves it to SNN.  Indexing while SMN is
a possible bug; stage 2 additionally checks ``index < 0`` is satisfiable
under the path constraints.
"""

from __future__ import annotations

from ..events import (
    AssignConstEvent,
    BranchCmpEvent,
    BugKind,
    CallReturnEvent,
    Event,
    IndexEvent,
)
from ..fsm import ARRAY_UNDERFLOW_FSM
from ..manager import Checker, PossibleBug, TrackerContext
from ...ir import Const, Var
from ...presolve.events import NEGATIVE_RETURN_HINTS, EventKind

#: back-compat alias; the canonical list lives in repro.presolve.events
#: so the P1.5 scan and this checker key on the same names.
_NEGATIVE_RETURN_HINTS = NEGATIVE_RETURN_HINTS


class ArrayUnderflowChecker(Checker):
    """Array-index-underflow checker; see the module docstring."""

    name = "aiu"
    kind = BugKind.ARRAY_UNDERFLOW
    fsm = ARRAY_UNDERFLOW_FSM
    relevant_events = (
        EventKind.ASSIGN_CONST | EventKind.NEG_CONST | EventKind.CALL_RETURN
        | EventKind.CMP_ZERO | EventKind.CMP_CONST | EventKind.INDEX
    )
    #: SMN needs a definitely/possibly-negative value: a negative
    #: constant, a subtraction, a may-return-negative callee (all
    #: NEG_CONST — a negative constant index too), or a taken `< 0` test
    trigger_events = EventKind.NEG_CONST | EventKind.CMP_ZERO
    sink_events = EventKind.INDEX
    handled_events = (AssignConstEvent, CallReturnEvent, BranchCmpEvent, IndexEvent)

    def __init__(self, may_return_negative=None):
        #: names of analyzed functions known to return a negative constant
        #: on some path (precomputed by the information collector).
        self.may_return_negative = may_return_negative or (lambda name: False)

    # State values are ("SMN"|"SNN", source_inst).

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, AssignConstEvent):
            if event.value is not None and event.value < 0:
                ctx.set(self.name, event.var, ("SMN", event.inst))
            elif event.op == "sub":
                ctx.set(self.name, event.var, ("SMN", event.inst))
            elif event.value is not None:
                ctx.set(self.name, event.var, ("SNN", None))
        elif isinstance(event, CallReturnEvent):
            if self.may_return_negative(event.callee) or any(
                hint in event.callee for hint in _NEGATIVE_RETURN_HINTS
            ):
                ctx.set(self.name, event.dst, ("SMN", event.inst))
        elif isinstance(event, BranchCmpEvent):
            self._handle_branch(event, ctx)
        elif isinstance(event, IndexEvent):
            self._handle_index(event, ctx)

    def _handle_branch(self, event: BranchCmpEvent, ctx: TrackerContext) -> None:
        # The event states a fact that holds on the taken arm.
        if event.rhs != 0:
            if event.op in ("ge", "gt", "eq") and event.rhs > 0:
                ctx.set(self.name, event.var, ("SNN", None))
            return
        if event.op in ("ge", "gt"):  # var >= 0 / var > 0 holds
            ctx.set(self.name, event.var, ("SNN", None))
        elif event.op == "eq":  # var == 0
            ctx.set(self.name, event.var, ("SNN", None))
        elif event.op in ("lt", "le"):  # var < 0 holds: definitely negative
            ctx.set(self.name, event.var, ("SMN", event.inst))

    def _handle_index(self, event: IndexEvent, ctx: TrackerContext) -> None:
        index = event.index
        if isinstance(index, Const):
            if index.value < 0:
                self._report(ctx, event, event.inst, str(index.value), definite=True)
            return
        assert isinstance(index, Var)
        state = ctx.get(self.name, index)
        if state is not None and state[0] == "SMN":
            self._report(ctx, event, state[1], index.display_name(), definite=False, var=index)
            ctx.set(self.name, index, ("SNN", None))

    def _report(self, ctx: TrackerContext, event: IndexEvent, source, subject: str, definite: bool, var=None) -> None:
        bug = PossibleBug(
            kind=self.kind,
            checker=self.name,
            subject=subject,
            source=source if source is not None else event.inst,
            sink=event.inst,
            message=f"array index '{subject}' may be negative",
        )
        if not definite and var is not None:
            # Stage 2 must additionally prove index < 0 is satisfiable.
            bug.trace = bug.trace  # placeholder until engine attaches it
            bug.extra_requirement = ("lt", var.name, 0)
        ctx.report(bug)
