"""Null-pointer-dereference checker (FSM_NPD of Table 2).

State per alias set: S0 (unknown), SN (null on this path), SNON
(proven non-null), SNPD (bug).  A dereference while the alias set is SN
reports a possible bug; the path validator (§3.3) later decides whether
the null-establishing path is feasible.
"""

from __future__ import annotations

from ..events import (
    AssignNullEvent,
    BranchNullEvent,
    BugKind,
    CallReturnEvent,
    DerefEvent,
    Event,
)
from ..fsm import NPD_FSM
from ..manager import Checker, PossibleBug, TrackerContext
from ...presolve.events import EventKind


class NullDereferenceChecker(Checker):
    """Null-pointer-dereference checker (FSM_NPD); see the module docstring."""

    name = "npd"
    kind = BugKind.NPD
    fsm = NPD_FSM
    relevant_events = (
        EventKind.ASSIGN_NULL | EventKind.BRANCH_NULL | EventKind.DEREF | EventKind.CALL_RETURN
    )
    #: SN is only reachable through a null assignment or a taken null test
    trigger_events = EventKind.ASSIGN_NULL | EventKind.BRANCH_NULL
    #: reports fire exclusively at dereferences
    sink_events = EventKind.DEREF
    handled_events = (AssignNullEvent, BranchNullEvent, DerefEvent, CallReturnEvent)

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, AssignNullEvent):
            if event.node_key is not None and ctx.alias_aware:
                ctx.set_key(self.name, event.node_key, ("SN", event.inst))
            else:
                ctx.set(self.name, event.ptr, ("SN", event.inst))
        elif isinstance(event, BranchNullEvent):
            if event.is_null:
                ctx.set(self.name, event.ptr, ("SN", event.inst))
            else:
                ctx.set(self.name, event.ptr, ("SNON", None))
        elif isinstance(event, DerefEvent):
            state = ctx.get(self.name, event.ptr, ("S0", None))
            if state[0] == "SN":
                ctx.report(
                    PossibleBug(
                        kind=self.kind,
                        checker=self.name,
                        subject=event.ptr.display_name(),
                        source=state[1],
                        sink=event.inst,
                        message=(
                            f"pointer '{event.ptr.display_name()}' may be NULL "
                            f"(established at {state[1].loc}) and is dereferenced"
                        ),
                        alias_set=ctx.alias_names(event.ptr),
                    )
                )
                # The alias set stays SN: a pointer that is NULL on this
                # path stays NULL, and each distinct dereference site is
                # its own bug (Fig. 12(a) reports four).  The engine's
                # (source, sink) dedup suppresses true repeats.
        elif isinstance(event, CallReturnEvent):
            # A value from an unanalyzed callee is unknown again.
            ctx.set(self.name, event.dst, ("S0", None))
