"""Paired-API (acquire/release) checker — the §7 "API-rule checking"
client of the alias analysis.

Many kernel API rules are acquire/release pairs over a resource handle:
``request_irq``/``free_irq``, ``of_node_get``/``of_node_put``,
``pci_map``/``pci_unmap`` ...  The checker is parameterized by the API
names and reports, per alias set of the handle:

* **double acquire** — acquiring an already-held resource;
* **release without acquire** — releasing a resource this code never
  acquired twice in a row (the first release is trusted, as in the
  double-lock checker);
* **unreleased at return** — an acquired resource still held when the
  acquiring frame returns (unless the handle escapes).

Alias awareness matters for the same reason as everywhere else: the
release often happens through a different variable than the acquire.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..events import (
    BugKind,
    EscapeEvent,
    Event,
    ExternalCallEvent,
    ReturnEvent,
)
from ..fsm import make_fsm
from ..manager import Checker, PossibleBug, TrackerContext
from ...ir import Var
from ...presolve.events import EventKind

PAIRED_API_FSM = make_fsm(
    "FSM_PAIR",
    initial="S0",
    error="SPAIR",
    transitions={
        ("S0", "acquire"): "SA",
        ("S0", "release"): "SR",
        ("SA", "release"): "SR",
        ("SR", "acquire"): "SA",
        ("SA", "acquire"): "SPAIR",
        ("SR", "release"): "SPAIR",
        ("SA", "ret"): "SPAIR",
        ("SPAIR", "release"): "SR",
    },
)

#: default rule set: (name, handle argument index) pairs
DEFAULT_ACQUIRE_APIS: Dict[str, int] = {
    "request_irq": 0,
    "of_node_get": 0,
    "clk_enable": 0,
    "pm_runtime_get": 0,
    "dma_map_single": 1,
}
DEFAULT_RELEASE_APIS: Dict[str, int] = {
    "free_irq": 0,
    "of_node_put": 0,
    "clk_disable": 0,
    "pm_runtime_put": 0,
    "dma_unmap_single": 1,
}


class PairedAPIChecker(Checker):
    """Configurable acquire/release rule checker, driven by the
    :class:`~repro.typestate.events.ExternalCallEvent` stream: the paired
    APIs are external functions, so the engine reports every call with
    its evaluated arguments and the checker matches names/positions."""

    kind = BugKind.DOUBLE_LOCK  # reported in the lock/pairing category
    fsm = PAIRED_API_FSM
    relevant_events = EventKind.EXTERNAL_CALL | EventKind.ESCAPE | EventKind.RETURN
    #: SA/SR only arise from an acquire/release API call
    trigger_events = EventKind.EXTERNAL_CALL
    #: double acquire/release report at the call, unreleased at the return
    sink_events = EventKind.EXTERNAL_CALL | EventKind.RETURN
    handled_events = (ExternalCallEvent, EscapeEvent, ReturnEvent)

    def __init__(
        self,
        acquire_apis: Optional[Dict[str, int]] = None,
        release_apis: Optional[Dict[str, int]] = None,
        name: str = "api-pair",
        report_unreleased: bool = True,
    ):
        self.name = name
        self.acquire_apis = dict(acquire_apis if acquire_apis is not None else DEFAULT_ACQUIRE_APIS)
        self.release_apis = dict(release_apis if release_apis is not None else DEFAULT_RELEASE_APIS)
        self.report_unreleased = report_unreleased

    # State values: ("SA"|"SR", acquire_inst, frame_id, escaped).

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, ExternalCallEvent):
            self._handle_call(event, ctx)
        elif isinstance(event, EscapeEvent):
            state = ctx.get(self.name, event.ptr)
            if state is not None and state[0] == "SA" and event.inst is not state[1]:
                # The acquiring call itself does not "escape" its handle;
                # any later external call holding it does (conservative
                # suppression of the unreleased-at-return report).
                ctx.set(self.name, event.ptr, ("SA", state[1], state[2], True))
        elif isinstance(event, ReturnEvent) and self.report_unreleased:
            self._sweep(event, ctx)

    def _handle_call(self, event: ExternalCallEvent, ctx: TrackerContext) -> None:
        inst = event.inst
        rules = (
            ("acquire", self.acquire_apis.get(event.callee)),
            ("release", self.release_apis.get(event.callee)),
        )
        for action, position in rules:
            if position is None or position >= len(event.args):
                continue
            handle = event.args[position]
            if not isinstance(handle, Var):
                continue
            state = ctx.get(self.name, handle, ("S0", None, 0, False))
            if action == "acquire":
                if state[0] == "SA":
                    self._report(
                        ctx, handle, state[1], inst,
                        f"'{handle.display_name()}' acquired twice via {event.callee} without release",
                    )
                ctx.set(self.name, handle, ("SA", inst, ctx.frame_id, False))
            else:
                if state[0] == "SR":
                    self._report(
                        ctx, handle, state[1], inst,
                        f"'{handle.display_name()}' released twice via {event.callee}",
                    )
                ctx.set(self.name, handle, ("SR", inst, ctx.frame_id, False))

    def _sweep(self, event: ReturnEvent, ctx: TrackerContext) -> None:
        for key, state in ctx.store.items_for(self.name):
            if state[0] != "SA" or state[3] or state[2] != event.frame_id:
                continue
            acquire_inst = state[1]
            self._report(
                ctx, None, acquire_inst, event.inst,
                f"resource acquired at {acquire_inst.loc} is never released "
                f"before returning at {event.inst.loc}",
            )
            ctx.set_key(self.name, key, ("SR", state[1], state[2], state[3]))

    def _report(self, ctx: TrackerContext, var, source, sink, message: str) -> None:
        ctx.report(
            PossibleBug(
                kind=self.kind,
                checker=self.name,
                subject=var.display_name() if var is not None else "<resource>",
                source=source if source is not None else sink,
                sink=sink,
                message=message,
                alias_set=ctx.alias_names(var) if var is not None else (),
            )
        )
