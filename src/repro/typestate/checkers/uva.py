"""Uninitialized-variable-access checker (FSM_UVA of Table 2).

Two state families, both keyed per alias set:

* **scalar states** (namespace ``uva``) — register-kept locals: SUI on
  declaration, SI on first definite assignment, bug on use while SUI;
* **region states** (namespace ``uva.region``) — the memory behind a
  pointer (stack slot or heap object), field-sensitive: the state
  records which fields were individually initialized; loading an
  untouched field of an SUI region is a bug.  ``memset`` and zeroing
  allocators (kzalloc/calloc) initialize the whole region.

Keeping the families separate matters: after ``p = kmalloc(...)`` the
pointer *value* of ``p`` is perfectly initialized while the region it
points to is not.
"""

from __future__ import annotations

from ..events import (
    AllocEvent,
    AssignConstEvent,
    BugKind,
    CallReturnEvent,
    DeclLocalEvent,
    Event,
    LoadEvent,
    MemInitEvent,
    StoreEvent,
    UseVarEvent,
)
from ..fsm import UVA_FSM
from ..manager import Checker, PossibleBug, TrackerContext
from ...presolve.events import EventKind

_SCALAR_INIT = ("SI", None)
_REGION_INIT = ("SI", None, frozenset())


class UninitializedAccessChecker(Checker):
    """Uninitialized-access checker (FSM_UVA); see the module docstring."""

    name = "uva"
    kind = BugKind.UVA
    fsm = UVA_FSM
    relevant_events = (
        EventKind.DECL_LOCAL | EventKind.ALLOC_UNINIT | EventKind.ALLOC_HEAP
        | EventKind.ASSIGN_CONST | EventKind.MEM_INIT | EventKind.STORE
        | EventKind.USE | EventKind.CALL_RETURN
    )
    #: SUI is only reachable via an uninitialized declaration/allocation
    trigger_events = EventKind.DECL_LOCAL | EventKind.ALLOC_UNINIT
    #: reports fire at scalar uses and region loads (both mapped to USE)
    sink_events = EventKind.USE
    handled_events = (
        AllocEvent, DeclLocalEvent, AssignConstEvent, MemInitEvent,
        StoreEvent, LoadEvent, UseVarEvent, CallReturnEvent,
    )

    REGION = "uva.region"

    @property
    def state_namespaces(self):
        return (self.name, self.REGION)

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, AllocEvent):
            if event.zeroed:
                ctx.set(self.REGION, event.ptr, _REGION_INIT)
            else:
                ctx.set(self.REGION, event.ptr, ("SUI", event.inst, frozenset()))
        elif isinstance(event, DeclLocalEvent):
            ctx.set(self.name, event.var, ("SUI", event.inst))
        elif isinstance(event, AssignConstEvent):
            ctx.set(self.name, event.var, _SCALAR_INIT)
        elif isinstance(event, MemInitEvent):
            ctx.set(self.REGION, event.ptr, _REGION_INIT)
        elif isinstance(event, StoreEvent):
            self._handle_store(event, ctx)
        elif isinstance(event, LoadEvent):
            self._handle_load(event, ctx)
        elif isinstance(event, UseVarEvent):
            state = ctx.get(self.name, event.var)
            if state is not None and state[0] == "SUI":
                self._report(ctx, event.var.display_name(), state[1], event.inst)
                ctx.set(self.name, event.var, _SCALAR_INIT)
        elif isinstance(event, CallReturnEvent):
            ctx.set(self.name, event.dst, _SCALAR_INIT)

    def _handle_store(self, event: StoreEvent, ctx: TrackerContext) -> None:
        base = ctx.base_of(event.addr)
        if base is not None:
            base_var, field = base
            state = ctx.get(self.REGION, base_var)
            if state is not None and state[0] == "SUI":
                ctx.set(self.REGION, base_var, ("SUI", state[1], state[2] | {field}))
        else:
            # Store through the object pointer itself (*p = v) defines the
            # scalar region.
            ctx.set(self.REGION, event.addr, _REGION_INIT)

    def _handle_load(self, event: LoadEvent, ctx: TrackerContext) -> None:
        base = ctx.base_of(event.addr)
        if base is not None:
            base_var, field = base
            state = ctx.get(self.REGION, base_var)
            if state is not None and state[0] == "SUI" and field not in state[2]:
                self._report(
                    ctx,
                    f"{base_var.display_name()}->{field}",
                    state[1],
                    event.inst,
                )
                ctx.set(self.REGION, base_var, ("SUI", state[1], state[2] | {field}))
            return
        state = ctx.get(self.REGION, event.addr)
        if state is not None and state[0] == "SUI":
            self._report(ctx, f"*{event.addr.display_name()}", state[1], event.inst)
            ctx.set(self.REGION, event.addr, _REGION_INIT)

    def _report(self, ctx: TrackerContext, subject: str, source, sink) -> None:
        ctx.report(
            PossibleBug(
                kind=self.kind,
                checker=self.name,
                subject=subject,
                source=source if source is not None else sink,
                sink=sink,
                message=f"'{subject}' is read before initialization",
            )
        )
