"""Finite-state machines for typestate properties (Definition 2).

An :class:`FSM` is ⟨Σ, S, S0, δ, S_err⟩: input symbols, states, initial
state, transition function and the error (bug) state.  Checkers declare
their property as an FSM and map runtime events to input symbols; the
typestate manager owns the per-alias-set state (Definition 3: one state
per alias set, not per variable).

The three FSMs of Table 2 (NPD, UVA, ML) and the three of §5.5 are
instantiated in :mod:`repro.typestate.checkers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple


@dataclass(frozen=True)
class FSM:
    """An explicit typestate property.

    ``transitions`` maps (state, symbol) to the next state; missing entries
    keep the current state (the "*" self-loops in the paper's diagrams).
    """

    name: str
    states: FrozenSet[str]
    initial: str
    error: str
    alphabet: FrozenSet[str]
    transitions: Mapping[Tuple[str, str], str] = field(default_factory=dict)

    def __post_init__(self):
        for (state, symbol), target in self.transitions.items():
            if state not in self.states or target not in self.states:
                raise ValueError(f"{self.name}: transition {state}/{symbol}->{target} uses unknown state")
            if symbol not in self.alphabet:
                raise ValueError(f"{self.name}: unknown input symbol {symbol!r}")
        if self.initial not in self.states or self.error not in self.states:
            raise ValueError(f"{self.name}: initial/error state not in state set")

    def step(self, state: str, symbol: str) -> str:
        """δ(state, symbol); unspecified pairs self-loop."""
        return self.transitions.get((state, symbol), state)

    def is_error(self, state: str) -> bool:
        return state == self.error

    def run(self, symbols: Iterable[str], start: Optional[str] = None) -> str:
        """Fold a symbol sequence from ``start`` (default S0); useful for
        property tests and documentation examples."""
        state = start if start is not None else self.initial
        for symbol in symbols:
            state = self.step(state, symbol)
        return state


def make_fsm(name: str, initial: str, error: str, transitions: Dict[Tuple[str, str], str]) -> FSM:
    """Build an FSM inferring the state set and alphabet from transitions."""
    states = {initial, error}
    alphabet = set()
    for (state, symbol), target in transitions.items():
        states.add(state)
        states.add(target)
        alphabet.add(symbol)
    return FSM(name, frozenset(states), initial, error, frozenset(alphabet), dict(transitions))


# -- Table 2: the three primary typestate properties -------------------------

#: FSM_NPD: S0 → (ass_null | br_null) → SN → deref → SNPD.
NPD_FSM = make_fsm(
    "FSM_NPD",
    initial="S0",
    error="SNPD",
    transitions={
        ("S0", "ass_null"): "SN",
        ("S0", "br_null"): "SN",
        ("S0", "br_nonnull"): "SNON",
        ("S0", "deref"): "S0",
        ("SNON", "ass_null"): "SN",
        ("SNON", "br_null"): "SN",
        ("SN", "br_nonnull"): "SNON",
        ("SN", "deref"): "SNPD",
        ("SNPD", "br_nonnull"): "SNON",  # post-report recovery
    },
)

#: FSM_UVA: S0 → alloc → SUI → use/load → SUVA; ass_const → SI.
UVA_FSM = make_fsm(
    "FSM_UVA",
    initial="S0",
    error="SUVA",
    transitions={
        ("S0", "alloc"): "SUI",
        ("S0", "ass_const"): "SI",
        ("SUI", "ass_const"): "SI",
        ("SUI", "load"): "SUVA",
        ("SUI", "use"): "SUVA",
        ("SUVA", "ass_const"): "SI",  # post-report recovery
    },
)

#: FSM_ML: S0 → malloc → SNF → free → SF; SNF → ret → SML.
ML_FSM = make_fsm(
    "FSM_ML",
    initial="S0",
    error="SML",
    transitions={
        ("S0", "malloc"): "SNF",
        ("SNF", "free"): "SF",
        ("SNF", "ret"): "SML",
        ("SF", "malloc"): "SNF",
    },
)

# -- §5.5: the three additional properties ------------------------------------

DOUBLE_LOCK_FSM = make_fsm(
    "FSM_DL",
    initial="S0",
    error="SDL",
    transitions={
        ("S0", "lock"): "SL",
        ("S0", "unlock"): "SU",
        ("SL", "unlock"): "SU",
        ("SU", "lock"): "SL",
        ("SL", "lock"): "SDL",
        ("SU", "unlock"): "SDL",
        ("SDL", "unlock"): "SU",  # post-report recovery
        ("SDL", "lock"): "SL",
    },
)

ARRAY_UNDERFLOW_FSM = make_fsm(
    "FSM_AIU",
    initial="S0",
    error="SAIU",
    transitions={
        ("S0", "maybe_neg"): "SMN",
        ("S0", "proved_nonneg"): "SNN",
        ("SMN", "proved_nonneg"): "SNN",
        ("SNN", "maybe_neg"): "SMN",
        ("SMN", "index_use"): "SAIU",
        ("SAIU", "proved_nonneg"): "SNN",
    },
)

DIV_ZERO_FSM = make_fsm(
    "FSM_DBZ",
    initial="S0",
    error="SDBZ",
    transitions={
        ("S0", "maybe_zero"): "SMZ",
        ("S0", "proved_nonzero"): "SNZ",
        ("SMZ", "proved_nonzero"): "SNZ",
        ("SNZ", "maybe_zero"): "SMZ",
        ("SMZ", "div_use"): "SDBZ",
        ("SDBZ", "proved_nonzero"): "SNZ",
    },
)
