"""The wire protocol: line-delimited JSON over a local socket.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
Requests are JSON objects with an ``op`` field::

    {"op": "check_module", "id": 1, "files": ["a.c", "b.c"]}
    {"op": "check_diff", "id": 2, "overlay": {"a.c": "int f() {...}"}}
    {"op": "status", "id": 3}
    {"op": "shutdown", "id": 4}

``check_module`` with no ``files`` analyzes the daemon's root file set;
with ``files`` it analyzes exactly those paths (read server-side at
request-processing time), matching a one-shot ``repro-pata check`` on
the same list.  ``check_diff`` analyzes the root set with the overlay's
in-memory sources replacing (or adding to) the on-disk ones.

Responses echo ``id`` and carry ``ok``; check responses add ``output``
(byte-identical to the one-shot CLI's plain stdout), structured
``bugs``/``reports``, ``exit_code``, the analysis ``stats`` scalars,
and a ``serve`` block (queue wait, analysis wall clock, coalescing).
Responses to pipelined requests may arrive out of submission order when
the scheduler coalesces a later request into an earlier identical job —
match on ``id``.

Requests are capped at :data:`MAX_LINE_BYTES` to bound the memory a
misbehaving client can pin; oversized or non-JSON lines get an error
response (and, for unframeable garbage, a closed connection).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Sequence

#: request ops the daemon accepts
OPS = ("check_module", "check_diff", "status", "shutdown")

#: hard cap on one request/response line
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(Exception):
    """A request line the server cannot parse or accept."""


def encode(obj: dict) -> bytes:
    """One wire line for ``obj`` (compact separators, sorted keys —
    deterministic bytes for identical payloads)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"request exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"invalid JSON request: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj


def validate_request(obj: dict) -> str:
    """The request's op, or raise :class:`ProtocolError`."""
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    files = obj.get("files")
    if files is not None and (
        not isinstance(files, list) or not all(isinstance(f, str) for f in files)
    ):
        raise ProtocolError("'files' must be a list of path strings")
    overlay = obj.get("overlay")
    if overlay is not None and (
        not isinstance(overlay, dict)
        or not all(isinstance(k, str) and isinstance(v, str)
                   for k, v in overlay.items())
    ):
        raise ProtocolError("'overlay' must map filenames to source text")
    if op == "check_diff" and not overlay:
        raise ProtocolError("check_diff requires a non-empty 'overlay'")
    return op


def job_key(op: str, paths: Sequence[str],
            overlay: Optional[Dict[str, str]]) -> str:
    """Content hash identifying one unit of analysis work.  Two queued
    requests with equal job keys would read identical inputs and run the
    identical analysis, so the scheduler coalesces them into one run and
    fans the response out."""
    h = hashlib.sha256()
    h.update(op.encode())
    for path in paths:
        h.update(b"\x00p")
        h.update(path.encode("utf-8", "surrogatepass"))
    for name in sorted(overlay or {}):
        h.update(b"\x00o")
        h.update(name.encode("utf-8", "surrogatepass"))
        h.update(b"\x00=")
        h.update(overlay[name].encode("utf-8", "surrogatepass"))
    return h.hexdigest()
