"""Stat-poll file watching (no dependencies, no inotify).

:class:`WatchLoop` snapshots ``(mtime_ns, size)`` for a fixed file list
and reports which paths changed between polls.  Deleted files count as
changed once (and again when they reappear); the analysis itself
surfaces the missing-file error.  Polling is deliberate: it needs no
platform watcher dependency, and the resident session makes the
re-analysis so cheap that sub-second polling is affordable — the
incremental engine guarantees only the dirtied fingerprint closure is
re-explored, however often the poll fires.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

Stamp = Optional[Tuple[int, int]]


class WatchLoop:
    """Poll a file list for changes.

    ``poll_once`` is the testable core (no sleeping); the daemon drives
    ``wait_for_change``, which sleeps ``interval`` between polls until
    something changes or ``should_stop`` says to exit.
    """

    def __init__(self, paths: Sequence[str], interval: float = 0.5):
        self.paths = [str(p) for p in paths]
        self.interval = interval
        self._stamps: Dict[str, Stamp] = {p: self._stat(p) for p in self.paths}

    @staticmethod
    def _stat(path: str) -> Stamp:
        try:
            st = os.stat(path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def poll_once(self) -> List[str]:
        """Paths whose ``(mtime_ns, size)`` changed since the last poll
        (or since construction), in ``paths`` order."""
        changed = []
        for path in self.paths:
            stamp = self._stat(path)
            if stamp != self._stamps[path]:
                self._stamps[path] = stamp
                changed.append(path)
        return changed

    def wait_for_change(
        self, should_stop: Callable[[], bool] = lambda: False
    ) -> List[str]:
        """Block (polling every ``interval`` seconds) until some file
        changes, returning the changed paths — or ``[]`` when
        ``should_stop`` turned true first."""
        while not should_stop():
            changed = self.poll_once()
            if changed:
                return changed
            time.sleep(self.interval)
        return []
