"""The resident analysis daemon: socket listener, FIFO queue, scheduler.

Architecture (all in one process)::

    accept thread ──► connection threads ──► FIFO request queue
                                                   │
    watch thread (stat-poll) ──► internal jobs ────┤
                                                   ▼
                                         scheduler thread
                                     (one analysis at a time,
                                      coalescing identical jobs)
                                                   │
                                                   ▼
                                  Session (resident cache, see session.py)

The scheduler is deliberately single-lane: the session's resident store
is shared mutable state, and the analysis itself parallelizes
internally (``--workers``), so one analysis at a time keeps every
response byte-identical to a one-shot CLI run without any cross-request
locking inside the engine.  Fairness comes from the FIFO queue;
throughput from residency (warm requests are near-instant) and from
**coalescing**: when the scheduler dequeues a check job it sweeps the
queue for later requests with the same job key (same op, paths, and
overlay content — they would run the identical analysis over identical
cache entries) and answers them all from one run.

Robustness contract:

* a request that raises a user-level error (parse error, missing file)
  gets an error response; the session is untouched;
* a request that raises anything else, or exceeds the per-request
  wall-clock timeout, gets an error response **and the session is
  replaced with a fresh one** — a half-mutated resident context must
  never serve the next request (graceful degradation: correctness is
  kept, warmth is lost).  A timed-out analysis thread is left to finish
  against the abandoned session object, whose store nothing else reads;
* ``shutdown`` (or SIGTERM via :meth:`PataServer.request_shutdown`)
  stops the listener, drains every already-queued request with a normal
  response, then exits the scheduler loop.
"""

from __future__ import annotations

import collections
import logging
import os
import socket
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .protocol import ProtocolError, decode, encode, job_key, validate_request
from .session import Session
from .watch import WatchLoop

log = logging.getLogger("repro.serve")


class RequestTimeout(Exception):
    """A request exceeded the server's per-request wall-clock budget."""


class _Connection:
    """One accepted client socket plus a write lock (several queued
    requests from one client may answer from different scheduler
    iterations)."""

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.rfile = sock.makefile("rb")
        self.lock = threading.Lock()

    def send(self, payload: dict) -> None:
        try:
            with self.lock:
                self.sock.sendall(encode(payload))
        except OSError:
            pass  # client went away; its response has nowhere to go

    def close(self) -> None:
        for closer in (self.rfile.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass


class _Request:
    """One queued unit of work."""

    __slots__ = ("conn", "payload", "op", "key", "enqueued")

    def __init__(self, conn: Optional[_Connection], payload: dict, op: str,
                 key: Optional[str]):
        self.conn = conn          # None for internal (watch) jobs
        self.payload = payload
        self.op = op
        self.key = key            # None for status/shutdown
        self.enqueued = time.monotonic()

    def respond(self, body: dict) -> None:
        if "id" in self.payload:
            body = {"id": self.payload["id"], **body}
        if self.conn is not None:
            self.conn.send(body)


class PataServer:
    """A resident analysis daemon serving one root file set.

    ``socket_path`` selects a unix socket; otherwise a localhost TCP
    socket on ``port`` (0 = ephemeral; read :attr:`address` after
    :meth:`start`).  The server never listens on non-loopback
    interfaces — this is a local analysis service, not a network one.
    """

    def __init__(
        self,
        roots: Sequence[str],
        session: Optional[Session] = None,
        config=None,
        checker_spec: str = "default",
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: Optional[float] = None,
        watch: bool = False,
        poll_interval: float = 0.5,
    ):
        self.roots = [str(r) for r in roots]
        self._make_session = lambda: Session(config=config, checker_spec=checker_spec)
        self.session = session if session is not None else self._make_session()
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.watch = watch
        self.poll_interval = poll_interval

        self._queue: collections.deque = collections.deque()
        self._cond = threading.Condition()
        self._stopping = False        # stop accepting; drain and exit
        self._running = False         # start() has been called
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._connections: List[_Connection] = []
        self._started = time.monotonic()
        # observability counters (status endpoint)
        self.requests_served = 0
        self.requests_coalesced = 0
        self.requests_timed_out = 0
        self.requests_failed = 0
        self.sessions_reset = 0
        self.watch_runs = 0

    # -- lifecycle ------------------------------------------------------------

    @property
    def address(self) -> str:
        """Human/CLI-pasteable address of the bound listener."""
        if self.socket_path:
            return self.socket_path
        return f"{self.host}:{self.port}"

    def start(self) -> None:
        """Bind, listen, and start the accept / scheduler / watch
        threads.  Returns once the server is accepting."""
        if self.socket_path:
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(self.socket_path)
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            self.port = listener.getsockname()[1]
        listener.listen(64)
        self._listener = listener
        self._running = True
        for name, target in (
            ("serve-accept", self._accept_loop),
            ("serve-scheduler", self._scheduler_loop),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        if self.watch:
            thread = threading.Thread(
                target=self._watch_loop, name="serve-watch", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        log.info("serving %d root file(s) on %s", len(self.roots), self.address)

    def serve_forever(self) -> None:
        """Start (if needed) and block until the scheduler drains after a
        ``shutdown`` request or :meth:`request_shutdown`.  Joins in short
        slices so the main thread keeps receiving signals (the CLI's
        SIGTERM handler calls :meth:`request_shutdown`)."""
        if not self._running:
            self.start()
        scheduler = next(
            (t for t in self._threads if t.name == "serve-scheduler"), None
        )
        while scheduler is not None and scheduler.is_alive():
            scheduler.join(0.5)

    def request_shutdown(self) -> None:
        """Thread/signal-safe shutdown trigger: enqueue a synthetic
        ``shutdown`` job, so everything already queued drains first
        (the SIGTERM handler calls this)."""
        self._enqueue(_Request(None, {"op": "shutdown"}, "shutdown", None))

    def close(self) -> None:
        self._close_listener()
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        for conn in list(self._connections):
            conn.close()
        if self.socket_path and os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def _close_listener(self) -> None:
        listener, self._listener = self._listener, None
        if listener is None:
            return
        # shutdown() before close(): the accept thread is blocked inside
        # accept(), whose in-flight syscall keeps the kernel socket alive
        # past close() — clients could still connect.  shutdown() tears
        # down the listen queue immediately and wakes the blocked accept.
        for stop in (lambda: listener.shutdown(socket.SHUT_RDWR),
                     listener.close):
            try:
                stop()
            except OSError:
                pass

    # -- accept + connection threads ------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            listener = self._listener
            if listener is None:
                return
            try:
                sock, _ = listener.accept()
            except OSError:
                return  # listener closed: shutting down
            conn = _Connection(sock)
            self._connections.append(conn)
            thread = threading.Thread(
                target=self._connection_loop, args=(conn,),
                name="serve-conn", daemon=True,
            )
            thread.start()

    def _connection_loop(self, conn: _Connection) -> None:
        try:
            while True:
                line = conn.rfile.readline()
                if not line:
                    return
                try:
                    payload = decode(line)
                    op = validate_request(payload)
                except ProtocolError as exc:
                    conn.send({"ok": False, "error": str(exc)})
                    continue
                if self._stopping:
                    conn.send({"ok": False, "error": "server is shutting down",
                               **({"id": payload["id"]} if "id" in payload else {})})
                    continue
                key = None
                if op in ("check_module", "check_diff"):
                    key = job_key(op, self._paths_of(payload),
                                  payload.get("overlay"))
                self._enqueue(_Request(conn, payload, op, key))
        except (OSError, ValueError):
            return  # socket (or its buffered reader) closed under us
        finally:
            try:
                self._connections.remove(conn)
            except ValueError:
                pass
            conn.close()

    def _paths_of(self, payload: dict) -> List[str]:
        files = payload.get("files")
        if files:
            return list(files)
        return list(self.roots)

    def _enqueue(self, request: _Request) -> None:
        with self._cond:
            self._queue.append(request)
            self._cond.notify_all()

    # -- scheduler -------------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue:
                    return  # stopping and drained
                request = self._queue.popleft()
                group = [request]
                if request.key is not None:
                    # Coalesce: sweep later queued requests that would
                    # run the identical analysis into this run.
                    rest = []
                    for other in self._queue:
                        if other.key == request.key:
                            group.append(other)
                        else:
                            rest.append(other)
                    if len(group) > 1:
                        self._queue = collections.deque(rest)
            if request.op == "shutdown":
                self._begin_drain(request)
                continue
            if request.op == "status":
                # Snapshot excludes this status request itself; count it
                # before responding so a client holding the response
                # never observes a counter missing its own request.
                body = {"ok": True, "op": "status", **self._status()}
                self.requests_served += 1
                request.respond(body)
                continue
            self._run_check_group(group)

    def _begin_drain(self, request: _Request) -> None:
        """Stop accepting, acknowledge the shutdown, keep draining: the
        loop exits once the queue (including requests that raced in
        before the listener closed) is empty."""
        self._close_listener()
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        body = {"ok": True, "op": "shutdown",
                "requests_served": self.requests_served}
        self.requests_served += 1
        request.respond(body)
        log.info("shutdown requested; draining %d queued request(s)",
                 len(self._queue))

    # -- check execution -------------------------------------------------------

    def _run_check_group(self, group: List[_Request]) -> None:
        request = group[0]
        paths = self._paths_of(request.payload)
        overlay = request.payload.get("overlay")
        dequeued = time.monotonic()
        try:
            result = self._run_with_timeout(
                lambda: self.session.analyze_paths(paths, overlay)
            )
        except RequestTimeout:
            self.requests_timed_out += 1
            self._degrade(f"request timed out after {self.request_timeout}s")
            self._respond_error(group, "timeout", timed_out=True)
            return
        except (ReproError, OSError, ValueError) as exc:
            # User-level failure (bad source, missing file): the session
            # never started mutating resident state for this program
            # shape in any way that can poison later requests — compile
            # errors happen before analysis, and the store only publishes
            # on commit.  Report and move on.
            self.requests_failed += 1
            self._respond_error(group, f"{type(exc).__name__}: {exc}")
            return
        except Exception as exc:  # engine bug / corrupted residency
            self.requests_failed += 1
            self._degrade(f"analysis crashed: {type(exc).__name__}: {exc}")
            self._respond_error(group, f"{type(exc).__name__}: {exc}")
            return
        analysis_seconds = time.monotonic() - dequeued
        body = self._check_body(request, result, analysis_seconds, len(group))
        # Count before responding: a client holding its response must
        # never observe counters that don't include its own request.
        self.requests_served += len(group)
        self.requests_coalesced += len(group) - 1
        for member in group:
            wait = dequeued - member.enqueued
            per = dict(body)
            per["stats"] = dict(body["stats"], queue_wait_seconds=round(wait, 6))
            per["serve"] = dict(body["serve"], queue_wait_seconds=round(wait, 6))
            member.respond(per)
        if request.conn is None:  # internal watch job
            self.watch_runs += 1
            log.info(
                "watch: re-analyzed %d entr%s (%d cached), %d bug(s), %.3fs",
                result.stats.entries_reanalyzed,
                "y" if result.stats.entries_reanalyzed == 1 else "ies",
                result.stats.entries_cached, len(result.reports),
                analysis_seconds,
            )

    def _check_body(self, request: _Request, result, analysis_seconds: float,
                    group_size: int) -> dict:
        from ..cli import check_output_text

        stats = result.stats.to_dict()
        if not request.payload.get("per_entry"):
            stats.pop("per_entry", None)
        return {
            "ok": True,
            "op": request.op,
            "bugs": len(result.reports),
            "exit_code": 1 if result.reports else 0,
            "reports": [
                {
                    "kind": r.kind.short,
                    "checker": r.checker,
                    "file": r.sink_file,
                    "line": r.sink_line,
                    "source_file": r.source_file,
                    "source_line": r.source_line,
                    "message": r.message,
                    "entry_function": r.entry_function,
                }
                for r in result.reports
            ],
            "output": check_output_text(result),
            "stats": stats,
            "serve": {
                "analysis_seconds": round(analysis_seconds, 6),
                "coalesced": group_size - 1,
                "cache_hits": result.stats.cache_hits,
                "cache_misses": result.stats.cache_misses,
                "entries_cached": result.stats.entries_cached,
                "entries_reanalyzed": result.stats.entries_reanalyzed,
                "resident_cache_entries": result.stats.resident_cache_entries,
                "requests_served": result.stats.requests_served,
                "replayed": result.stats.request_replayed,
            },
        }

    def _respond_error(self, group: List[_Request], error: str,
                       timed_out: bool = False) -> None:
        for member in group:
            body = {"ok": False, "error": error}
            if timed_out:
                body["timed_out"] = True
            member.respond(body)

    def _run_with_timeout(self, fn):
        timeout = self.request_timeout
        if not timeout:
            return fn()
        box: dict = {}
        done = threading.Event()

        def target() -> None:
            try:
                box["result"] = fn()
            except BaseException as exc:  # rethrown in the scheduler
                box["error"] = exc
            finally:
                done.set()

        thread = threading.Thread(target=target, name="serve-analysis", daemon=True)
        thread.start()
        if not done.wait(timeout):
            raise RequestTimeout()
        if "error" in box:
            raise box["error"]
        return box["result"]

    def _degrade(self, reason: str) -> None:
        """Replace the session with a fresh context: the abandoned one
        (possibly still being mutated by a timed-out analysis thread)
        is never read again."""
        log.warning("serve: %s; starting a fresh session (resident cache "
                    "dropped, results unaffected)", reason)
        self.session = self._make_session()
        self.sessions_reset += 1

    # -- status ----------------------------------------------------------------

    def _status(self) -> dict:
        occupancy = self.session.store.occupancy()
        with self._cond:
            depth = len(self._queue)
        return {
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "roots": len(self.roots),
            "queue_depth": depth,
            "requests_served": self.requests_served,
            "requests_coalesced": self.requests_coalesced,
            "requests_timed_out": self.requests_timed_out,
            "requests_failed": self.requests_failed,
            "sessions_reset": self.sessions_reset,
            "session_requests_served": self.session.requests_served,
            "session_replays_served": self.session.replays_served,
            "session_uptime_seconds": round(self.session.uptime_seconds(), 3),
            "resident_cache": occupancy,
            "watch": self.watch,
            "watch_runs": self.watch_runs,
        }

    # -- watch ----------------------------------------------------------------

    def _watch_loop(self) -> None:
        loop = WatchLoop(self.roots, interval=self.poll_interval)
        while not self._stopping:
            changed = loop.wait_for_change(lambda: self._stopping)
            if not changed:
                return
            log.info("watch: %s changed", ", ".join(sorted(changed)))
            self._enqueue(_Request(None, {"op": "check_module"}, "check_module",
                                   job_key("check_module", self.roots, None)))
