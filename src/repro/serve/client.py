"""A minimal client for the resident daemon's line-JSON protocol.

Used by the ``repro-pata submit`` CLI subcommand, the test suite, and
the serve benchmark.  One connection, serial request/response — the
daemon may answer pipelined requests out of order (coalescing), so a
client that wants pipelining must match on ``id`` itself; this one
never has more than one request in flight.
"""

from __future__ import annotations

import socket
from typing import Optional

from .protocol import MAX_LINE_BYTES, ProtocolError, decode, encode


class ServeClient:
    """Connect to a unix-socket or localhost-TCP daemon and exchange
    one JSON object per request."""

    def __init__(self, socket_path: Optional[str] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = None):
        if socket_path:
            self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self.sock.settimeout(timeout)
            self.sock.connect(socket_path)
        else:
            self.sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self.sock.makefile("rb")
        self._next_id = 0

    def request(self, payload: dict) -> dict:
        """Send one request (an ``id`` is added when absent) and block
        for its response."""
        if "id" not in payload:
            self._next_id += 1
            payload = {"id": self._next_id, **payload}
        self.sock.sendall(encode(payload))
        line = self._rfile.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ConnectionError("server closed the connection")
        return decode(line)

    def close(self) -> None:
        for closer in (self._rfile.close, self.sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = ["ServeClient", "ProtocolError"]
