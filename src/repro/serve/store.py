"""The resident (in-memory) half of the incremental cache.

:class:`ResidentStore` speaks the same surface as
:class:`repro.incremental.store.CacheStore` — ``get``/``put``/
``contains``/``commit``, the ``mode`` attribute, and the
``hits``/``misses``/``corrupt`` counters — but keeps every object in
RAM, so a long-lived session pays neither disk I/O nor cold-start
deserialization of a cache directory.

Objects are stored as pickled blobs, not live object graphs, on
purpose: the disk store hands every ``get`` a *fresh* unpickled copy,
and rehydration (:func:`repro.incremental.coords.rehydrate_outcome`)
mutates that copy in place to point at the current program.  Returning
live objects instead would let one request's in-place rehydration
corrupt the resident copy the next request reads.  The pickle
round-trip preserves the disk store's semantics exactly; only the
filesystem (and its latency) is gone.
"""

from __future__ import annotations

import logging
import pickle
import threading
from typing import Any, Dict, Optional

log = logging.getLogger("repro.serve")


class ResidentStore:
    """An in-memory, always-``rw`` cache store for one resident session.

    Thread-safe for the daemon's mixed access pattern (the scheduler
    thread analyzes while connection threads read occupancy for
    ``status`` responses); the single-writer commit discipline of the
    disk store is kept — ``put`` stages, ``commit`` publishes.
    """

    mode = "rw"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._objects: Dict[str, bytes] = {}
        self._staged: Dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0
        self.corrupt = 0

    # -- CacheStore surface --------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            blob = self._staged.get(key)
            if blob is None:
                blob = self._objects.get(key)
        if blob is None:
            self.misses += 1
            return None
        try:
            value = pickle.loads(blob)
        except Exception as exc:
            # Unpicklable resident objects should be impossible (we
            # pickled them ourselves), but mirror the disk store's
            # degrade-to-miss contract rather than crash a request.
            log.warning("resident store: undecodable object %s (%s); "
                        "treating as a miss", key[:12], exc)
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return value

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._staged or key in self._objects

    def put(self, key: str, value: Any) -> None:
        if self.contains(key):
            return
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._staged[key] = blob

    def commit(self) -> int:
        with self._lock:
            written = len(self._staged)
            self._objects.update(self._staged)
            self._staged.clear()
        return written

    # -- occupancy (status endpoint) -----------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._objects)

    def occupancy(self) -> Dict[str, int]:
        """Resident-object count and byte footprint, for ``status``."""
        with self._lock:
            return {
                "objects": len(self._objects),
                "staged": len(self._staged),
                "bytes": sum(len(b) for b in self._objects.values()),
            }
