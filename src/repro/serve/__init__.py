"""Analysis-as-a-service: the resident session daemon.

The batch pipeline (P1 collection → P1.5 relevance → P2 path-sensitive
solving) pays process startup, module compile, and cache
deserialization on every CLI invocation, even when the incremental
engine makes the analysis itself nearly free.  This package keeps all
of that resident:

* :class:`~.store.ResidentStore` — an in-memory object store speaking
  the :class:`~repro.incremental.store.CacheStore` surface, so every
  cache layer (compiled modules, P1 facts, relevance masks, the P1.7
  partition, P1.8 flow facts, P2 outcomes, P2.6 summaries) stays in RAM
  across requests;
* :class:`~.session.Session` — ``PATA.analyze`` refactored into a
  reusable object owning one resident store: repeated ``analyze()``
  calls are warm-cache runs with byte-identical reports;
* :class:`~.daemon.PataServer` — a line-delimited-JSON socket daemon
  (unix socket or localhost TCP) with a FIFO request queue, request
  coalescing, per-request timeouts, and clean SIGTERM drain;
* :class:`~.watch.WatchLoop` — a stat-poll watcher that re-analyzes
  exactly the dirtied fingerprint closure on file change;
* :class:`~.client.ServeClient` — the tiny client the ``submit`` CLI
  subcommand and the tests use.
"""

from .client import ServeClient
from .daemon import PataServer
from .session import Session
from .store import ResidentStore
from .watch import WatchLoop

__all__ = ["PataServer", "ResidentStore", "ServeClient", "Session", "WatchLoop"]
