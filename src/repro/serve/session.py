"""``PATA.analyze`` refactored into a reusable, cache-resident session.

A :class:`Session` owns one :class:`~.store.ResidentStore` and runs any
number of analyses against it.  The first request over a file set is a
cold run that populates every cache layer — compiled modules (+
fingerprints), P1 may-return facts, P1.5 relevance masks, the P1.7
may-alias partition, P1.8 must-alias facts (layer f), per-entry P2
outcomes, and P2.6 xtaint interface summaries (layer x).  Every later
request over unchanged content is a fully-warm run: the plan bundle
resolves in one in-memory read and only dirtied fingerprint closures
are re-explored.  Reports are byte-identical to a one-shot
``PATA().analyze`` over the same sources and config — residency is an
optimization, never a precision or soundness trade.

Residency has two tiers.  The *cache* tier above re-resolves the plan
and replays per-entry outcomes out of the resident store.  On top of it
sits the *replay memo*: a bounded, content-addressed map from the exact
request fingerprint (ordered (filename, source-bytes) list — config and
checkers are fixed per session) to the finished
:class:`~repro.core.AnalysisResult`.  An identical repeated request —
the common daemon steady state: the same watch job, the same IDE query
— skips even deserialization and report re-validation and returns the
prior result, whose bytes were already proven equal to a one-shot run.
Any changed byte misses the memo and takes the cache tier.

Two session-level stat adjustments make per-request numbers honest:
the store's hit/miss counters are cumulative across the session's
lifetime, so each request's stats are rewritten to the *delta* this
request caused, and the serve counters (``requests_served``,
``resident_cache_entries``, ``request_replayed``) are stamped on every
result.
"""

from __future__ import annotations

import collections
import hashlib
import pathlib
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core import AnalysisConfig, AnalysisResult, PATA
from .store import ResidentStore

Source = Tuple[str, str]

#: how many distinct recent requests the replay memo keeps (FIFO).  A
#: daemon typically cycles over a handful of request shapes (the root
#: set, a few subsets, the watch job); eight bounds memory while keeping
#: all of them resident.
MEMO_LIMIT = 8


class Session:
    """A resident analysis session: one config, one checker spec, one
    in-memory cache shared by every :meth:`analyze` call.

    ``checker_spec`` must be a spec string (not live checker objects) —
    residency rides the incremental engine, which needs
    spec-addressable checkers to fingerprint cache keys.
    """

    def __init__(
        self,
        config: Optional[AnalysisConfig] = None,
        checker_spec: str = "default",
        store: Optional[ResidentStore] = None,
    ):
        self.config = config or AnalysisConfig()
        self.checker_spec = checker_spec
        # Validate the spec eagerly (PATA does the same) so a bad spec
        # fails at session construction, not on the first request.
        PATA(config=self.config, checker_spec=checker_spec)
        self.store = store if store is not None else ResidentStore()
        self.requests_served = 0
        self.replays_served = 0
        self.created = time.monotonic()
        # request fingerprint -> AnalysisResult, FIFO-bounded
        self._memo: "collections.OrderedDict[str, AnalysisResult]" = (
            collections.OrderedDict()
        )

    # -- the one entry point --------------------------------------------------

    def analyze(self, sources: Iterable[Source]) -> AnalysisResult:
        """Analyze ``(filename, text)`` pairs against the resident cache.

        Byte-identical to ``PATA(config, checker_spec).analyze_sources``
        on the same inputs; repeated calls on unchanged sources are
        warm-cache runs that re-explore nothing.
        """
        from ..incremental import compile_with_cache

        sources = list(sources)
        key = self._request_key(sources)
        memo = self._memo.get(key)
        if memo is not None:
            return self._replay(key, memo)
        hits0, misses0, corrupt0 = (
            self.store.hits, self.store.misses, self.store.corrupt,
        )
        program = compile_with_cache(sources, self.store)
        self.store.commit()
        pata = PATA(
            config=self.config, checker_spec=self.checker_spec, store=self.store
        )
        result = pata.analyze(program)
        self.requests_served += 1
        stats = result.stats
        # Per-request deltas: PATA stamped the store's cumulative
        # counters; a resident session's totals grow forever, so the
        # honest per-request number is the difference.
        stats.cache_hits = self.store.hits - hits0
        stats.cache_misses = self.store.misses - misses0
        stats.cache_corrupt = self.store.corrupt - corrupt0
        stats.requests_served = self.requests_served
        stats.resident_cache_entries = len(self.store)
        self._memo[key] = result
        while len(self._memo) > MEMO_LIMIT:
            self._memo.popitem(last=False)
        return result

    # -- the replay memo ------------------------------------------------------

    @staticmethod
    def _request_key(sources: Sequence[Source]) -> str:
        """Content fingerprint of one request: the exact (name, bytes)
        list, in order.  Config and checker spec are fixed per session,
        so they need no hashing."""
        h = hashlib.sha256()
        for name, text in sources:
            h.update(name.encode("utf-8", "surrogatepass"))
            h.update(b"\x00")
            h.update(text.encode("utf-8", "surrogatepass"))
            h.update(b"\x00")
        return h.hexdigest()

    def _replay(self, key: str, memo: AnalysisResult) -> AnalysisResult:
        """Answer an exactly-repeated request from the memo: same names,
        same bytes, same config and checkers — the reports are the prior
        run's, byte for byte, without touching the store at all.  The
        returned result carries its own stats copy (the memoized run's
        numbers must not be restamped retroactively), rewritten
        honestly: a replay reads zero cache entries and re-analyzes
        nothing."""
        import copy

        self._memo.move_to_end(key)
        self.requests_served += 1
        self.replays_served += 1
        stats = copy.copy(memo.stats)
        stats.cache_hits = 0
        stats.cache_misses = 0
        stats.cache_corrupt = 0
        stats.entries_cached += stats.entries_reanalyzed
        stats.entries_reanalyzed = 0
        stats.request_replayed = True
        stats.requests_served = self.requests_served
        stats.resident_cache_entries = len(self.store)
        return AnalysisResult(reports=memo.reports, stats=stats)

    def analyze_paths(
        self,
        paths: Sequence[str],
        overlay: Optional[Dict[str, str]] = None,
    ) -> AnalysisResult:
        """Analyze on-disk files, optionally replacing (or adding)
        in-memory sources from ``overlay`` — the ``check_diff`` request
        shape: the result equals writing the overlay to disk and
        analyzing the same path list."""
        overlay = dict(overlay or {})
        sources: List[Source] = []
        seen = set()
        for name in paths:
            seen.add(name)
            if name in overlay:
                sources.append((name, overlay.pop(name)))
            else:
                sources.append((name, pathlib.Path(name).read_text()))
        # Overlay entries naming files outside the path list append, in
        # sorted order for determinism.
        for name in sorted(overlay):
            if name not in seen:
                sources.append((name, overlay[name]))
        return self.analyze(sources)

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Swap in a fresh, empty resident store — the graceful
        degradation path after a request timed out or crashed midway
        (a half-mutated store must never serve the next request).
        Results stay correct either way; only warmth is lost."""
        self.store = ResidentStore()
        self._memo.clear()

    def uptime_seconds(self) -> float:
        return time.monotonic() - self.created
