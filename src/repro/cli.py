"""Command-line interface.

Subcommands::

    repro-pata check FILE.c ...      analyze mini-C sources with PATA
    repro-pata serve FILE.c ...      resident analysis daemon (socket API)
    repro-pata submit check_module   submit a job to a running daemon
    repro-pata corpus --os linux     generate a synthetic OS tree
    repro-pata eval table5           regenerate one of the paper's tables
    repro-pata compare --os zephyr   one OS row of Table 8 vs the baselines

Also reachable as ``python -m repro ...``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from . import PATA, AnalysisConfig, __version__
from .baselines import all_baselines
from .corpus import PROFILES_BY_NAME, generate, match_findings
from .evaluation import (
    EvaluationHarness,
    PRIMARY_KINDS,
    fig11_distribution,
    render_table,
    table4_os_info,
    table5_analysis,
    table6_sensitivity,
    table7_generality,
    table8_comparison,
)
from .lang import compile_program

_EVAL_TARGETS = {
    "table4": table4_os_info,
    "table5": table5_analysis,
    "table6": table6_sensitivity,
    "table7": table7_generality,
    "table8": table8_comparison,
    "fig11": fig11_distribution,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro-pata",
        description="PATA: path-sensitive and alias-aware typestate analysis (ASPLOS'22 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="analyze mini-C source files")
    check.add_argument("files", nargs="*", help="mini-C source files")
    check.add_argument("--all-checkers", action="store_true",
                       help="enable double-lock / underflow / div-zero checkers too "
                            "(shorthand for --checkers all)")
    check.add_argument("--checkers", metavar="SPEC", default=None,
                       help="comma-separated checker names and/or aliases, "
                            "e.g. 'npd,ml,taint' or 'default,taint' "
                            "(see --list-checkers)")
    check.add_argument("--list-checkers", action="store_true",
                       help="print every registered checker (name, FSM states, "
                            "presolve event masks) and exit")
    check.add_argument("--no-validate", action="store_true",
                       help="skip stage-2 path validation (report all possible bugs)")
    check.add_argument("--na", action="store_true",
                       help="run the PATA-NA ablation (no alias relationships)")
    check.add_argument("--json", action="store_true", help="machine-readable output")
    check.add_argument("--max-paths", type=int, default=None,
                       help="path budget per entry function")
    check.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes for entry analysis "
                            "(1 = sequential, 0 = one per CPU)")
    check.add_argument("--batch-size", type=int, default=0, metavar="N",
                       help="entries per dispatched work batch (0 = auto-size "
                            "for ~--dispatch-factor batches per worker)")
    check.add_argument("--dispatch-factor", type=int, default=4, metavar="K",
                       help="with auto batch sizing, target batches pulled per "
                            "worker (higher = finer work stealing)")
    check.add_argument("--start-method", choices=["fork", "spawn"], default=None,
                       help="worker start method (default: fork where available; "
                            "spawn forces the portable rebuild-once path)")
    check.add_argument("--no-prune", action="store_true",
                       help="disable the checker-relevance pre-analysis "
                            "(P1.5) entry/path pruning")
    check.add_argument("--alias-tier", choices=["off", "steens", "flow", "on"],
                       default="flow",
                       help="alias precision tier: off (per-path graphs only), "
                            "steens (P1.7 whole-program Steensgaard pre-pass "
                            "and its singleton fast paths), flow (additionally "
                            "the P1.8 flow-sensitive pass with strong updates); "
                            "reports are byte-identical across tiers "
                            "(default: flow; 'on' is a deprecated alias for "
                            "steens, kept for pre-tier-ladder scripts)")
    check.add_argument("--taint-borders", action="store_true",
                       help="xtaint border-source inference: treat interface "
                            "parameters of registered functions with no extern "
                            "caller as tainted (off by default; only the "
                            "xtaint checker consults it)")
    check.add_argument("--stats", action="store_true",
                       help="print a per-entry-function stats table")
    check.add_argument("--stats-json", metavar="FILE", default=None,
                       help="write the full stats counters (plus per-entry rows) "
                            "as JSON to FILE ('-' = stdout)")
    check.add_argument("--cache-dir", metavar="PATH", default=None,
                       help="incremental-cache directory (created on first "
                            "--cache rw run); reports are byte-identical with "
                            "the cache cold, warm, or partially populated")
    check.add_argument("--cache", choices=["off", "ro", "rw"], default="off",
                       help="incremental cache mode: off (default), ro (reuse "
                            "summaries, write nothing), rw (reuse and commit "
                            "new summaries at exit)")
    check.add_argument("--confirm", action="store_true",
                       help="re-run each report in the concrete interpreter "
                            "over adversarial inputs and tag confirmed bugs")

    serve = sub.add_parser(
        "serve",
        help="resident analysis daemon: keep compiled modules + all cache "
             "layers in RAM and answer check jobs over a local socket")
    serve.add_argument("files", nargs="+", help="root mini-C source files to serve")
    serve.add_argument("--socket", metavar="PATH", default=None,
                       help="listen on a unix socket at PATH (default: TCP)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="TCP listen address (loopback only; default %(default)s)")
    serve.add_argument("--port", type=int, default=0, metavar="N",
                       help="TCP port (default 0 = ephemeral; the bound "
                            "address is printed on startup)")
    serve.add_argument("--checkers", metavar="SPEC", default=None,
                       help="checker spec for every served request "
                            "(default: the 'default' alias)")
    serve.add_argument("--all-checkers", action="store_true",
                       help="shorthand for --checkers all")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes per analysis (as in check)")
    serve.add_argument("--alias-tier", choices=["off", "steens", "flow", "on"],
                       default="flow", help="alias precision tier (as in check)")
    serve.add_argument("--no-prune", action="store_true",
                       help="disable P1.5 pruning (as in check)")
    serve.add_argument("--taint-borders", action="store_true",
                       help="xtaint border-source inference (as in check)")
    serve.add_argument("--max-paths", type=int, default=None,
                       help="path budget per entry function (as in check)")
    serve.add_argument("--watch", action="store_true",
                       help="stat-poll the root files and re-analyze the "
                            "dirtied closure on change")
    serve.add_argument("--poll-interval", type=float, default=0.5, metavar="S",
                       help="watch poll interval in seconds (default %(default)s)")
    serve.add_argument("--request-timeout", type=float, default=None, metavar="S",
                       help="per-request wall-clock budget; a request over "
                            "budget gets an error and the resident context "
                            "is replaced fresh (default: no timeout)")

    submit = sub.add_parser(
        "submit", help="submit one job to a running serve daemon")
    submit.add_argument("op", choices=["check_module", "check_diff", "status",
                                       "shutdown"])
    submit.add_argument("files", nargs="*",
                        help="check_module: paths the server analyzes; "
                             "check_diff: local files sent as an in-memory "
                             "overlay on the server's root set")
    submit.add_argument("--socket", metavar="PATH", default=None,
                        help="daemon unix socket path")
    submit.add_argument("--host", default="127.0.0.1", help="daemon TCP host")
    submit.add_argument("--port", type=int, default=0, help="daemon TCP port")
    submit.add_argument("--timeout", type=float, default=120.0, metavar="S",
                        help="client-side response timeout (default %(default)s)")
    submit.add_argument("--json", action="store_true",
                        help="print the full JSON response instead of the "
                             "check output text")

    lint = sub.add_parser("lint", help="source-level diagnostics (no compilation)")
    lint.add_argument("files", nargs="+", help="mini-C source files")

    corpus = sub.add_parser("corpus", help="generate a synthetic OS corpus")
    corpus.add_argument("--os", choices=sorted(PROFILES_BY_NAME), required=True)
    corpus.add_argument("--scale", type=float, default=1.0)
    corpus.add_argument("--out", type=pathlib.Path, default=None,
                        help="write the tree (plus ground_truth.json) here")
    corpus.add_argument("--stats", action="store_true", help="print corpus statistics only")

    evaluate = sub.add_parser("eval", help="regenerate a paper table/figure")
    evaluate.add_argument("target", choices=sorted(_EVAL_TARGETS) + ["all"])
    evaluate.add_argument("--scale", type=float, default=1.0)
    evaluate.add_argument("--markdown", type=pathlib.Path, default=None,
                          help="with target 'all': write a full markdown report here")
    evaluate.add_argument("--workers", type=int, default=1, metavar="N",
                          help="worker processes for PATA runs "
                               "(1 = sequential, 0 = one per CPU)")

    compare = sub.add_parser("compare", help="PATA vs the seven baselines on one OS")
    compare.add_argument("--os", choices=sorted(PROFILES_BY_NAME), default="zephyr")
    compare.add_argument("--scale", type=float, default=1.0)
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def check_summary_line(result) -> str:
    """The final line of ``check``'s plain output."""
    return f"{len(result.reports)} bug(s); {result.summary()}"


def check_output_text(result) -> str:
    """Exactly the plain (no ``--stats``/``--confirm``) stdout of the
    ``check`` subcommand for ``result`` — the daemon ships this in every
    check response so clients can diff it byte-for-byte against a
    one-shot CLI run."""
    parts = []
    for report in result.reports:
        parts.append(report.render())
        parts.append("")
    parts.append(check_summary_line(result))
    return "\n".join(parts) + "\n"


def cmd_list_checkers() -> int:
    """``check --list-checkers``: one block per registered checker."""
    from .presolve.events import event_names
    from .typestate import CHECKER_ALIASES, registered_checkers

    def mask_names(mask) -> str:
        names = event_names(mask)
        return ", ".join(names) if names else "(none)"

    for checker in registered_checkers():
        fsm = checker.fsm
        states = ", ".join(sorted(fsm.states))
        print(f"{checker.name}  [{checker.kind.short}] {checker.kind.value}")
        print(f"  fsm       {fsm.name}: {states} (initial {fsm.initial}, error {fsm.error})")
        print(f"  relevant  {mask_names(checker.relevant_events)}")
        print(f"  triggers  {mask_names(checker.trigger_events)}")
        print(f"  sinks     {mask_names(checker.sink_events)}")
    aliases = ", ".join(f"{alias} = {spec}" for alias, spec in CHECKER_ALIASES.items())
    print(f"aliases: {aliases}")
    return 0


def cmd_check(args) -> int:
    """``check``: analyze mini-C files with PATA; exit 1 when bugs found."""
    if args.list_checkers:
        return cmd_list_checkers()
    if not args.files:
        print("error: no input files (or use --list-checkers)", file=sys.stderr)
        return 2
    if args.all_checkers and args.checkers:
        print("error: --all-checkers and --checkers are mutually exclusive", file=sys.stderr)
        return 2
    sources = []
    for name in args.files:
        path = pathlib.Path(name)
        if not path.exists():
            print(f"error: no such file: {name}", file=sys.stderr)
            return 2
        sources.append((str(path), path.read_text()))
    if args.cache != "off" and not args.cache_dir:
        print("error: --cache ro/rw requires --cache-dir PATH", file=sys.stderr)
        return 2
    if args.cache_dir and args.cache == "off":
        print("warning: --cache-dir given but --cache is off; caching disabled",
              file=sys.stderr)
    config = AnalysisConfig(validate_paths=not args.no_validate, workers=args.workers,
                            prune=not args.no_prune,
                            alias_tier=args.alias_tier,
                            parallel_batch_size=args.batch_size,
                            parallel_dispatch_factor=args.dispatch_factor,
                            parallel_start_method=args.start_method,
                            taint_borders=args.taint_borders,
                            cache_dir=args.cache_dir, cache_mode=args.cache)
    if args.max_paths is not None:
        config.max_paths_per_entry = args.max_paths
    if args.na:
        config = config.for_pata_na()
    spec = "all" if args.all_checkers else (args.checkers or "default")
    try:
        pata = PATA(config=config, checker_spec=spec)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if config.cache_active():
        # Layer-0 frontend cache: unchanged files skip the parser and
        # lowering entirely.  The store is committed here (parent
        # process, before analysis) — PATA opens its own handle for the
        # summary layers and performs the second, analysis-side commit.
        from .incremental import compile_with_cache, open_store

        store = open_store(config.cache_dir, config.cache_mode)
        program = compile_with_cache(sources, store)
        if store is not None:
            store.commit()
        result = pata.analyze(program)
    else:
        result = pata.analyze_sources(sources)

    confirmations = {}
    if args.confirm and result.reports:
        from .interp import DynamicConfirmer
        from .lang import compile_program as _compile

        program = _compile(sources)
        confirmer = DynamicConfirmer(program)
        for report, confirmation in zip(result.reports, confirmer.confirm_all(result.reports)):
            confirmations[id(report)] = confirmation

    if args.stats_json:
        stats_payload = {"version": __version__, **result.stats.to_dict()}
        stats_text = json.dumps(stats_payload, indent=2)
        if args.stats_json == "-":
            print(stats_text)
        else:
            pathlib.Path(args.stats_json).write_text(stats_text + "\n")

    if args.json:
        payload = {
            "version": __version__,
            "bugs": [
                {
                    "kind": r.kind.short,
                    "checker": r.checker,
                    "file": r.sink_file,
                    "line": r.sink_line,
                    "source_file": r.source_file,
                    "source_line": r.source_line,
                    "message": r.message,
                    "entry_function": r.entry_function,
                    **(
                        {
                            "confirmed": confirmations[id(r)].confirmed,
                            "witness": confirmations[id(r)].witness,
                        }
                        if id(r) in confirmations
                        else {}
                    ),
                }
                for r in result.reports
            ],
            "stats": {
                "paths": result.stats.explored_paths,
                "entries": result.stats.entry_functions,
                "dropped_false": result.stats.dropped_false_bugs,
                "dropped_repeated": result.stats.dropped_repeated_bugs,
                "time_seconds": result.stats.time_seconds,
                "workers": result.stats.workers_used,
                "batches": result.stats.batches_dispatched,
                "entries_skipped": result.stats.entries_skipped,
                "blocks_pruned": result.stats.blocks_pruned,
                "paths_pruned": result.stats.paths_pruned,
                "cache_hits": result.stats.cache_hits,
                "cache_misses": result.stats.cache_misses,
                "entries_cached": result.stats.entries_cached,
                "entries_reanalyzed": result.stats.entries_reanalyzed,
                **(
                    {
                        "per_entry": [
                            {
                                "entry": e.name,
                                "paths": e.paths,
                                "steps": e.steps,
                                "wall_seconds": e.wall_seconds,
                                "budget_exhausted": e.budget_exhausted,
                                "paths_pruned": e.paths_pruned,
                                "blocks_pruned": e.blocks_pruned,
                                "skipped": e.skipped,
                                "cached": e.cached,
                            }
                            for e in result.stats.per_entry
                        ]
                    }
                    if args.stats
                    else {}
                ),
            },
        }
        print(json.dumps(payload, indent=2))
    else:
        for report in result.reports:
            print(report.render())
            confirmation = confirmations.get(id(report))
            if confirmation is not None:
                if confirmation.confirmed:
                    print(f"  CONFIRMED at runtime with {confirmation.witness}")
                else:
                    print(f"  not reproduced in {confirmation.runs} interpreter runs")
            print()
        if args.stats:
            print(result.stats.render_entry_table())
            print()
        print(check_summary_line(result))
    return 1 if result.reports else 0


def cmd_serve(args) -> int:
    """``serve``: run the resident analysis daemon until shutdown."""
    import signal

    from .serve import PataServer

    for name in args.files:
        if not pathlib.Path(name).exists():
            print(f"error: no such file: {name}", file=sys.stderr)
            return 2
    if args.all_checkers and args.checkers:
        print("error: --all-checkers and --checkers are mutually exclusive",
              file=sys.stderr)
        return 2
    config = AnalysisConfig(workers=args.workers, prune=not args.no_prune,
                            alias_tier=args.alias_tier,
                            taint_borders=args.taint_borders)
    if args.max_paths is not None:
        config.max_paths_per_entry = args.max_paths
    spec = "all" if args.all_checkers else (args.checkers or "default")
    try:
        server = PataServer(
            roots=args.files, config=config, checker_spec=spec,
            socket_path=args.socket, host=args.host, port=args.port,
            request_timeout=args.request_timeout,
            watch=args.watch, poll_interval=args.poll_interval,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server.start()
    print(f"serving {len(args.files)} file(s) on {server.address}", flush=True)

    def on_signal(signum, frame):
        server.request_shutdown()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    server.serve_forever()
    server.close()
    print("server drained; exiting", flush=True)
    return 0


def cmd_submit(args) -> int:
    """``submit``: one request to a running daemon; for check ops the
    exit code mirrors the equivalent one-shot ``check`` run."""
    from .serve import ServeClient

    payload = {"op": args.op}
    if args.op == "check_module" and args.files:
        payload["files"] = args.files
    if args.op == "check_diff":
        if not args.files:
            print("error: check_diff requires at least one file", file=sys.stderr)
            return 2
        overlay = {}
        for name in args.files:
            path = pathlib.Path(name)
            if not path.exists():
                print(f"error: no such file: {name}", file=sys.stderr)
                return 2
            overlay[str(path)] = path.read_text()
        payload["overlay"] = overlay
    try:
        with ServeClient(socket_path=args.socket, host=args.host,
                         port=args.port, timeout=args.timeout) as client:
            response = client.request(payload)
    except (OSError, ConnectionError) as exc:
        print(f"error: cannot reach server: {exc}", file=sys.stderr)
        return 2
    if args.json or args.op in ("status", "shutdown"):
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("ok") else 2
    if not response.get("ok"):
        print(f"error: {response.get('error', 'request failed')}", file=sys.stderr)
        return 2
    print(response["output"], end="")
    return int(response.get("exit_code", 0))


def cmd_lint(args) -> int:
    """``lint``: source diagnostics without compilation; exit 1 on findings."""
    from .lang.sema import check_source

    total = 0
    for name in args.files:
        path = pathlib.Path(name)
        if not path.exists():
            print(f"error: no such file: {name}", file=sys.stderr)
            return 2
        for diagnostic in check_source(path.read_text(), str(path)):
            print(diagnostic)
            total += 1
    print(f"{total} diagnostic(s)")
    return 1 if total else 0


def cmd_corpus(args) -> int:
    """``corpus``: generate a synthetic OS tree (optionally to disk)."""
    profile = PROFILES_BY_NAME[args.os].scaled(args.scale)
    corpus = generate(profile)
    print(f"{profile.name} {profile.version_label}: {len(corpus.files)} files, "
          f"{corpus.total_lines():,} LOC, {len(corpus.ground_truth)} injected bugs, "
          f"{len(corpus.bait_regions)} bait regions")
    if args.stats or args.out is None:
        by_kind = {}
        for gt in corpus.ground_truth:
            by_kind[gt.kind.short] = by_kind.get(gt.kind.short, 0) + 1
        for kind, count in sorted(by_kind.items()):
            print(f"  {kind:4s} {count}")
        if args.out is None:
            return 0
    out: pathlib.Path = args.out
    for f in corpus.files:
        target = out / f.path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(f.source)
    truth = [
        {
            "uid": g.uid, "kind": g.kind.short, "path": g.path,
            "line_start": g.line_start, "line_end": g.line_end,
            "category": g.category, "pattern": g.pattern,
        }
        for g in corpus.ground_truth
    ]
    (out / "ground_truth.json").write_text(json.dumps(truth, indent=2))
    print(f"wrote tree + ground_truth.json under {out}")
    return 0


def cmd_eval(args) -> int:
    """``eval``: regenerate paper tables/figures (or a markdown report)."""
    harness = EvaluationHarness(scale=args.scale, config=AnalysisConfig(workers=args.workers))
    if args.markdown is not None and args.target == "all":
        from .evaluation import generate_markdown_report

        report = generate_markdown_report(harness)
        args.markdown.write_text(report)
        print(f"wrote {args.markdown}")
        return 0
    targets = sorted(_EVAL_TARGETS) if args.target == "all" else [args.target]
    for name in targets:
        _, text = _EVAL_TARGETS[name](harness)
        print(text)
        print()
    return 0


def cmd_compare(args) -> int:
    """``compare``: one Table-8 row — PATA vs the baselines on one OS."""
    profile = PROFILES_BY_NAME[args.os].scaled(args.scale)
    corpus = generate(profile)
    compiled = compile_program(corpus.compiled_sources())
    everything = compile_program(corpus.all_sources())
    rows = []
    for tool in all_baselines():
        source_based = tool.name in ("cppcheck-like", "coccinelle-like")
        result = tool.analyze(everything if source_based else compiled)
        if result.status != "ok":
            rows.append([tool.name, result.status.upper(), "-", "-"])
            continue
        match = match_findings(
            [(f.kind, f.file, f.line) for f in result.findings],
            corpus, tool.name, restrict_kinds=PRIMARY_KINDS,
        )
        rows.append([tool.name, match.found, match.real, f"{match.false_positive_rate:.0%}"])
    pata_result = PATA().analyze(compiled)
    match = match_findings(
        [(r.kind, r.sink_file, r.sink_line) for r in pata_result.reports],
        corpus, "pata", restrict_kinds=PRIMARY_KINDS,
    )
    rows.append(["PATA", match.found, match.real, f"{match.false_positive_rate:.0%}"])
    print(render_table(["Tool", "Found", "Real", "FP rate"], rows,
                       title=f"{args.os} corpus, scale {args.scale}"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "check": cmd_check,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "lint": cmd_lint,
        "corpus": cmd_corpus,
        "eval": cmd_eval,
        "compare": cmd_compare,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into `head`/a closed pager: exit quietly, as
        # well-behaved CLI tools do.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
