"""repro — a reproduction of PATA (ASPLOS 2022): path-sensitive and
alias-aware typestate analysis for detecting OS bugs.

Quickstart::

    from repro import PATA

    result = PATA().analyze_sources([("driver.c", source_code)])
    for report in result.reports:
        print(report.render())

Subpackages
-----------
- :mod:`repro.lang` — mini-C frontend (the Clang stand-in)
- :mod:`repro.ir` — LLVM-flavoured IR
- :mod:`repro.cfg` — CFG/call-graph utilities
- :mod:`repro.alias` — path-based alias analysis (§3.1)
- :mod:`repro.typestate` — alias-aware typestate tracking (§3.2)
- :mod:`repro.smt` — SMT-lite solver + path-constraint translation (§3.3)
- :mod:`repro.core` — the PATA pipeline (§4)
- :mod:`repro.pointsto` / :mod:`repro.vfg` — points-to and value-flow
  substrates for the baselines
- :mod:`repro.baselines` — the seven compared tools (§6)
- :mod:`repro.corpus` — synthetic OS code generator + ground truth
- :mod:`repro.evaluation` — harness regenerating the paper's tables/figures
"""

from .core import AnalysisConfig, AnalysisResult, AnalysisStats, BugReport, EntryStats, PATA
from .lang import compile_program, compile_source
from .typestate import BugKind, all_checkers, default_checkers

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig", "AnalysisResult", "AnalysisStats", "BugReport", "EntryStats", "PATA",
    "compile_program", "compile_source",
    "BugKind", "all_checkers", "default_checkers",
    "__version__",
]
