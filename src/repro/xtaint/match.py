"""Cross-module taint matching — phase **P2.6** of the extended pipeline.

Runs in the parent process after the per-entry outcomes are merged and
the per-module summaries are built (or replayed from the cache layer),
between P2.5 race matching and the P3 bug filter.  The matcher is the
other half of the recorder in :mod:`repro.xtaint.checker`:

1. **Fixpoint** — relay edges (``g_out = g_in``) propagate export
   provenance across shared keys until nothing changes.  A key's
   provenance is the set of *origin* export flows that can reach it; the
   relay module drops out of the provenance (its path condition is not
   conjoined — a deliberate over-approximation the P3 validator keeps
   honest on the two end segments).
2. **Pairing** — every import (shared key reaching a sink) joins every
   origin export of the same key from a *different module and different
   entry*, modeled on P2.5's deterministic sorted-group pairing:
   sorted iteration everywhere, canonical ``(inst.uid, entry)`` flow
   order, first path combination stands in for repeats.
3. Each pair carries both path snapshots; stage 2 conjoins them with
   bridge atoms (:func:`repro.smt.translate.translate_trace_pair`) and
   additionally must prove the sink's out-of-range atom satisfiable on
   the import side — so a range check dominating the sink, or a guard
   contradiction between writer and reader, discharges the pair even
   across the module boundary.
"""

from __future__ import annotations

from typing import Dict, List

from ..races.shared import render_key
from ..typestate.events import BugKind
from ..typestate.manager import PossibleBug
from .records import TaintFlow
from .summary import ModuleSummary

#: matcher guardrail: beyond this many origin exports for one key, an
#: import pairs only against the earliest ones (keeps hot keys bounded).
_MAX_ORIGINS = 256

#: fixpoint guardrail: relay chains longer than this are pathological
#: (a chain can add at most one key per round).
_MAX_ROUNDS = 64


def _flow_order(flow: TaintFlow):
    """Canonical deterministic flow order (P2.5's group-order idiom)."""
    return (flow.inst.uid, flow.entry)


def match_cross_module(summaries: Dict[str, ModuleSummary]) -> List[PossibleBug]:
    """Join per-module summaries into stage-1 cross-module candidates."""
    exports: List[TaintFlow] = []
    imports: List[TaintFlow] = []
    relays: List[TaintFlow] = []
    for module in sorted(summaries):
        summary = summaries[module]
        exports.extend(summary.exports)
        imports.extend(summary.imports)
        relays.extend(summary.relays)

    # 1. provenance fixpoint: key -> {origin id -> origin export flow}
    tainted: Dict[tuple, Dict[tuple, TaintFlow]] = {}
    for export in sorted(exports, key=_flow_order):
        tainted.setdefault(export.key, {})[
            (export.inst.uid, export.entry)] = export
    relays_sorted = sorted(relays, key=_flow_order)
    for _ in range(_MAX_ROUNDS):
        changed = False
        for relay in relays_sorted:
            origins = tainted.get(relay.key)
            if not origins or relay.dst_key is None:
                continue
            bucket = tainted.setdefault(relay.dst_key, {})
            for oid in sorted(origins):
                if oid not in bucket:
                    bucket[oid] = origins[oid]
                    changed = True
        if not changed:
            break

    # 2. pairing
    bugs: List[PossibleBug] = []
    seen_pairs = set()
    for imp in sorted(imports, key=_flow_order):
        origins = tainted.get(imp.key)
        if not origins:
            continue
        candidates = [origins[oid] for oid in sorted(origins)[:_MAX_ORIGINS]]
        for origin in candidates:
            if origin.module == imp.module:
                continue  # same image: the plain taint checker's world
            if origin.entry == imp.entry:
                continue  # one inlined path; ditto
            pair_key = (origin.inst.uid, imp.inst.uid)
            if pair_key in seen_pairs:
                continue  # first path combination stands in for all
            seen_pairs.add(pair_key)
            subject = render_key(imp.key)
            provenance = "border-inferred " if origin.border else ""
            bugs.append(_pair_bug(origin, imp, subject, provenance))
    return bugs


def _pair_bug(origin: TaintFlow, imp: TaintFlow, subject: str,
              provenance: str) -> PossibleBug:
    bug = PossibleBug(
        kind=BugKind.TAINT,
        checker="xtaint",
        subject=subject,
        source=origin.source if origin.source is not None else origin.inst,
        sink=imp.inst,
        message=(
            f"cross-module taint on '{subject}': {provenance}taint "
            f"exported by {origin.entry} reaches {imp.entry} — {imp.message}"
        ),
        trace=origin.trace,
        second_trace=imp.trace,
        entry_function=f"{origin.entry} vs {imp.entry}",
    )
    # Stage 2 proves the sink's out-of-range atom satisfiable under the
    # *conjoined* pair constraints (import-side sanitization and
    # writer/reader guard contradictions both discharge here).
    bug.extra_requirement = imp.extra_requirement
    return bug
