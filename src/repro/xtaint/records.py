"""Flow records of the cross-module taint pass — the P2.6 input.

A :class:`TaintFlow` is one observation made on one explored path: taint
*leaving* an entry through shared state (an ``export``), shared state
*reaching* a sink inside an entry (an ``import``), or shared state being
copied to other shared state (a ``relay``).  The shared-state naming is
the race detector's canonical ``(root, field)`` key universe
(:mod:`repro.races.shared`): however many local aliases sit between a
taint source and the global it lands in, the alias graph collapses them
and only the root name must agree across modules.

Flows ride the engine's existing access channel — the same
``shared_accesses`` list, ``EntryOutcome`` field and entry-order merge
that carries :class:`~repro.races.shared.SharedAccess` — so workers,
the incremental cache and the deterministic merge all handle them with
no new plumbing.  ``dedup_key`` is namespaced with a literal ``"xflow"``
head so it can never collide with a ``SharedAccess`` key inside the
shared seen-set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from ..ir import Instruction
from ..races.shared import AccessKey

#: flow directions (``direction`` field values)
EXPORT = "export"
IMPORT = "import"
RELAY = "relay"


@dataclass
class TaintFlow:
    """One cross-module taint observation on one explored path.

    Everything here must pickle (instructions and traces already do);
    flows ship from workers inside ``EntryOutcome.accesses`` and are
    rehydrated by :mod:`repro.incremental.coords` on cache replay.
    """

    #: canonical shared key the taint crossed (for relays: the *from* key)
    key: AccessKey
    #: ``export`` / ``import`` / ``relay``
    direction: str
    #: the crossing instruction: the store (export/relay) or the sink (import)
    inst: Instruction
    #: analysis entry the observation was made under
    entry: str
    #: provenance: the taint-source instruction (export) or the load that
    #: imported the shared value (import); None for border-anchored flows
    #: whose anchor is ``inst`` itself.
    source: Optional[Instruction] = None
    #: relay target key (``relay`` only)
    dst_key: Optional[AccessKey] = None
    #: display name of the flowing variable
    subject: str = ""
    #: sink message template result (``import`` only)
    message: str = ""
    #: the sink's out-of-range atom ("op", var_name, const) — stage 2
    #: must prove it satisfiable under the joined pair constraints.
    extra_requirement: Optional[Tuple[str, str, int]] = None
    #: True when the taint originated from border-source inference
    #: (an interface parameter with no extern caller) rather than a
    #: concrete source call.
    border: bool = False
    #: engine path snapshot at the observation — replayable by stage 2
    trace: Tuple = ()
    #: present only for coordinate compatibility with SharedAccess
    #: (coords walks ``access.lockset`` unconditionally); always empty.
    lockset: FrozenSet[AccessKey] = frozenset()

    @property
    def is_write(self) -> bool:
        """Informational only — flows never enter the race matcher."""
        return self.direction != IMPORT

    @property
    def dedup_key(self) -> Tuple:
        """Flows are repeats when the same instruction moves the same
        key in the same direction from the same entry (loop bodies, path
        re-merges); the first path snapshot stands in for all of them —
        the same contract as bug and access dedup."""
        return (
            "xflow", self.direction, self.entry, self.key, self.dst_key,
            self.inst.uid,
            self.source.uid if self.source is not None else -1,
            self.extra_requirement, self.border,
        )

    @property
    def module(self) -> str:
        """The module (source file) the observation was made in — the
        boundary the P2.6 matcher requires flows to cross."""
        return self.inst.loc.filename
