"""Cross-module taint recorder — the per-path half of phase P2.6.

A single entry's exploration can only see taint that stays inside its
own closure; the highest-value OS bugs instead enter through one
module's interface and reach a sink in another (shared config blobs,
ioctl dispatch tables, cross-driver globals).  This checker extends
:class:`~repro.taint.checker.TaintChecker` with the race detector's
shared-state canonicalization so each entry records *half-flows*:

* **exports** — a tainted value stored into canonically shared state
  (``g_cfg.len = read_user_len()``);
* **imports** — a value loaded from shared state reaching a sink
  (``kmalloc(g_cfg.len)`` in another driver), carried as an
  imported-shadow state ``("XT", load, key)`` because the recording
  entry cannot know whether any other module tainted that key;
* **relays** — shared state copied to other shared state
  (``g_out = g_in``), the edges the P2.6 fixpoint propagates over.

No cross-module bug is reported here: the matcher
(:mod:`repro.xtaint.match`) joins exports to imports over the shared
key universe and stage 2 re-discharges each pair with both path
conditions conjoined (:func:`repro.smt.translate.translate_trace_pair`),
so sanitization and guard contradictions survive the module boundary.

**Border-source inference** (``--taint-borders``): an interface
function no caller in the image set ever invokes receives its
parameters pre-tainted ``("SB", anchor)`` at path start — the
border-binary heuristic of the firmware work.  Purely *local* flows of
genuinely source-tainted values (``("ST", src)``) stay silent here:
they are the plain taint checker's territory, and staying out of them
keeps ``--checkers taint,xtaint`` free of double reports.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..ir import Function, Move, PointerType, Var
from ..presolve.events import EventKind
from ..races.shared import DIRECT, AccessKey, object_root
from ..taint.checker import TaintChecker
from ..taint.spec import DEFAULT_TAINT_SPEC, TaintSpec
from ..typestate.events import (
    AllocEvent,
    CallReturnEvent,
    Event,
    LoadEvent,
    StoreEvent,
    UseVarEvent,
)
from ..typestate.manager import PossibleBug, TrackerContext
from .records import EXPORT, IMPORT, RELAY, TaintFlow

#: state namespace for heap-object registrations (node uid -> "heap#N"),
#: kept separate from the race checker's so "race,xtaint" runs never
#: cross-talk through the shared store.
XOBJ_NAMESPACE = "xtaint.obj"

#: state tags that mean "carries taint" for this checker
_TAINT_TAGS = ("ST", "SB", "XT")


class CrossModuleTaintChecker(TaintChecker):
    """Cross-module taint recorder; see the module docstring."""

    name = "xtaint"
    relevant_events = (
        TaintChecker.relevant_events
        | EventKind.STORE | EventKind.SHARED_ACCESS | EventKind.CALL_RETURN
    )
    sink_events = TaintChecker.sink_events | EventKind.SHARED_ACCESS
    handled_events = TaintChecker.handled_events + (StoreEvent, UseVarEvent)

    def __init__(
        self,
        spec: TaintSpec = DEFAULT_TAINT_SPEC,
        shared_sites: frozenset = frozenset(),
        border_entries: Optional[Dict[str, Tuple[Tuple[Var, ...], object]]] = None,
    ):
        super().__init__(spec)
        # Every flow needs both a trigger and a shared crossing, so the
        # region must show either a source or a shared access before the
        # checker can contribute anything; SHARED_ACCESS rides on both
        # masks to keep export-only and import-only entries armed.
        self.trigger_events = self.trigger_events | EventKind.SHARED_ACCESS
        #: uids of malloc instructions whose objects escape (the heap
        #: half of the shared universe; globals are the other half).
        self.shared_sites = shared_sites
        #: border set: entry name -> (params, anchor instruction) for
        #: interface functions without any extern caller.  Inert until
        #: ``taint_borders`` is switched on by the run configuration.
        self.border_entries = border_entries or {}
        self.taint_borders = False

    @property
    def state_namespaces(self):
        return (self.name, XOBJ_NAMESPACE)

    # -- border-source inference -------------------------------------------------

    def on_path_start(self, ctx: TrackerContext) -> None:
        """Pre-taint the entry's parameters when it sits on the border:
        registered as an interface but never called by anything in the
        image set, so its arguments come from outside the analyzed
        world (the firmware border-binary heuristic)."""
        if not self.taint_borders:
            return
        info = self.border_entries.get(ctx.entry_function)
        if info is None:
            return
        params, anchor = info
        for param in params:
            if isinstance(param.type, PointerType):
                if ctx.alias_aware and ctx.graph is not None:
                    node = ctx.graph.deref_node(param)
                    if node is None:
                        node = ctx.graph.handle_store_fresh(param)
                    ctx.set_key(self.name, node.uid, ("SB", anchor),
                                fanout=max(1, len(node.vars)))
                else:
                    ctx.set_key(self.name, "*" + param.name, ("SB", anchor))
            else:
                ctx.set(self.name, param, ("SB", anchor))

    # -- event dispatch ----------------------------------------------------------

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, StoreEvent):
            self._handle_store(event, ctx)
        elif isinstance(event, UseVarEvent):
            self._handle_use(event, ctx)
        else:
            if isinstance(event, AllocEvent):
                self._register_heap(event, ctx)
            super().handle(event, ctx)

    # -- taint states ------------------------------------------------------------

    def _state(self, ctx: TrackerContext, var: Var):
        state = ctx.get(self.name, var)
        if state is not None and state[0] in _TAINT_TAGS:
            return state
        return None

    def _handle_load(self, event: LoadEvent, ctx: TrackerContext) -> None:
        if ctx.alias_aware:
            # The engine joined dst into the pointee class already, so
            # real taint (ST/SB) travels by alias identity.  A state-free
            # load from canonically shared state becomes an
            # imported-shadow: *some other module* may have tainted it.
            if self._state(ctx, event.dst) is None:
                key = self._location(ctx, event.addr)
                if key is not None:
                    ctx.set(self.name, event.dst, ("XT", event.inst, key))
            return
        state = ctx.get_key(self.name, "*" + event.addr.name)
        if state is not None and state[0] in _TAINT_TAGS:
            ctx.set(self.name, event.dst, state)
            return
        key = self._location(ctx, event.addr)
        if key is not None:
            ctx.set(self.name, event.dst, ("XT", event.inst, key))
        elif self._state(ctx, event.dst) is not None:
            ctx.set(self.name, event.dst, ("S0", None))

    def _handle_use(self, event: UseVarEvent, ctx: TrackerContext) -> None:
        inst = event.inst
        var = event.var
        # A direct read of a global scalar imports its value.
        if self._is_global_scalar(var) and self._state(ctx, var) is None:
            ctx.set(self.name, var, ("XT", inst, (var.name, DIRECT)))
            if (not ctx.alias_aware and isinstance(inst, Move)
                    and inst.src is var
                    and self._state(ctx, inst.dst) is None):
                # NA mode keys states by name; hand-copy to the move's
                # destination (aware mode gets this from the node join).
                ctx.set(self.name, inst.dst,
                        ("XT", inst, (var.name, DIRECT)))
        # A Move whose destination is a global scalar is a direct shared
        # write: a tainted source value exports through it.
        if isinstance(inst, Move) and self._is_global_scalar(inst.dst):
            if isinstance(inst.src, Var):
                state = self._state(ctx, inst.src)
                if state is not None:
                    self._outflow(ctx, (inst.dst.name, DIRECT), state,
                                  inst, inst.src)

    def _handle_call_return(self, event: CallReturnEvent, ctx: TrackerContext) -> None:
        super()._handle_call_return(event, ctx)
        dst = event.dst
        if self._is_global_scalar(dst):
            state = self._state(ctx, dst)
            if state is not None:
                self._outflow(ctx, (dst.name, DIRECT), state, event.inst, dst)

    def _handle_store(self, event: StoreEvent, ctx: TrackerContext) -> None:
        value = event.value
        if not isinstance(value, Var):
            return
        state = self._state(ctx, value)
        if state is None:
            return
        key = self._location(ctx, event.addr)
        if key is None:
            return
        self._outflow(ctx, key, state, event.inst, value)

    # -- flow recording ----------------------------------------------------------

    def _outflow(self, ctx: TrackerContext, key: AccessKey, state,
                 inst, var: Var) -> None:
        tag = state[0]
        if tag == "XT":
            from_key = state[2]
            if from_key == key:
                return  # stored back where it came from: not an edge
            ctx.record_flow(TaintFlow(
                key=from_key, direction=RELAY, dst_key=key, inst=inst,
                entry="", source=state[1], subject=var.display_name(),
            ))
        else:
            ctx.record_flow(TaintFlow(
                key=key, direction=EXPORT, inst=inst, entry="",
                source=state[1], subject=var.display_name(),
                border=(tag == "SB"),
            ))

    def _sink(self, ctx: TrackerContext, event: Event, var: Var, atom,
              message: str) -> None:
        state = self._state(ctx, var)
        if state is None:
            return
        subject = var.display_name()
        op, const = atom
        tag = state[0]
        if tag == "XT":
            # Shared state reached a sink: record the import half-flow.
            # Whether any module actually taints the key is the
            # matcher's question, not this path's.
            ctx.record_flow(TaintFlow(
                key=state[2], direction=IMPORT, inst=event.inst, entry="",
                source=state[1], subject=subject,
                message=message.format(subject),
                extra_requirement=(op, var.name, const),
            ))
            return
        if tag == "SB":
            bug = PossibleBug(
                kind=self.kind,
                checker=self.name,
                subject=subject,
                source=state[1] if state[1] is not None else event.inst,
                sink=event.inst,
                message="border-inferred " + message.format(subject),
                alias_set=ctx.alias_names(var),
            )
            bug.extra_requirement = (op, var.name, const)
            ctx.report(bug)
            return
        # tag == "ST": a purely local flow — the plain taint checker's
        # report; staying silent keeps "taint,xtaint" duplicate-free.

    # -- shared-key resolution (race canonicalization, own namespace) ------------

    def _register_heap(self, event: AllocEvent, ctx: TrackerContext) -> None:
        if not event.heap or event.inst.uid not in self.shared_sites:
            return
        if ctx.alias_aware and ctx.graph is not None:
            node = ctx.graph.node_of(event.ptr)
            ctx.set_key(XOBJ_NAMESPACE, node.uid, f"heap#{event.inst.uid}")

    @staticmethod
    def _is_global_scalar(var: Var) -> bool:
        return var.is_global and not var.is_aggregate

    def _location(self, ctx: TrackerContext, addr: Var) -> Optional[AccessKey]:
        base = ctx.base_of(addr)
        if base is not None:
            base_var, fieldname = base
            root = self._root_of(ctx, base_var)
            if root is None:
                return None
            return (root, fieldname)
        root = self._root_of(ctx, addr)
        if root is None:
            return None
        if root.startswith("@"):
            return (root, DIRECT)
        from ..alias.graph import DEREF
        return (root, DEREF)

    def _root_of(self, ctx: TrackerContext, ptr: Var) -> Optional[str]:
        if ctx.alias_aware and ctx.graph is not None:
            return object_root(
                ctx.graph.node_of(ptr),
                lambda uid: ctx.get_key(XOBJ_NAMESPACE, uid),
            )
        if ptr.name.startswith("@"):
            return "*" + ptr.name
        return None


def border_entries_of(program, callgraph) -> Dict[str, Tuple[Tuple[Var, ...], object]]:
    """The border set: defined interface functions no extern caller ever
    invokes, mapped to their parameter tuple and a stable anchor
    instruction (the function's first instruction) for report provenance."""
    borders: Dict[str, Tuple[Tuple[Var, ...], object]] = {}
    for func in program.functions():
        if not isinstance(func, Function) or not func.is_interface:
            continue
        if func.is_declaration:
            continue
        if callgraph.callers_of(func.name):
            continue
        anchor = None
        for inst in func.instructions():
            anchor = inst
            break
        if anchor is None or not func.params:
            continue
        borders[func.name] = (tuple(func.params), anchor)
    return borders
