"""Cross-module (inter-image) taint propagation — phase P2.6.

Per-path recording lives in :class:`CrossModuleTaintChecker` (an
alias-aware extension of the taint checker that records export/import/
relay half-flows over the race detector's canonical shared keys);
per-module :class:`ModuleSummary` objects condense the merged flows and
cache as an incremental layer; :func:`match_cross_module` joins them
deterministically and hands each pair to stage 2 for joined-path
re-discharge.  See ``docs/engine-internals.md`` ("Cross-module taint
(P2.6)") for the determinism argument.
"""

from .checker import CrossModuleTaintChecker, border_entries_of
from .match import match_cross_module
from .records import EXPORT, IMPORT, RELAY, TaintFlow
from .summary import ModuleSummary, all_flows, build_summaries

__all__ = [
    "CrossModuleTaintChecker",
    "EXPORT",
    "IMPORT",
    "ModuleSummary",
    "RELAY",
    "TaintFlow",
    "all_flows",
    "border_entries_of",
    "build_summaries",
    "match_cross_module",
]
