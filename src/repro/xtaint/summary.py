"""Per-module interface summaries — the pickled unit of phase P2.6.

A :class:`ModuleSummary` condenses everything one module (one source
file, one firmware image) contributes to cross-module taint: the shared
keys its entries *export* taint into, the keys whose values reach its
*sinks* (imports), and the keys it *relays* into other keys.  The
summary is plain picklable data built from the merged per-entry flow
records, so it caches as an incremental layer keyed on the module
closure and replays across processes (the instructions inside rehydrate
through :mod:`repro.incremental.coords` like any other outcome).

When the Steensgaard partition is available (``--alias-tier`` above
``off``) each summary also counts how many of its exported roots the
partition confirms as shared-reaching (GLOBAL/SHARED_ROOT cells).  The
count is strictly informational — it never gates matching, which keeps
reports byte-identical across the tier ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .records import EXPORT, IMPORT, RELAY, TaintFlow


@dataclass
class ModuleSummary:
    """What one module tells the rest of the image set about taint."""

    module: str
    exports: List[TaintFlow] = field(default_factory=list)
    imports: List[TaintFlow] = field(default_factory=list)
    relays: List[TaintFlow] = field(default_factory=list)
    #: exported roots the may-alias partition confirms as shared
    #: (informational; see module docstring)
    confirmed_shared: int = 0

    @property
    def flow_count(self) -> int:
        return len(self.exports) + len(self.imports) + len(self.relays)


def _root_confirmed(root: str, partition) -> bool:
    """Whether a canonical shared root sits in the partition's
    shared-reaching set.  Heap sites are shared by construction (only
    escaping allocation sites are ever registered)."""
    if root.startswith("heap#"):
        return True
    name = root.lstrip("*").split(".", 1)[0]
    return name in partition.shared_reaching


def build_summaries(
    flows: Iterable[TaintFlow],
    partition=None,
) -> Dict[str, ModuleSummary]:
    """Group merged flow records into per-module summaries.

    Deterministic: modules in sorted order, flows inside each module in
    merged (entry-order) sequence — same program, same summaries, byte
    for byte.
    """
    by_module: Dict[str, List[TaintFlow]] = {}
    for flow in flows:
        by_module.setdefault(flow.module, []).append(flow)
    summaries: Dict[str, ModuleSummary] = {}
    for module in sorted(by_module):
        summary = ModuleSummary(module=module)
        for flow in by_module[module]:
            if flow.direction == EXPORT:
                summary.exports.append(flow)
            elif flow.direction == IMPORT:
                summary.imports.append(flow)
            elif flow.direction == RELAY:
                summary.relays.append(flow)
        if partition is not None:
            roots = sorted({f.key[0] for f in summary.exports}
                           | {f.dst_key[0] for f in summary.relays
                              if f.dst_key is not None})
            summary.confirmed_shared = sum(
                1 for root in roots if _root_confirmed(root, partition))
        summaries[module] = summary
    return summaries


def all_flows(summaries: Dict[str, ModuleSummary]) -> List[TaintFlow]:
    """Flatten summaries back to a flow list (cache replay path)."""
    flows: List[TaintFlow] = []
    for module in sorted(summaries):
        summary = summaries[module]
        flows.extend(summary.exports)
        flows.extend(summary.imports)
        flows.extend(summary.relays)
    return flows
