"""Andersen-style inclusion-based points-to analysis.

This is the substrate the compared tools build on (§6): CSA/Infer/Saber/
SVF identify aliases through points-to sets.  Two properties matter for
reproducing the paper's comparison:

* **D1 failure** — parameters of module-interface functions have no
  caller, hence *empty* points-to sets; aliases through them are missed
  (Fig. 1).  This falls out naturally: no allocation site ever flows in.
* **Memory behaviour** — points-to sets grow superlinearly on large
  programs.  ``max_pts_entries`` models the OOM the paper observed for
  Saber/SVF on the Linux kernel; exceeding it raises
  :class:`MemoryBudgetExceeded`.

Field-sensitive (per ``(object, field)``), flow- and context-insensitive.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from ..errors import AnalysisError
from ..ir import (
    AddrOf,
    Alloc,
    Call,
    Const,
    Function,
    Gep,
    Load,
    Malloc,
    Move,
    Program,
    Ret,
    Store,
    Var,
)

# Node keys: variable name (str).  Object keys: ("o", alloc uid),
# ("g", global name), ("f", base object, field).
Obj = Tuple
Node = str


class MemoryBudgetExceeded(AnalysisError):
    """The points-to solver exceeded its configured memory budget —
    models the OOM aborts of Saber/SVF on the Linux kernel (§6)."""


class AndersenPointsTo:
    """Inclusion-based points-to solver; see the module docstring for the modeled failure modes."""

    def __init__(self, program: Program, max_pts_entries: Optional[int] = None):
        self.program = program
        self.max_pts_entries = max_pts_entries
        self.pts: Dict[Node, Set[Obj]] = defaultdict(set)
        self.contents: Dict[Obj, Set[Obj]] = defaultdict(set)
        self._copy_edges: Dict[Node, Set[Node]] = defaultdict(set)
        self._loads: List[Tuple[Node, Node]] = []   # dst <= *ptr
        self._stores: List[Tuple[Node, Node]] = []  # *ptr <= src
        self._geps: List[Tuple[Node, Node, str]] = []
        self._returns: Dict[str, Set[Node]] = defaultdict(set)
        self._entries = 0
        self.solved = False

    # -- constraint generation ----------------------------------------------------

    def _gen_function(self, func: Function) -> None:
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, (Malloc, Alloc)):
                    self._add_pts(inst.dst.name, ("o", inst.uid))
                elif isinstance(inst, AddrOf):
                    self._add_pts(inst.dst.name, ("g", inst.var.name))
                elif isinstance(inst, Move) and isinstance(inst.src, Var):
                    self._copy_edges[inst.src.name].add(inst.dst.name)
                elif isinstance(inst, Load):
                    self._loads.append((inst.dst.name, inst.ptr.name))
                elif isinstance(inst, Store) and isinstance(inst.src, Var):
                    self._stores.append((inst.ptr.name, inst.src.name))
                elif isinstance(inst, Gep):
                    self._geps.append((inst.dst.name, inst.base.name, inst.field))
                elif isinstance(inst, Call):
                    callee = self.program.lookup(inst.callee)
                    if callee is None:
                        continue
                    for param, arg in zip(callee.params, inst.args):
                        if isinstance(arg, Var):
                            self._copy_edges[arg.name].add(param.name)
                    if inst.dst is not None:
                        self._returns[inst.callee].add(inst.dst.name)
            term = block.terminator
            if isinstance(term, Ret) and isinstance(term.value, Var):
                for receiver in self._returns.get(func.name, ()):
                    self._copy_edges[term.value.name].add(receiver)

    def _add_pts(self, node: Node, obj: Obj) -> bool:
        if obj in self.pts[node]:
            return False
        self.pts[node].add(obj)
        self._bump()
        return True

    def _add_contents(self, obj: Obj, value: Obj) -> bool:
        if value in self.contents[obj]:
            return False
        self.contents[obj].add(value)
        self._bump()
        return True

    def _bump(self) -> None:
        self._entries += 1
        if self.max_pts_entries is not None and self._entries > self.max_pts_entries:
            raise MemoryBudgetExceeded(
                f"points-to solver exceeded {self.max_pts_entries} set entries"
            )

    # -- solving ------------------------------------------------------------------

    def solve(self) -> "AndersenPointsTo":
        # Two passes of generation so return-value edges see all call sites.
        for func in self.program.functions():
            self._gen_function(func)
        for func in self.program.functions():
            for block in func.blocks:
                term = block.terminator
                if isinstance(term, Ret) and isinstance(term.value, Var):
                    for receiver in self._returns.get(func.name, ()):
                        self._copy_edges[term.value.name].add(receiver)

        work: deque = deque(self.pts.keys())
        in_work: Set[Node] = set(work)

        def enqueue(node: Node) -> None:
            if node not in in_work:
                work.append(node)
                in_work.add(node)

        max_rounds = 0
        while work:
            max_rounds += 1
            if max_rounds > 2_000_000:
                break  # safety valve
            node = work.popleft()
            in_work.discard(node)
            node_pts = self.pts[node]
            for succ in list(self._copy_edges.get(node, ())):
                changed = False
                for obj in list(node_pts):
                    changed |= self._add_pts(succ, obj)
                if changed:
                    enqueue(succ)
            # Complex constraints touching this node.
            for dst, ptr in self._loads:
                if ptr != node:
                    continue
                changed = False
                for obj in list(self.pts[ptr]):
                    for value in list(self.contents[obj]):
                        changed |= self._add_pts(dst, value)
                if changed:
                    enqueue(dst)
            for ptr, src in self._stores:
                if ptr != node and src != node:
                    continue
                for obj in list(self.pts[ptr]):
                    for value in list(self.pts[src]):
                        if self._add_contents(obj, value):
                            # Loads from obj must be reconsidered.
                            for dst2, ptr2 in self._loads:
                                if obj in self.pts[ptr2]:
                                    enqueue(ptr2)
            for dst, base, fieldname in self._geps:
                if base != node:
                    continue
                changed = False
                for obj in list(self.pts[base]):
                    changed |= self._add_pts(dst, ("f", obj, fieldname))
                if changed:
                    enqueue(dst)
        self.solved = True
        return self

    # -- queries -------------------------------------------------------------------

    def points_to(self, var_name: str) -> FrozenSet[Obj]:
        return frozenset(self.pts.get(var_name, ()))

    def may_alias(self, a: str, b: str) -> bool:
        """The classical points-to aliasing test: sets intersect.  Empty
        sets (interface params!) alias nothing — the D1 miss."""
        if a == b:
            return True
        return bool(self.pts.get(a, set()) & self.pts.get(b, set()))

    def total_entries(self) -> int:
        return self._entries
