"""The P1.8 flow-sensitive middle tier: must-alias facts for the engine.

The P1.7 Steensgaard partition answers *may ever alias*.  This phase
climbs one rung: running sparsely on top of that partition (the value-
flow graph built from it provides the store→load skeleton, as in staged
SVF), it derives *must* facts —

* **must-point-to singletons**: names whose points-to set is a must
  singleton at every reachable point of a function, so per-path alias
  tracking for them is pure bookkeeping;
* **strong-update-killed definitions**: stores through a pointer that
  must name exactly one cell kill the previous definition outright
  (:class:`~repro.pointsto.flow_sensitive.FlowSensitivePointsTo` in
  ``strong_updates`` mode records each kill);
* **must-not-alias**: closure-locally, names in different partition
  cells can never alias — the presolve sharpening consumes this to
  disarm checkers whose trigger can provably never reach a sink.

Everything is folded into one picklable :class:`MustAliasFacts` object
that ships to fork/spawn workers next to the partition and is cached as
an incremental layer keyed on the module closure.  Consumers only ever
*skip predictable work* with these facts, so reports stay byte-identical
across the whole ``off``/``steens``/``flow`` ladder.

The skip sets are computed from an exact per-occurrence walk: the alias
graph has no node-merge operation — every mutation moves one named
variable or sets one edge, keyed by an instruction operand name — so a
name is skippable for an entry iff **no instruction in the entry's
closure** performs a graph operation on it whose outcome depends on
graph state (the ``_DISQ`` rules below, verified against every
``AliasGraph`` handler and explorer/checker resolution site).  That set
is a strict superset of the whole-program Steensgaard singletons, which
are unioned in for good measure.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir import (
    AddrOf,
    Alloc,
    BinOp,
    Call,
    CallIndirect,
    Free,
    Function,
    Gep,
    Load,
    LockOp,
    Malloc,
    MemSet,
    Move,
    PointerType,
    Program,
    Ret,
    Store,
    UnOp,
    Var,
)
from .andersen import Obj
from .flow_sensitive import FlowSensitivePointsTo

_EMPTY: FrozenSet[str] = frozenset()

#: the conservative universe for names the partition walk never pinned
#: down: two sentinels, so the set is never a singleton, never strongly
#: updated, and intersects everything (= may alias everything)
_TOP: FrozenSet[Obj] = frozenset({("u", 0), ("u", 1)})


class _PartitionBase:
    """Adapter presenting a :class:`MayAliasPartition` as the points-to
    base of :class:`FlowSensitivePointsTo`.

    The partition holds alias *cells*, not points-to contents, so every
    query answers the conservative top universe — the flow pass then
    earns all of its precision from the def chains it tracks itself
    (AddrOf/Malloc/Move/Gep), which is exactly the sparse regime: no
    whole-program Andersen solve anywhere in the engine hot path.
    """

    __slots__ = ("partition", "solved")

    def __init__(self, partition):
        self.partition = partition
        self.solved = True

    def solve(self):
        return self

    def points_to(self, name: str) -> FrozenSet[Obj]:
        return _TOP


class MustAliasFacts:
    """Picklable P1.8 output: per-function occurrence/disqualification
    sets, the embedded callgraph needed to resolve entry closures without
    a presolve (warm cache runs never build one), and the flow-pass
    accounting (must singletons, strong updates, killed definitions in
    process-independent coordinates).

    ``skip_names_for_entry`` is the consumer surface: the set of names
    the per-path alias graph may skip for one entry — sound because no
    instruction in the entry's closure performs an outcome-unpredictable
    graph operation on them.
    """

    __slots__ = (
        "occurs", "disq", "callees", "indirect", "pool", "resolve_fp",
        "base_singletons", "must_singletons", "strong_updates",
        "killed_defs", "_closure_memo", "_skip_memo",
    )

    def __init__(
        self,
        occurs: Dict[str, FrozenSet[str]],
        disq: Dict[str, FrozenSet[str]],
        callees: Dict[str, Tuple[str, ...]],
        indirect: FrozenSet[str],
        pool: Tuple[str, ...],
        resolve_fp: bool,
        base_singletons: FrozenSet[str],
        must_singletons: int,
        strong_updates: int,
        killed_defs: Tuple[Tuple[str, str, int], ...],
    ):
        #: function -> non-global names occurring in its instructions
        self.occurs = occurs
        #: function -> names its instructions disqualify from skipping
        self.disq = disq
        #: function -> defined direct callees (the closure skeleton —
        #: embedded so warm-cache runs need no presolve to resolve it)
        self.callees = callees
        #: functions containing an indirect call
        self.indirect = indirect
        #: defined registration-pool functions (indirect-call targets)
        self.pool = pool
        self.resolve_fp = resolve_fp
        #: whole-program Steensgaard singletons, unioned into every skip
        #: set so the flow tier is a strict superset of the steens tier
        self.base_singletons = base_singletons
        self.must_singletons = must_singletons
        self.strong_updates = strong_updates
        #: (function, pointer, ordinal) — uid-free, stable across module
        #: renumbering, so cached facts compare equal to fresh ones
        self.killed_defs = killed_defs
        self._closure_memo: Dict[str, FrozenSet[str]] = {}
        self._skip_memo: Dict[FrozenSet[str], FrozenSet[str]] = {}

    # -- closures ---------------------------------------------------------------

    def closure_of(self, entry_name: str) -> FrozenSet[str]:
        """Defined functions the explorer can reach from ``entry_name``
        — mirrors the presolve closure (direct defined call edges, plus
        the whole registration pool once behind any indirect call when
        resolution is enabled), but self-contained: warm-cache runs have
        no :class:`RelevancePreAnalysis` to ask."""
        cached = self._closure_memo.get(entry_name)
        if cached is not None:
            return cached
        names = {entry_name}
        work = [entry_name]
        pool_added = False
        while work:
            current = work.pop()
            for callee in self.callees.get(current, ()):
                if callee not in names:
                    names.add(callee)
                    work.append(callee)
            if current in self.indirect and self.resolve_fp and not pool_added:
                pool_added = True
                for target in self.pool:
                    if target not in names:
                        names.add(target)
                        work.append(target)
        closure = frozenset(names)
        self._closure_memo[entry_name] = closure
        return closure

    def skip_names_for_entry(self, entry_name: str) -> FrozenSet[str]:
        """Names the per-path alias graph may skip while exploring
        ``entry_name``: every closure occurrence minus every closure
        disqualification, plus the whole-program singletons that occur.
        Memoized per closure — entries sharing a helper subtree share
        one union."""
        closure = self.closure_of(entry_name)
        cached = self._skip_memo.get(closure)
        if cached is not None:
            return cached
        occ: Set[str] = set()
        dis: Set[str] = set()
        for func in closure:
            occ |= self.occurs.get(func, _EMPTY)
            dis |= self.disq.get(func, _EMPTY)
        skip = frozenset((occ - dis) | (self.base_singletons & occ))
        self._skip_memo[closure] = skip
        return skip

    # -- identity ---------------------------------------------------------------

    def stamp(self) -> str:
        """Content hash — diagnostics and cache-layer integrity."""
        h = hashlib.sha256()
        for func in sorted(self.occurs):
            h.update(func.encode() + b"{")
            for name in sorted(self.occurs[func]):
                h.update(name.encode() + b";")
            h.update(b"|")
            for name in sorted(self.disq.get(func, _EMPTY)):
                h.update(name.encode() + b";")
            h.update(b"}")
        h.update(b"|cg|")
        for func in sorted(self.callees):
            h.update(f"{func}->{','.join(self.callees[func])};".encode())
        h.update(f"|{sorted(self.indirect)}|{self.pool}|{self.resolve_fp}".encode())
        h.update(f"|{self.must_singletons}|{self.strong_updates}".encode())
        for kill in self.killed_defs:
            h.update(repr(kill).encode())
        return h.hexdigest()

    def __reduce__(self):
        return (
            MustAliasFacts,
            (self.occurs, self.disq, self.callees, self.indirect, self.pool,
             self.resolve_fp, self.base_singletons, self.must_singletons,
             self.strong_updates, self.killed_defs),
        )


# -- the exact-occurrence walk --------------------------------------------------
#
# Why each rule, against the AliasGraph handlers and every resolution
# site in the explorer/checkers/translator:
#
#   Move v,v       both: handle_move links src and dst nodes
#   Move v,const   none: detach(dst) is state-independent
#   Load           dst+ptr: handle_load materializes ptr's pointee
#   Store v        ptr+src: handle_store resolves node_of(src) too
#   Store const    ptr: handle_store_fresh materializes the pointee
#   Gep            dst+base: field edge from base's node
#   AddrOf         dst+var: detach(dst) feeds _set_edge — dst must exist
#   Malloc/Alloc   dst: translator's handle_fresh_object syms the node
#   MemSet         ptr: the race checker resolves the written node
#   LockOp         lock: lock identity resolves the node
#   Free           none: matches the untracked steens treatment
#   BinOp/UnOp/DeclLocal  none: detach only
#   Call           pointer var args always (external havoc materializes
#                  pointees); defined callee adds all var args + params
#                  (inline binding is a move per param) + dst when the
#                  callee can return a variable (retval move)
#   CallIndirect   nothing unresolved (the external path only detaches
#                  dst and raises escapes); with resolution enabled,
#                  var args + every pool target's params + dst if any
#                  pool target can return a variable
#   Ret v          the variable: returning to a call frame is a move
#   params         always: entry havoc / inline binding both touch them


#: exact-type tags so the per-instruction dispatch below is one dict hit
#: instead of a ten-deep isinstance chain (BinOp/UnOp/DeclLocal — the
#: bulk of a corpus — previously fell through every check)
_T_MOVE, _T_LOAD, _T_STORE, _T_GEP, _T_ADDROF, _T_ALLOC, _T_MEMSET, \
    _T_LOCK, _T_CALL, _T_CALLIND = range(10)

_WALK_TAGS = {
    Move: _T_MOVE, Load: _T_LOAD, Store: _T_STORE, Gep: _T_GEP,
    AddrOf: _T_ADDROF, Malloc: _T_ALLOC, Alloc: _T_ALLOC,
    MemSet: _T_MEMSET, LockOp: _T_LOCK,
    Call: _T_CALL, CallIndirect: _T_CALLIND,
}


def _walk_tag(cls) -> Optional[int]:
    """Tag for ``cls``, honoring subclasses outside the exact table."""
    for base, tag in _WALK_TAGS.items():
        if issubclass(cls, base):
            return tag
    return None


def _walk_occurs_disq(
    program: Program,
    resolve_function_pointers: bool,
) -> Tuple[Dict[str, FrozenSet[str]], Dict[str, FrozenSet[str]],
           Dict[str, Tuple[str, ...]], FrozenSet[str], Tuple[str, ...],
           FrozenSet[str]]:
    defined: Dict[str, Function] = {f.name: f for f in program.functions()}
    may_ret_var: Dict[str, bool] = {}
    for func in program.functions():
        may_ret_var[func.name] = any(
            isinstance(b.terminator, Ret) and isinstance(b.terminator.value, Var)
            for b in func.blocks
        )
    pool_names: List[str] = []
    seen_pool: Set[str] = set()
    for reg in program.registrations():
        if reg.function in defined and reg.function not in seen_pool:
            seen_pool.add(reg.function)
            pool_names.append(reg.function)
    pool = tuple(pool_names)
    pool_params: List[str] = [
        p.name for name in pool for p in defined[name].params
    ]
    pool_may_ret = any(may_ret_var.get(name, False) for name in pool)

    occurs: Dict[str, FrozenSet[str]] = {}
    disq: Dict[str, FrozenSet[str]] = {}
    callees: Dict[str, Tuple[str, ...]] = {}
    indirect: Set[str] = set()
    strongable: Set[str] = set()
    tags = _WALK_TAGS

    for func in program.functions():
        occ: Set[str] = set()
        dis: Set[str] = set(p.name for p in func.params)
        occ_add, dis_add = occ.add, dis.add
        direct: List[str] = []
        seen_callees: Set[str] = set()
        entry_block = func.blocks[0] if func.blocks else None
        has_store = False
        has_tracked = False
        for block in func.blocks:
            for inst in block.instructions:
                defined_var = inst.defined_var()
                if defined_var is not None:
                    occ_add(defined_var.name)
                for operand in inst.operands():
                    if isinstance(operand, Var):
                        occ_add(operand.name)
                cls = inst.__class__
                tag = tags.get(cls, -1)
                if tag == -1:
                    tag = _walk_tag(cls)
                    tags[cls] = tag
                if tag is None:
                    continue
                if tag == _T_MOVE:
                    if isinstance(inst.src, Var):
                        dis_add(inst.dst.name)
                        dis_add(inst.src.name)
                elif tag == _T_LOAD:
                    dis_add(inst.dst.name)
                    dis_add(inst.ptr.name)
                elif tag == _T_STORE:
                    has_store = True
                    dis_add(inst.ptr.name)
                    if isinstance(inst.src, Var):
                        dis_add(inst.src.name)
                elif tag == _T_GEP:
                    dis_add(inst.dst.name)
                    dis_add(inst.base.name)
                elif tag == _T_ADDROF:
                    has_tracked = True
                    dis_add(inst.dst.name)
                    dis_add(inst.var.name)
                    occ_add(inst.var.name)
                elif tag == _T_ALLOC:
                    dis_add(inst.dst.name)
                    if block is entry_block and isinstance(inst, Alloc):
                        has_tracked = True
                elif tag == _T_MEMSET:
                    dis_add(inst.ptr.name)
                elif tag == _T_LOCK:
                    dis_add(inst.lock.name)
                elif tag == _T_CALL:
                    for arg in inst.args:
                        if isinstance(arg, Var) and isinstance(arg.type, PointerType):
                            dis_add(arg.name)
                    callee = defined.get(inst.callee)
                    if callee is not None:
                        if inst.callee not in seen_callees:
                            seen_callees.add(inst.callee)
                            direct.append(inst.callee)
                        for arg in inst.args:
                            if isinstance(arg, Var):
                                dis_add(arg.name)
                        for param in callee.params:
                            dis_add(param.name)
                        if inst.dst is not None and may_ret_var.get(inst.callee, False):
                            dis_add(inst.dst.name)
                elif tag == _T_CALLIND:
                    indirect.add(func.name)
                    if resolve_function_pointers:
                        for arg in inst.args:
                            if isinstance(arg, Var):
                                dis_add(arg.name)
                        dis.update(pool_params)
                        if inst.dst is not None and pool_may_ret:
                            dis_add(inst.dst.name)
            term = block.terminator
            if isinstance(term, Ret) and isinstance(term.value, Var):
                occ_add(term.value.name)
                dis_add(term.value.name)
        occurs[func.name] = frozenset(n for n in occ if not n.startswith("@"))
        disq[func.name] = frozenset(dis)
        if direct:
            callees[func.name] = tuple(direct)
        if has_store and has_tracked:
            strongable.add(func.name)
    return occurs, disq, callees, frozenset(indirect), pool, frozenset(strongable)


# -- the P1.8 entry point -------------------------------------------------------


def compute_flow_facts(
    program: Program,
    partition,
    resolve_function_pointers: bool = False,
) -> MustAliasFacts:
    """Build the :class:`MustAliasFacts` for one program: the exact
    occurrence/disqualification walk, then the sparse flow-sensitive
    strong-update pass over the functions the value-flow graph proves
    memory-flow-relevant (a store whose value can reach a load — the
    partition buckets that matching to linear time)."""
    occurs, disq, callees, indirect, pool, strongable = _walk_occurs_disq(
        program, resolve_function_pointers
    )

    from ..vfg import ValueFlowGraph  # lazy: vfg imports this package

    vfg = ValueFlowGraph(program, points_to=partition)
    flow = FlowSensitivePointsTo(_PartitionBase(partition), strong_updates=True)
    singleton_names: Set[str] = set()
    # Doubly sparse: a function is worth the fixpoint only when the VFG
    # proves it memory-flow-relevant AND the walk saw both a store and a
    # tracked-cell creator (an AddrOf or an entry-block alloca) in it —
    # the only combination that can yield strong updates, kills, or
    # heap-resolved loads.  Everything else contributes to the
    # must-singleton figure through the walk universe below.
    memory = vfg.memory_functions
    for func in program.functions():
        if func.name in memory and func.name in strongable:
            flow.analyze_function(func)
            singleton_names |= flow.must_singleton_names(func)

    # The whole-program skippable universe doubles as the must-singleton
    # figure of merit: a name no closure can disqualify has a trivially
    # singleton alias set at every reachable point.
    all_occ: Set[str] = set()
    all_dis: Set[str] = set()
    for func, occ in occurs.items():
        all_occ |= occ
        all_dis |= disq.get(func, _EMPTY)
    singleton_names |= all_occ - all_dis

    return MustAliasFacts(
        occurs=occurs,
        disq=disq,
        callees=callees,
        indirect=indirect,
        pool=pool,
        resolve_fp=resolve_function_pointers,
        base_singletons=partition.singletons,
        must_singletons=len(singleton_names),
        strong_updates=flow.strong_updates_applied,
        killed_defs=tuple(flow.killed_defs),
    )


# -- must-not-alias taint sharpening -------------------------------------------


def taint_flow_possible(program: Program, functions: Iterable[Function]) -> bool:
    """Whether any taint source in ``functions`` can flow to any taint
    sink, judged over the closure-local Steensgaard cells.

    Cells over-approximate runtime alias sets, and every propagation
    step of the taint checker is either intra-cell (assignments, loads,
    stores and call bindings all unify) or a ``BinOp``/``UnOp`` deriving
    a value from a tainted operand — the directed cell edges added here.
    Structure edges (deref/field) are followed forward too: anything
    loaded out of a tainted buffer may be tainted.  So a *disconnected*
    seed/sink answer is a must-not-alias proof: no execution can carry
    taint from any source to any sink, and the presolve may disarm the
    taint checker for the closure.  Mirrors the scan exactly: hint-named
    direct calls seed (indirect calls never set the source bit), and the
    sinks are the scan's INDEX/DIV/ALLOC_HEAP/MEM_INIT sites.
    """
    from ..presolve.events import TAINT_SOURCE_HINTS
    from .steensgaard import DEREF, SteensgaardPointsTo

    functions = list(functions)
    solver = SteensgaardPointsTo(program, functions=functions).solve()
    find = solver._uf.find
    ids = solver._ids

    def cell(name: str):
        elem = ids.get(name)
        # names the constraint walk never saw get private synthetic
        # cells — they can still carry taint through value edges
        return find(elem) if elem is not None else ("x", name)

    value_edges: Dict[object, Set[object]] = defaultdict(set)
    seeds: Set[object] = set()
    sinks: Set[object] = set()
    for func in functions:
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, BinOp):
                    dst = cell(inst.dst.name)
                    for operand in (inst.lhs, inst.rhs):
                        if isinstance(operand, Var):
                            src = cell(operand.name)
                            if src != dst:
                                value_edges[src].add(dst)
                    if inst.op in ("div", "mod") and isinstance(inst.rhs, Var):
                        sinks.add(cell(inst.rhs.name))
                elif isinstance(inst, UnOp):
                    if isinstance(inst.src, Var):
                        src = cell(inst.src.name)
                        dst = cell(inst.dst.name)
                        if src != dst:
                            value_edges[src].add(dst)
                elif isinstance(inst, Gep):
                    if isinstance(inst.index, Var):
                        sinks.add(cell(inst.index.name))
                elif isinstance(inst, Malloc):
                    if isinstance(inst.size, Var):
                        sinks.add(cell(inst.size.name))
                elif isinstance(inst, MemSet):
                    if isinstance(inst.size, Var):
                        sinks.add(cell(inst.size.name))
                elif isinstance(inst, Call):
                    if any(hint in inst.callee for hint in TAINT_SOURCE_HINTS):
                        if inst.dst is not None:
                            seeds.add(cell(inst.dst.name))
                        for arg in inst.args:
                            if isinstance(arg, Var) and isinstance(arg.type, PointerType):
                                # out-buffer source: the pointee carries
                                # the taint (the solver's havoc guarantees
                                # the deref edge exists)
                                seeds.add(cell(arg.name))
                                root = cell(arg.name)
                                if not isinstance(root, tuple):
                                    pointee = solver._out.get(root, {}).get(DEREF)
                                    if pointee is not None:
                                        seeds.add(find(pointee))
    if not seeds or not sinks:
        return False

    # Forward structure edges, normalized to current roots.
    structure: Dict[object, Set[object]] = defaultdict(set)
    for elem, out in solver._out.items():
        root = find(elem)
        for target in out.values():
            structure[root].add(find(target))

    seen: Set[object] = set(seeds)
    work: List[object] = list(seeds)
    while work:
        current = work.pop()
        if current in sinks:
            return True
        for nxt in structure.get(current, ()):
            if nxt not in seen:
                seen.add(nxt)
                work.append(nxt)
        for nxt in value_edges.get(current, ()):
            if nxt not in seen:
                seen.add(nxt)
                work.append(nxt)
    return bool(seen & sinks)
