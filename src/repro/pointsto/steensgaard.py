"""Whole-program unification-based (Steensgaard-style) points-to pass.

This is the *cheap tier* of the tiered alias analysis (ROADMAP: "Tiered
alias analysis for raw speed at scale").  One near-linear union-find pass
over the whole IR computes a :class:`MayAliasPartition` — an
over-approximate "may **ever** alias" equivalence relation over variable
names — before any path is explored (phase P1.7).  The per-path alias
graphs of §3.1 remain the precision tier; the partition only licenses
*skipping* work whose outcome it can predict:

* a variable whose cell provably contains no other variable, carries no
  edges, and is never pointed to can never share a per-path alias node
  with anything — the engine skips node creation/updates for it entirely
  (the singleton fast path, ``AliasGraph.skip_names``);
* the SMT translator replays traces with plain per-name symbols for such
  variables instead of alias-graph nodes;
* the P1.5 relevance pre-analysis drops shared-access relevance for
  loads/stores whose pointer cell cannot reach any shared root (global /
  heap allocation), computed *closure-locally* so cached masks stay
  keyed by the entry's transitive closure alone.

Soundness is by construction: every per-path operation that can ever put
two variables in one alias node (MOVE / LOAD / GEP join, parameter
passing, return values, indirect-call inlining) has a corresponding
unification here, and every operation that can hang an edge off a node
or let a checker materialize one (stores, address-of, external-call
pointer arguments, lock identities, heap registrations) disqualifies the
involved cells from the fast path.  When unification cannot prove
singleton, behavior is exactly the untiered engine's.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..ir import (
    AddrOf,
    Alloc,
    BinOp,
    Call,
    CallIndirect,
    DeclLocal,
    Free,
    Function,
    Gep,
    Load,
    LockOp,
    Malloc,
    MemSet,
    Move,
    PointerType,
    Program,
    Ret,
    Store,
    UnOp,
    Var,
)

DEREF = "*"

#: cell flags — any one of them disqualifies the singleton fast path
GLOBAL = 1       # cell names a global (``@``-prefixed)
POINTED_TO = 2   # some edge targets this cell (loads can join vars into it)
HEAP_DST = 4     # malloc/alloca destination (race heap registration keys
                 # the pointer's node; the node must exist)
LOCK_ID = 8      # used as a lock operand (lock identity resolves the node)
SHARED_ROOT = 16  # roots shared-state reachability (global or heap site)


class UnionFind:
    """Plain array-based union-find with path halving and union by size.

    The Steensgaard solver builds on this; it is exposed separately so
    the property suite can exercise the algebraic laws (idempotence,
    commutativity, find-after-union congruence) in isolation.
    """

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._size: List[int] = []

    def make(self) -> int:
        parent = self._parent
        elem = len(parent)
        parent.append(elem)
        self._size.append(1)
        return elem

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]  # path halving
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> int:
        """Merge the cells of ``a`` and ``b``; returns the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def same(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)


class MayAliasPartition:
    """The solved partition: plain picklable data, shipped to workers
    (fork: zero-copy via inherited memory; spawn: initargs pickle) and
    cached as an incremental layer keyed by the module-closure
    fingerprint.

    ``cell_ids`` assigns each variable name a dense, deterministic cell
    id (first-seen order over a canonical program walk), so equal
    programs always produce byte-equal partitions.
    """

    __slots__ = ("cell_ids", "singletons", "singletons_by_function",
                 "cell_count", "shared_reaching")

    def __init__(
        self,
        cell_ids: Dict[str, int],
        singletons: FrozenSet[str],
        singletons_by_function: Dict[str, Tuple[str, ...]],
        cell_count: int,
        shared_reaching: FrozenSet[str],
    ):
        self.cell_ids = cell_ids
        self.singletons = singletons
        self.singletons_by_function = singletons_by_function
        self.cell_count = cell_count
        #: names whose cell can reach (through any chain of field/deref
        #: edges, in either direction) a shared root — a global or a heap
        #: allocation site.  An access through a pointer *outside* this
        #: set can never resolve to a shared key in the race detector.
        self.shared_reaching = shared_reaching

    # -- queries ---------------------------------------------------------------

    def cell_of(self, name: str) -> Optional[int]:
        return self.cell_ids.get(name)

    def may_alias(self, a: str, b: str) -> bool:
        """Over-approximate "may ever alias": same cell, ever.  Names the
        walk never saw are vacuously singleton."""
        if a == b:
            return True
        ca = self.cell_ids.get(a)
        cb = self.cell_ids.get(b)
        return ca is not None and ca == cb

    def is_singleton(self, name: str) -> bool:
        return name in self.singletons

    def stamp(self) -> str:
        """Content hash of the partition — surfaced in diagnostics and
        usable as a cache-layer integrity check."""
        h = hashlib.sha256()
        for name in sorted(self.cell_ids):
            h.update(f"{name}={self.cell_ids[name]};".encode())
        h.update(b"|singletons|")
        for name in sorted(self.singletons):
            h.update(name.encode() + b";")
        h.update(b"|shared|")
        for name in sorted(self.shared_reaching):
            h.update(name.encode() + b";")
        return h.hexdigest()

    def __reduce__(self):
        return (
            MayAliasPartition,
            (self.cell_ids, self.singletons, self.singletons_by_function,
             self.cell_count, self.shared_reaching),
        )


class SteensgaardPointsTo:
    """Unification-based points-to solver over (a subset of) a program.

    Pass ``functions`` to restrict the constraint walk to a closure (the
    P1.5 sharpening solves per entry closure so the result is a pure
    function of the closure's contents — exactly what the mask cache
    keys on); the default is the whole program (the P1.7 global
    partition).
    """

    def __init__(self, program: Program, functions: Optional[Iterable[Function]] = None):
        self.program = program
        self._functions: List[Function] = (
            list(functions) if functions is not None else list(program.functions())
        )
        self._uf = UnionFind()
        self._ids: Dict[str, int] = {}               # var name -> uf element
        self._out: Dict[int, Dict[str, int]] = {}    # root -> label -> element
        self._flags: Dict[int, int] = {}             # root -> flag bits
        self._ret_cells: Dict[str, int] = {}         # function name -> element
        self._name_order: List[str] = []             # first-seen walk order
        self._indirect_pool: Optional[List[Function]] = None
        #: name -> defined function, resolved once — call bindings hit
        #: this for every call site and a per-module scan is too slow
        self._defined: Dict[str, Function] = {
            func.name: func for func in program.functions()
        }
        self.solved = False

    # -- cell helpers -----------------------------------------------------------

    def _id_of(self, name: str) -> int:
        elem = self._ids.get(name)
        if elem is None:
            # inlined UnionFind.make — this is the single hottest call
            # of the whole pass (once per operand occurrence)
            uf = self._uf
            parent = uf._parent
            elem = len(parent)
            parent.append(elem)
            uf._size.append(1)
            self._ids[name] = elem
            self._name_order.append(name)
            if name.startswith("@"):
                self._flags[elem] = GLOBAL | SHARED_ROOT
        return elem

    def _var(self, value) -> Optional[int]:
        return self._id_of(value.name) if isinstance(value, Var) else None

    def _flag(self, elem: int, bits: int) -> None:
        root = self._uf.find(elem)
        self._flags[root] = self._flags.get(root, 0) | bits

    def _ret_cell(self, func_name: str) -> int:
        cell = self._ret_cells.get(func_name)
        if cell is None:
            cell = self._uf.make()
            self._ret_cells[func_name] = cell
        return cell

    def _unify(self, a: int, b: int) -> int:
        """Steensgaard's conditional unification: merging two cells also
        merges their out-edges label by label (worklist, not recursion —
        pointer chains can be long)."""
        uf = self._uf
        find = uf.find
        parent = uf._parent
        size = uf._size
        out_map = self._out
        flags_map = self._flags
        work: Optional[List[Tuple[int, int]]] = None
        x, y = a, b
        while True:
            rx, ry = find(x), find(y)
            if rx != ry:
                out_x = out_map.pop(rx, None)
                out_y = out_map.pop(ry, None)
                flags = flags_map.pop(rx, 0) | flags_map.pop(ry, 0)
                # union by size, inlined (rx/ry are already roots)
                if size[rx] < size[ry]:
                    rx, ry = ry, rx
                parent[ry] = rx
                size[rx] += size[ry]
                last = rx
                if flags:
                    flags_map[rx] = flags
                if out_x or out_y:
                    if out_x is None:
                        out_map[rx] = out_y
                    elif out_y is None:
                        out_map[rx] = out_x
                    else:
                        for label, target in out_y.items():
                            existing = out_x.get(label)
                            if existing is None:
                                out_x[label] = target
                            else:
                                # label collision: the targets merge too
                                # (deferred — chains can be long)
                                if work is None:
                                    work = []
                                work.append((existing, target))
                        out_map[rx] = out_x
            else:
                last = rx
            if not work:
                return last
            x, y = work.pop()

    def _join(self, elem: int, label: str) -> int:
        """Get-or-create the ``label`` successor of ``elem``'s cell.  The
        target is by definition pointed-to (loads through the edge join
        destination variables into it)."""
        root = self._uf.find(elem)
        out = self._out.setdefault(root, {})
        target = out.get(label)
        if target is None:
            target = self._uf.make()
            out[label] = target
            self._flags[target] = POINTED_TO
        return target

    # -- constraint generation ---------------------------------------------------

    def _havoc_pointer_args(self, args) -> None:
        """Pointer arguments of calls the engine may execute as external
        havocs: the taint checker materializes their pointee node
        (``handle_store_fresh``), so the cell must carry a deref edge —
        which also disqualifies the fast path for the argument."""
        for arg in args:
            if isinstance(arg, Var) and isinstance(arg.type, PointerType):
                self._join(self._id_of(arg.name), DEREF)

    def _gen_call_binding(self, callee: Function, dst, args) -> None:
        for position, param in enumerate(callee.params):
            if position < len(args) and isinstance(args[position], Var):
                self._unify(self._id_of(param.name), self._id_of(args[position].name))
            else:
                self._id_of(param.name)
        if dst is not None:
            self._unify(self._id_of(dst.name), self._ret_cell(callee.name))

    def _pool(self) -> List[Function]:
        """Every function reachable through an interface registration —
        the conservative target set of any indirect call (the engine
        resolves by (struct, field); over-unifying is the safe
        direction)."""
        if self._indirect_pool is None:
            pool: List[Function] = []
            seen: Set[str] = set()
            for reg in self.program.registrations():
                if reg.function in seen:
                    continue
                seen.add(reg.function)
                func = self._defined.get(reg.function)
                if func is not None:
                    pool.append(func)
            self._indirect_pool = pool
        return self._indirect_pool

    def _gen_function(self, func: Function) -> None:
        gen = _GEN_DISPATCH
        for param in func.params:
            self._id_of(param.name)
        for block in func.blocks:
            for inst in block.instructions:
                handler = gen.get(inst.__class__)
                if handler is not None:
                    handler(self, inst)
                else:
                    self._gen_instruction(inst)
            term = block.terminator
            if isinstance(term, Ret) and isinstance(term.value, Var):
                self._unify(self._id_of(term.value.name), self._ret_cell(func.name))

    # Per-instruction constraint generators — bound through the exact-type
    # dispatch table below (IR subclasses, if any ever appear, resolve
    # through the isinstance fallback in :meth:`_gen_instruction`).

    # The hot generators below open-code _id_of's already-interned fast
    # path (one dict probe, no call) — the constraint walk spends most
    # of its time re-looking-up names it has already seen.

    def _gen_move(self, inst) -> None:
        ids = self._ids
        name = inst.dst.name
        dst = ids.get(name)
        if dst is None:
            dst = self._id_of(name)
        src = inst.src
        if isinstance(src, Var):
            name = src.name
            elem = ids.get(name)
            if elem is None:
                elem = self._id_of(name)
            self._unify(dst, elem)

    def _gen_load(self, inst) -> None:
        ids = self._ids
        name = inst.ptr.name
        ptr = ids.get(name)
        if ptr is None:
            ptr = self._id_of(name)
        pointee = self._join(ptr, DEREF)
        name = inst.dst.name
        dst = ids.get(name)
        if dst is None:
            dst = self._id_of(name)
        self._unify(dst, pointee)

    def _gen_store(self, inst) -> None:
        ids = self._ids
        name = inst.ptr.name
        ptr = ids.get(name)
        if ptr is None:
            ptr = self._id_of(name)
        pointee = self._join(ptr, DEREF)
        src = inst.src
        if isinstance(src, Var):
            name = src.name
            elem = ids.get(name)
            if elem is None:
                elem = self._id_of(name)
            self._unify(elem, pointee)

    def _gen_gep(self, inst) -> None:
        ids = self._ids
        name = inst.base.name
        base = ids.get(name)
        if base is None:
            base = self._id_of(name)
        slot = self._join(base, inst.field)
        name = inst.dst.name
        dst = ids.get(name)
        if dst is None:
            dst = self._id_of(name)
        self._unify(dst, slot)

    def _gen_addr_of(self, inst) -> None:
        pointee = self._join(self._id_of(inst.dst.name), DEREF)
        self._unify(self._id_of(inst.var.name), pointee)

    def _gen_malloc(self, inst) -> None:
        # All heap sites count as shared roots (superset of the race
        # checker's escaping-site registration set).
        self._flag(self._id_of(inst.dst.name), HEAP_DST | SHARED_ROOT)

    def _gen_alloc(self, inst) -> None:
        # Stack objects never register as cross-entry shared state, but
        # the destination node must still exist for allocation-event
        # handling — no fast path.
        self._flag(self._id_of(inst.dst.name), HEAP_DST)

    def _gen_memset(self, inst) -> None:
        # The race checker resolves the pointer's node for the write
        # record; give the cell its deref edge.
        self._join(self._id_of(inst.ptr.name), DEREF)

    def _gen_lock(self, inst) -> None:
        self._flag(self._id_of(inst.lock.name), LOCK_ID)

    def _gen_call(self, inst) -> None:
        callee = self._defined.get(inst.callee)
        if callee is not None and not callee.is_declaration:
            self._gen_call_binding(callee, inst.dst, inst.args)
        elif inst.dst is not None:
            self._id_of(inst.dst.name)
        # Whether or not the engine inlines this call (depth and
        # recursion budgets may force the external path), pointer args
        # may be havocked.
        self._havoc_pointer_args(inst.args)

    def _gen_call_indirect(self, inst) -> None:
        for target in self._pool():
            if not target.is_declaration:
                self._gen_call_binding(target, inst.dst, inst.args)
        if inst.dst is not None:
            self._id_of(inst.dst.name)
        self._havoc_pointer_args(inst.args)

    def _gen_other(self, inst) -> None:
        # Unknown/rare instruction kinds: intern names so the partition
        # covers them, no unification.
        for operand in self._operand_vars(inst):
            self._id_of(operand)

    def _gen_binop(self, inst) -> None:
        ids = self._ids
        value = inst.dst
        if isinstance(value, Var) and value.name not in ids:
            self._id_of(value.name)
        value = inst.lhs
        if isinstance(value, Var) and value.name not in ids:
            self._id_of(value.name)
        value = inst.rhs
        if isinstance(value, Var) and value.name not in ids:
            self._id_of(value.name)

    def _gen_unop(self, inst) -> None:
        ids = self._ids
        value = inst.dst
        if isinstance(value, Var) and value.name not in ids:
            self._id_of(value.name)
        value = inst.src
        if isinstance(value, Var) and value.name not in ids:
            self._id_of(value.name)

    def _gen_decl_local(self, inst) -> None:
        value = inst.var
        if isinstance(value, Var) and value.name not in self._ids:
            self._id_of(value.name)

    def _gen_free(self, inst) -> None:
        value = inst.ptr
        if isinstance(value, Var) and value.name not in self._ids:
            self._id_of(value.name)

    def _gen_instruction(self, inst) -> None:
        if isinstance(inst, Move):
            self._gen_move(inst)
        elif isinstance(inst, Load):
            self._gen_load(inst)
        elif isinstance(inst, Store):
            self._gen_store(inst)
        elif isinstance(inst, Gep):
            self._gen_gep(inst)
        elif isinstance(inst, AddrOf):
            self._gen_addr_of(inst)
        elif isinstance(inst, Malloc):
            self._gen_malloc(inst)
        elif isinstance(inst, Alloc):
            self._gen_alloc(inst)
        elif isinstance(inst, MemSet):
            self._gen_memset(inst)
        elif isinstance(inst, LockOp):
            self._gen_lock(inst)
        elif isinstance(inst, Call):
            self._gen_call(inst)
        elif isinstance(inst, CallIndirect):
            self._gen_call_indirect(inst)
        else:
            self._gen_other(inst)

    @staticmethod
    def _operand_vars(inst) -> List[str]:
        names = []
        for attr in ("dst", "src", "var", "lhs", "rhs", "ptr", "cond"):
            value = getattr(inst, attr, None)
            if isinstance(value, Var):
                names.append(value.name)
        return names

    # -- solving -----------------------------------------------------------------

    def solve(self) -> "SteensgaardPointsTo":
        for func in self._functions:
            self._gen_function(func)
        self.solved = True
        return self

    # -- queries -----------------------------------------------------------------

    def may_alias(self, a: str, b: str) -> bool:
        if a == b:
            return True
        ea = self._ids.get(a)
        eb = self._ids.get(b)
        if ea is None or eb is None:
            return False
        return self._uf.same(ea, eb)

    def _component_marks(self) -> Set[int]:
        """Roots whose edge-connected component (edges taken undirected)
        contains a shared root.  Mirrors ``races.shared.object_root``: it
        resolves along deref/field edges in both directions, so component
        membership over-approximates every resolution it can make."""
        # Hot on large programs (every out-edge is visited): finds are
        # inlined, adjacency lists may hold duplicates (the BFS dedups
        # through ``marked`` anyway).
        parent = self._uf._parent
        adjacency: Dict[int, List[int]] = {}
        adj_get = adjacency.get
        for src, out in self._out.items():
            x = src
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            rs = x
            for target in out.values():
                x = target
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                if rs == x:
                    continue
                lst = adj_get(rs)
                if lst is None:
                    adjacency[rs] = [x]
                else:
                    lst.append(x)
                lst = adj_get(x)
                if lst is None:
                    adjacency[x] = [rs]
                else:
                    lst.append(rs)
        marked: Set[int] = set()
        stack: List[int] = []
        for elem, bits in self._flags.items():
            if bits & SHARED_ROOT:
                x = elem
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                if x not in marked:
                    marked.add(x)
                    stack.append(x)
        while stack:
            current = stack.pop()
            for neighbor in adjacency.get(current, ()):
                if neighbor not in marked:
                    marked.add(neighbor)
                    stack.append(neighbor)
        return marked

    def partition(self) -> MayAliasPartition:
        """Finalize into the picklable :class:`MayAliasPartition`."""
        if not self.solved:
            self.solve()
        marked = self._component_marks()
        dense: Dict[int, int] = {}
        cell_ids: Dict[str, int] = {}
        singletons: Set[str] = set()
        by_function: Dict[str, List[str]] = {}
        shared_names: List[str] = []
        find = self._uf.find
        ids = self._ids
        flags = self._flags
        out = self._out
        name_order = self._name_order
        # singleton == alone in its cell: count the names per root once
        # up front, then the per-name predicate is one set-membership test
        # (find inlined — one resolution per name over the whole program)
        parent = self._uf._parent
        roots: List[int] = []
        roots_append = roots.append
        for name in name_order:
            x = ids[name]
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            roots_append(x)
        counts: Dict[int, int] = {}
        counts_get = counts.get
        for root in roots:
            counts[root] = counts_get(root, 0) + 1
        singleton_roots = {
            root
            for root, count in counts.items()
            if count == 1 and not flags.get(root, 0) and not out.get(root)
        }
        for name, root in zip(name_order, roots):
            cell = dense.get(root)
            if cell is None:
                cell = len(dense)
                dense[root] = cell
            cell_ids[name] = cell
            if root in singleton_roots:
                singletons.add(name)
                by_function.setdefault(_function_of(name), []).append(name)
            if root in marked:
                shared_names.append(name)
        shared = frozenset(shared_names)
        return MayAliasPartition(
            cell_ids=cell_ids,
            singletons=frozenset(singletons),
            singletons_by_function={fn: tuple(names) for fn, names in by_function.items()},
            cell_count=len(dense),
            shared_reaching=shared,
        )


#: exact-type constraint dispatch — one dict hit per instruction instead
#: of a dozen isinstance checks (the unification pass walks every
#: instruction in the program exactly once, so this is hot)
_GEN_DISPATCH = {
    Move: SteensgaardPointsTo._gen_move,
    Load: SteensgaardPointsTo._gen_load,
    Store: SteensgaardPointsTo._gen_store,
    Gep: SteensgaardPointsTo._gen_gep,
    AddrOf: SteensgaardPointsTo._gen_addr_of,
    Malloc: SteensgaardPointsTo._gen_malloc,
    Alloc: SteensgaardPointsTo._gen_alloc,
    MemSet: SteensgaardPointsTo._gen_memset,
    LockOp: SteensgaardPointsTo._gen_lock,
    Call: SteensgaardPointsTo._gen_call,
    CallIndirect: SteensgaardPointsTo._gen_call_indirect,
    BinOp: SteensgaardPointsTo._gen_binop,
    UnOp: SteensgaardPointsTo._gen_unop,
    DeclLocal: SteensgaardPointsTo._gen_decl_local,
    Free: SteensgaardPointsTo._gen_free,
}


def _function_of(name: str) -> str:
    """Owning function of a program-unique variable name (``func.v``,
    ``%func.tN``, ``@g`` — globals group under ``"@"``)."""
    if name.startswith("@"):
        return "@"
    base = name[1:] if name.startswith("%") else name
    return base.split(".", 1)[0]


def build_partition(program: Program) -> MayAliasPartition:
    """The P1.7 entry point: solve the whole program and finalize."""
    return SteensgaardPointsTo(program).solve().partition()


def shared_reaching_names(program: Program, functions: Iterable[Function]) -> FrozenSet[str]:
    """Closure-local shared-state reachability for the P1.5 sharpening.

    Solved over exactly ``functions`` so the answer is a deterministic
    function of the closure contents — cached relevance masks keyed by
    the entry's transitive closure stay sound."""
    solver = SteensgaardPointsTo(program, functions=functions).solve()
    marked = solver._component_marks()
    return frozenset(
        name for name in solver._name_order
        if solver._uf.find(solver._ids[name]) in marked
    )
