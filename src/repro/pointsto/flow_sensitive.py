"""Flow-sensitive points-to refinement (the SVF regime of §6).

A classical sparse flow-sensitive analysis is approximated here by a
per-block forward dataflow over each function: the Andersen result
provides the global may-point-to universe; the dataflow strengthens
top-level variables with *kill* information (a strong update at ``p = q``
replaces p's set in that block's out-state).  Joins union — that is the
"intersection/union at joint points" imprecision the paper contrasts
path-based aliasing against (§2.2, C1).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..cfg import predecessors, reverse_postorder
from ..ir import (
    AddrOf,
    Alloc,
    Function,
    Gep,
    Load,
    Malloc,
    Move,
    Program,
    Store,
    Var,
)
from .andersen import AndersenPointsTo, Obj


class FlowSensitivePointsTo:
    """Per-(function, block) points-to maps refining an Andersen base."""

    def __init__(self, base: AndersenPointsTo):
        if not base.solved:
            base.solve()
        self.base = base
        #: (function name, block uid, var name) -> frozenset of objects
        self._block_out: Dict[Tuple[str, int, str], FrozenSet[Obj]] = {}
        self._analyzed: Set[str] = set()

    def analyze_function(self, func: Function) -> None:
        if func.name in self._analyzed or func.is_declaration:
            return
        self._analyzed.add(func.name)
        order = reverse_postorder(func)
        preds = predecessors(func)
        states: Dict[int, Dict[str, FrozenSet[Obj]]] = {}
        for _ in range(8):  # small fixpoint bound; CFGs are reducible
            changed = False
            for block in order:
                in_state: Dict[str, FrozenSet[Obj]] = {}
                for pred in preds[block]:
                    for name, objs in states.get(pred.uid, {}).items():
                        in_state[name] = in_state.get(name, frozenset()) | objs
                out_state = dict(in_state)
                for inst in block.instructions:
                    self._transfer(inst, out_state)
                if states.get(block.uid) != out_state:
                    states[block.uid] = out_state
                    changed = True
            if not changed:
                break
        for block_uid, state in states.items():
            for name, objs in state.items():
                self._block_out[(func.name, block_uid, name)] = objs

    def _transfer(self, inst, state: Dict[str, FrozenSet[Obj]]) -> None:
        if isinstance(inst, (Malloc, Alloc)):
            state[inst.dst.name] = frozenset({("o", inst.uid)})
        elif isinstance(inst, AddrOf):
            state[inst.dst.name] = frozenset({("g", inst.var.name)})
        elif isinstance(inst, Move) and isinstance(inst.src, Var):
            state[inst.dst.name] = state.get(inst.src.name, self.base.points_to(inst.src.name))
        elif isinstance(inst, Gep):
            base = state.get(inst.base.name, self.base.points_to(inst.base.name))
            state[inst.dst.name] = frozenset(("f", o, inst.field) for o in base)
        elif isinstance(inst, Load):
            # Memory reads fall back to the flow-insensitive universe.
            state[inst.dst.name] = self.base.points_to(inst.dst.name)
        elif isinstance(inst, Store):
            pass  # weak update of memory: base universe already covers it

    def points_to_at(self, func: Function, block_uid: int, var_name: str) -> FrozenSet[Obj]:
        self.analyze_function(func)
        precise = self._block_out.get((func.name, block_uid, var_name))
        return precise if precise is not None else self.base.points_to(var_name)

    def may_alias_at(self, func: Function, block_uid: int, a: str, b: str) -> bool:
        if a == b:
            return True
        return bool(self.points_to_at(func, block_uid, a) & self.points_to_at(func, block_uid, b))
