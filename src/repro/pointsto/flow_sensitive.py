"""Flow-sensitive points-to refinement (the SVF regime of §6).

A classical sparse flow-sensitive analysis is approximated here by a
per-block forward dataflow over each function: the points-to base
provides the global may-point-to universe; the dataflow strengthens
top-level variables with *kill* information (a strong update at ``p = q``
replaces p's set in that block's out-state).  Joins union — that is the
"intersection/union at joint points" imprecision the paper contrasts
path-based aliasing against (§2.2, C1).

Two modes share this class:

* the default (``strong_updates=False``) is the historical behavior the
  ``svf_null`` baseline is pinned to: top-level strengthening only,
  memory always weak;
* ``strong_updates=True`` is the P1.8 engine tier: the dataflow also
  tracks an abstract heap per block and performs *strong updates*
  through pointers whose points-to set is a must singleton naming a
  unique location — an ``("g", name)`` address-of object or an
  entry-block ``alloca``, both one concrete cell per frame; malloc-site
  and loop-allocated objects summarize many cells, are never tracked in
  the abstract heap, and only ever update weakly.  Loads through
  must-singleton pointers to tracked cells resolve to the strongly
  updated definition instead of the flow-insensitive universe, and every
  killed definition is recorded in process-independent
  ``(function, pointer, ordinal)`` coordinates.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cfg import predecessors, reverse_postorder
from ..ir import (
    AddrOf,
    Alloc,
    Call,
    CallIndirect,
    Function,
    Gep,
    Load,
    Malloc,
    MemSet,
    Move,
    Program,
    Store,
    Var,
)
from .andersen import AndersenPointsTo, Obj

_EMPTY: FrozenSet[Obj] = frozenset()


class FlowSensitivePointsTo:
    """Per-(function, block) points-to maps refining a may-alias base.

    ``base`` needs ``points_to(name) -> FrozenSet[Obj]`` and ``solved`` /
    ``solve()`` — :class:`AndersenPointsTo` or any conservative stand-in.
    """

    def __init__(self, base: AndersenPointsTo, strong_updates: bool = False):
        if not base.solved:
            base.solve()
        self.base = base
        self.strong_updates = strong_updates
        #: (function name, block uid, var name) -> frozenset of objects
        self._block_out: Dict[Tuple[str, int, str], FrozenSet[Obj]] = {}
        #: strong-update mode: (function name, block uid) -> abstract heap
        self._heap_out: Dict[Tuple[str, int], Dict[Obj, FrozenSet[Obj]]] = {}
        self._analyzed: Set[str] = set()
        #: strong updates performed (deterministic: counted on one final
        #: in-order pass over the converged states, not during fixpoint)
        self.strong_updates_applied = 0
        #: killed definitions in process-independent coordinates:
        #: (function name, pointer name, per-function kill ordinal)
        self.killed_defs: List[Tuple[str, str, int]] = []
        #: per-function names whose tracked points-to set is a singleton
        #: at every block where the dataflow pins it down
        self._must_singletons: Dict[str, FrozenSet[str]] = {}

    # -- driver -----------------------------------------------------------------

    def analyze_function(self, func: Function) -> None:
        if func.name in self._analyzed or func.is_declaration:
            return
        self._analyzed.add(func.name)
        order = reverse_postorder(func)
        preds = predecessors(func)
        strong = self.strong_updates
        addr_taken = self._address_taken(func) if strong else frozenset()
        once = self._once_cells(func) if strong else frozenset()
        states: Dict[int, Dict[str, FrozenSet[Obj]]] = {}
        heaps: Dict[int, Dict[Obj, FrozenSet[Obj]]] = {}
        for _ in range(8):  # small fixpoint bound; CFGs are reducible
            changed = False
            for block in order:
                in_state: Dict[str, FrozenSet[Obj]] = {}
                in_heap: Dict[Obj, FrozenSet[Obj]] = {}
                for pred in preds[block]:
                    for name, objs in states.get(pred.uid, {}).items():
                        in_state[name] = in_state.get(name, _EMPTY) | objs
                    if strong:
                        for obj, objs in heaps.get(pred.uid, {}).items():
                            in_heap[obj] = in_heap.get(obj, _EMPTY) | objs
                out_state = dict(in_state)
                out_heap = dict(in_heap) if strong else None
                for inst in block.instructions:
                    self._transfer(inst, out_state, out_heap, addr_taken, once)
                if states.get(block.uid) != out_state:
                    states[block.uid] = out_state
                    changed = True
                if strong and heaps.get(block.uid) != out_heap:
                    heaps[block.uid] = out_heap
                    changed = True
            if not changed:
                break
        for block_uid, state in states.items():
            for name, objs in state.items():
                self._block_out[(func.name, block_uid, name)] = objs
        if strong:
            for block_uid, heap in heaps.items():
                self._heap_out[(func.name, block_uid)] = heap
            self._record_kills(func, order, preds, states, heaps, addr_taken, once)
            self._record_must_singletons(func, states)

    @staticmethod
    def _address_taken(func: Function) -> FrozenSet[str]:
        """Names whose address escapes into memory within ``func`` — a
        call may write them, so their tracked sets die at call sites
        (globals always count: any callee can store to them)."""
        names: Set[str] = set()
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, AddrOf):
                    names.add(inst.var.name)
        return frozenset(names)

    @staticmethod
    def _once_cells(func: Function) -> FrozenSet[Obj]:
        """Abstract objects of entry-block allocas: the entry block
        executes exactly once per frame, so each such object names one
        concrete cell and is eligible for strong updates — unlike loop
        allocas and malloc sites, which summarize many cells."""
        if not func.blocks:
            return frozenset()
        return frozenset(
            ("o", inst.uid)
            for inst in func.blocks[0].instructions
            if isinstance(inst, Alloc)
        )

    @staticmethod
    def _tracked(obj: Obj, once: FrozenSet[Obj]) -> bool:
        """Whether the abstract heap may hold an exact fact for ``obj``
        — only single-concrete-cell objects qualify; everything else is
        a summary whose heap entry could miss uninitialized reads."""
        return obj[0] == "g" or obj in once

    # -- transfer ---------------------------------------------------------------

    def _transfer(
        self,
        inst,
        state: Dict[str, FrozenSet[Obj]],
        heap: Optional[Dict[Obj, FrozenSet[Obj]]],
        addr_taken: FrozenSet[str],
        once: FrozenSet[Obj] = frozenset(),
        kills: Optional[List[str]] = None,
    ) -> None:
        strong = heap is not None
        if isinstance(inst, (Malloc, Alloc)):
            state[inst.dst.name] = frozenset({("o", inst.uid)})
        elif isinstance(inst, AddrOf):
            state[inst.dst.name] = frozenset({("g", inst.var.name)})
        elif isinstance(inst, Move):
            if isinstance(inst.src, Var):
                state[inst.dst.name] = state.get(inst.src.name, self.base.points_to(inst.src.name))
            elif strong:
                # Constant (incl. NULL) assignment: the pointer provably
                # refers to no tracked object.  The legacy mode leaves
                # the stale set in place — pinned baseline behavior.
                state[inst.dst.name] = _EMPTY
        elif isinstance(inst, Gep):
            base = state.get(inst.base.name, self.base.points_to(inst.base.name))
            state[inst.dst.name] = frozenset(("f", o, inst.field) for o in base)
        elif isinstance(inst, Load):
            if strong:
                ptr = state.get(inst.ptr.name, self.base.points_to(inst.ptr.name))
                if len(ptr) == 1:
                    (obj,) = ptr
                    resolved = heap.get(obj) if self._tracked(obj, once) else None
                    if resolved is not None:
                        # The load sees exactly the strong-update-proven
                        # definition of the one cell the pointer names.
                        state[inst.dst.name] = resolved
                        return
            # Memory reads fall back to the flow-insensitive universe.
            state[inst.dst.name] = self.base.points_to(inst.dst.name)
        elif isinstance(inst, Store):
            if strong:
                ptr = state.get(inst.ptr.name, self.base.points_to(inst.ptr.name))
                value = (
                    state.get(inst.src.name, self.base.points_to(inst.src.name))
                    if isinstance(inst.src, Var)
                    else _EMPTY
                )
                if len(ptr) == 1 and self._tracked(next(iter(ptr)), once):
                    # Must singleton naming one concrete cell: strong
                    # update — the old definition is dead on this path.
                    (obj,) = ptr
                    if kills is not None and obj in heap:
                        kills.append(inst.ptr.name)
                    heap[obj] = value
                else:
                    # Weak: only tracked cells keep heap entries — a
                    # summary cell's entry would under-approximate (it
                    # can never include "uninitialized").
                    for obj in ptr:
                        if self._tracked(obj, once):
                            heap[obj] = heap.get(obj, _EMPTY) | value
            # weak update of memory: base universe already covers it
        elif strong:
            if isinstance(inst, (Call, CallIndirect)):
                # The callee may write any escaped cell: drop every heap
                # fact and the tracked sets of address-taken / global
                # top-level names (their value may have been re-pointed).
                heap.clear()
                for name in list(state):
                    if name in addr_taken or name.startswith("@"):
                        del state[name]
                if inst.dst is not None:
                    state.pop(inst.dst.name, None)
            elif isinstance(inst, MemSet):
                ptr = state.get(inst.ptr.name, self.base.points_to(inst.ptr.name))
                for obj in ptr:
                    heap.pop(obj, None)
            else:
                # Any other defining instruction invalidates its
                # destination (BinOp/UnOp/DeclLocal results are not
                # pointers we track, but a stale set would be unsound).
                dst = getattr(inst, "dst", None) or getattr(inst, "var", None)
                if isinstance(dst, Var):
                    state.pop(dst.name, None)

    # -- post-fixpoint accounting ----------------------------------------------

    def _record_kills(self, func, order, preds, states, heaps, addr_taken, once) -> None:
        """One deterministic in-order replay over the converged states,
        recording each strong-update kill as (function, pointer, ordinal)
        — stable across processes and module renumbering."""
        ordinal = 0
        for block in order:
            in_state: Dict[str, FrozenSet[Obj]] = {}
            in_heap: Dict[Obj, FrozenSet[Obj]] = {}
            for pred in preds[block]:
                for name, objs in states.get(pred.uid, {}).items():
                    in_state[name] = in_state.get(name, _EMPTY) | objs
                for obj, objs in heaps.get(pred.uid, {}).items():
                    in_heap[obj] = in_heap.get(obj, _EMPTY) | objs
            kills: List[str] = []
            for inst in block.instructions:
                self._transfer(inst, in_state, in_heap, addr_taken, once, kills=kills)
            for ptr_name in kills:
                self.killed_defs.append((func.name, ptr_name, ordinal))
                ordinal += 1
        self.strong_updates_applied += ordinal

    def _record_must_singletons(self, func, states) -> None:
        singleton: Set[str] = set()
        plural: Set[str] = set()
        for state in states.values():
            for name, objs in state.items():
                if len(objs) == 1:
                    singleton.add(name)
                else:
                    plural.add(name)
        self._must_singletons[func.name] = frozenset(singleton - plural)

    # -- queries ----------------------------------------------------------------

    def must_singleton_names(self, func: Function) -> FrozenSet[str]:
        """Names whose points-to set is a must singleton at every block
        of ``func`` where the dataflow pins it down (strong-update mode
        only; empty otherwise)."""
        self.analyze_function(func)
        return self._must_singletons.get(func.name, frozenset())

    def points_to_at(self, func: Function, block_uid: int, var_name: str) -> FrozenSet[Obj]:
        self.analyze_function(func)
        precise = self._block_out.get((func.name, block_uid, var_name))
        return precise if precise is not None else self.base.points_to(var_name)

    def may_alias_at(self, func: Function, block_uid: int, a: str, b: str) -> bool:
        if a == b:
            return True
        return bool(self.points_to_at(func, block_uid, a) & self.points_to_at(func, block_uid, b))

    def must_not_alias_at(self, func: Function, block_uid: int, a: str, b: str) -> bool:
        """Sound must-not-alias at a program point: the (over-approximate)
        points-to sets are disjoint, so no execution can make ``a`` and
        ``b`` name the same cell there."""
        return not self.may_alias_at(func, block_uid, a, b)
