"""Points-to analyses: the aliasing substrate of the compared tools (§6)
and the cheap whole-program tier above the per-path alias graphs (P1.7)."""

from .andersen import AndersenPointsTo, MemoryBudgetExceeded
from .flow_sensitive import FlowSensitivePointsTo
from .flow_tier import MustAliasFacts, compute_flow_facts, taint_flow_possible
from .steensgaard import (
    MayAliasPartition,
    SteensgaardPointsTo,
    UnionFind,
    build_partition,
    shared_reaching_names,
)

__all__ = [
    "AndersenPointsTo", "MemoryBudgetExceeded", "FlowSensitivePointsTo",
    "MayAliasPartition", "MustAliasFacts", "SteensgaardPointsTo", "UnionFind",
    "build_partition", "compute_flow_facts", "shared_reaching_names",
    "taint_flow_possible",
]
