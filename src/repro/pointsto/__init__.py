"""Points-to analyses: the aliasing substrate of the compared tools (§6)."""

from .andersen import AndersenPointsTo, MemoryBudgetExceeded
from .flow_sensitive import FlowSensitivePointsTo

__all__ = ["AndersenPointsTo", "MemoryBudgetExceeded", "FlowSensitivePointsTo"]
