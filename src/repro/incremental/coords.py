"""Stable instruction coordinates and cross-run rehydration.

Instruction and block ``uid``\\ s are *process-local* counters: a cached
P2 outcome unpickled in a later run carries uids that mean nothing to —
or worse, collide with — the current program.  This module gives every
instruction, terminator, and block a **coordinate** that *is* stable
across runs for an unchanged function::

    (function name, block index, instruction index)   # -1 = terminator

A cache hit's entry has an unchanged callgraph closure (that is what the
transitive key certifies), so every instruction its traces mention still
sits at the same coordinate in the current program; rehydration swaps
each unpickled copy for the current program's own object.  After that a
cached outcome is indistinguishable from one the current run explored:
uid-based dedup keys, race-matcher sort orders, and ``heap#<uid>``
shared-state roots all agree with freshly analyzed entries.

The module also owns :func:`renumber_program` — after assembling a
program from cached (unpickled) modules, every uid is reassigned from
the live process counters so they cannot collide with IR compiled fresh
in the same process.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple

from ..ir import Instruction, Program, Terminator

#: coordinate of one instruction: (function, block index, instruction
#: index); the terminator of a block sits at instruction index -1
Coord = Tuple[str, int, int]

_HEAP_ROOT = re.compile(r"heap#(\d+)")


class StaleEntry(Exception):
    """A cached object references a coordinate the current program does
    not have (or vice versa) — the entry predates the current cache-key
    scheme or the key derivation missed a dependency.  Callers treat it
    as a miss; soundness never rests on this path being unreachable."""


def _walk(program: Program) -> Iterator[Tuple[Coord, object]]:
    for func in program.functions():
        for block_index, block in enumerate(func.blocks):
            for inst_index, inst in enumerate(block.instructions):
                yield (func.name, block_index, inst_index), inst
            if block.terminator is not None:
                yield (func.name, block_index, -1), block.terminator


class CoordIndex:
    """Bidirectional uid ⇄ coordinate maps over one program, built once
    per analysis (one linear walk) and shared by every snapshot/
    rehydrate call."""

    def __init__(self, program: Program):
        self.by_uid: Dict[int, Coord] = {}
        self.by_coord: Dict[Coord, object] = {}
        for coord, inst in _walk(program):
            self.by_uid[inst.uid] = coord
            self.by_coord[coord] = inst

    def coord_of(self, uid: int) -> Coord:
        try:
            return self.by_uid[uid]
        except KeyError:
            raise StaleEntry(f"uid {uid} has no coordinate in this program")

    def resolve(self, coord) -> object:
        inst = self.by_coord.get(tuple(coord))
        if inst is None:
            raise StaleEntry(f"coordinate {coord!r} not present in this program")
        return inst

    # -- block coordinates (layer b: dead-block masks) -----------------------

    def block_coords(self, func, uids) -> List[int]:
        """Dead-block uids of ``func`` → sorted stable block indexes."""
        index_of = {block.uid: i for i, block in enumerate(func.blocks)}
        out = []
        for uid in uids:
            if uid not in index_of:
                raise StaleEntry(f"block uid {uid} not in function {func.name}")
            out.append(index_of[uid])
        return sorted(out)

    @staticmethod
    def resolve_block_coords(func, indexes) -> frozenset:
        """Stable block indexes → the current function's block uids."""
        blocks = func.blocks
        try:
            return frozenset(blocks[i].uid for i in indexes)
        except IndexError:
            raise StaleEntry(
                f"block index out of range for function {func.name}"
            )


# -- outcome snapshot / rehydrate -------------------------------------------


def _is_inst(obj) -> bool:
    return isinstance(obj, (Instruction, Terminator))


def _trace_uids(trace) -> Iterator[int]:
    for step in trace:
        for item in step:
            if _is_inst(item):
                yield item.uid


def _key_uids(key) -> Iterator[int]:
    for match in _HEAP_ROOT.finditer(key[0]):
        yield int(match.group(1))


def outcome_coords(outcome, index: CoordIndex) -> Dict[int, Coord]:
    """uid → coordinate for every instruction a cached outcome mentions:
    bug sources/sinks, trace steps, access instructions, and the malloc
    uids embedded in ``heap#N`` shared-state roots (keys and locksets).
    Stored alongside the pickled outcome; the loading run inverts it."""
    coords: Dict[int, Coord] = {}

    def note(uid: int) -> None:
        if uid not in coords:
            coords[uid] = index.coord_of(uid)

    for bug in outcome.bugs:
        note(bug.source.uid)
        note(bug.sink.uid)
        for uid in _trace_uids(bug.trace):
            note(uid)
        for uid in _trace_uids(bug.second_trace):
            note(uid)
    for access in outcome.accesses:
        note(access.inst.uid)
        for uid in _trace_uids(access.trace):
            note(uid)
        for uid in _key_uids(access.key):
            note(uid)
        for lock in access.lockset:
            for uid in _key_uids(lock):
                note(uid)
        # TaintFlow records (P2.6) ride the same channel and add two
        # fields SharedAccess lacks; duck-typed so both families walk.
        source = getattr(access, "source", None)
        if source is not None:
            note(source.uid)
        dst_key = getattr(access, "dst_key", None)
        if dst_key is not None:
            for uid in _key_uids(dst_key):
                note(uid)
    return coords


def rehydrate_outcome(outcome, coords: Dict[int, Coord], index: CoordIndex):
    """Swap every unpickled instruction (and ``heap#N`` root) in
    ``outcome`` for the current program's object at the recorded
    coordinate, **in place**.  Raises :class:`StaleEntry` when any
    coordinate no longer resolves — the caller downgrades to a miss."""

    resolved: Dict[int, object] = {
        uid: index.resolve(coord) for uid, coord in coords.items()
    }

    def map_inst(inst):
        try:
            return resolved[inst.uid]
        except KeyError:
            raise StaleEntry(f"uid {inst.uid} missing from coordinate table")

    def map_trace(trace) -> Tuple:
        return tuple(
            tuple(map_inst(item) if _is_inst(item) else item for item in step)
            for step in trace
        )

    def map_root(root: str) -> str:
        def sub(match) -> str:
            old = int(match.group(1))
            try:
                return f"heap#{resolved[old].uid}"
            except KeyError:
                raise StaleEntry(f"heap uid {old} missing from coordinate table")
        return _HEAP_ROOT.sub(sub, root)

    def map_key(key):
        return (map_root(key[0]), key[1])

    for bug in outcome.bugs:
        bug.source = map_inst(bug.source)
        bug.sink = map_inst(bug.sink)
        bug.trace = map_trace(bug.trace)
        if bug.second_trace:
            bug.second_trace = map_trace(bug.second_trace)
    for access in outcome.accesses:
        access.inst = map_inst(access.inst)
        access.trace = map_trace(access.trace)
        access.key = map_key(access.key)
        access.lockset = frozenset(map_key(lock) for lock in access.lockset)
        if getattr(access, "source", None) is not None:
            access.source = map_inst(access.source)
        if getattr(access, "dst_key", None) is not None:
            access.dst_key = map_key(access.dst_key)
    return outcome


def renumber_program(program: Program) -> None:
    """Reassign every block/instruction/terminator uid sequentially from
    1, in deterministic program order.  Mandatory after assembling a
    program from unpickled cached modules: their pickled uids come from
    another process's counters and could collide with IR compiled fresh
    into the same program (colliding dedup keys silently drop reports).

    The numbering is deliberately *process-independent*: uids leak into
    rendered report text through ``heap#<uid>`` shared-state roots, so a
    resident session (which compiles programs at arbitrary points in a
    long-lived process) would otherwise drift from a one-shot CLI run on
    the same sources.  Per-program numbering cannot collide across
    programs — every uid consumer (dedup keys, race-matcher sort orders,
    coordinate indexes, heap roots) is scoped to a single analysis, and
    every uid inside one program is reassigned here in one pass."""
    next_block = 0
    next_inst = 0
    for module in program.modules:
        for func in module.functions.values():
            for block in func.blocks:
                next_block += 1
                block.uid = next_block
                for inst in block.instructions:
                    next_inst += 1
                    inst.uid = next_inst
                if block.terminator is not None:
                    next_inst += 1
                    block.terminator.uid = next_inst
