"""Content-addressed fingerprints over the IR — the incremental cache's
key derivation (layer-independent half of the subsystem).

Three levels of key:

* **function fingerprint** — sha256 of the function's canonical printing
  (:func:`repro.ir.printer.canonical_function_print`) salted with its
  module's environment (struct layouts, globals, registrations): the
  function's *own* content.
* **transitive key** — the function's fingerprint folded with the
  fingerprints of its whole callgraph closure, computed over the SCC
  condensation of the direct call graph (components fold their sorted
  member fingerprints, then their sorted child-component keys).  Any
  reachable function's edit changes the key; nothing else does.
* **indirect-dispatch salt** — when function-pointer resolution is on,
  a function whose closure contains an indirect call site may dispatch
  into the registration pool (the same conservative link P1.5's
  :class:`~repro.presolve.summary.EventSummaryIndex` makes), so its
  transitive key additionally folds the *pool stamp*: every
  registration tuple plus every registered target's own closure key.
  Adding a function to the pool — or editing anything a pool member can
  reach — invalidates exactly the entries that may dispatch into it.

Everything here is a pure function of the program; no I/O.  Keys are hex
strings, stable across processes and hash seeds (uids never participate).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir import CallIndirect, Function, Program
from ..ir.printer import canonical_function_print, canonical_module_environment


def _sha(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8", "surrogatepass"))
        h.update(b"\x00")
    return h.hexdigest()


def module_fingerprints(module) -> Dict[str, str]:
    """name -> content fingerprint for the module's defined functions.

    The module environment is folded per-module, not program-wide: a new
    struct or global in one file re-keys that file's functions only —
    other modules' closures stay warm.
    """
    env = canonical_module_environment(module)
    fps: Dict[str, str] = {}
    for func in module.functions.values():
        if not func.is_declaration:
            fps[func.name] = _sha("fn", env, canonical_function_print(func))
    return fps


def function_fingerprints(program: Program) -> Dict[str, str]:
    """name -> content fingerprint for every defined function."""
    fps: Dict[str, str] = {}
    for module in program.modules:
        fps.update(module_fingerprints(module))
    return fps


def _direct_call_edges(program: Program) -> Tuple[Dict[str, List[str]], Set[str]]:
    """(name -> sorted defined direct callees, names with an indirect
    call site).  Calls to undefined functions need no edge: the callee
    name is already part of the caller's printing, and an *undefined →
    defined* flip adds an edge (and so changes the closure key)."""
    defined = {func.name for func in program.functions()}
    edges: Dict[str, List[str]] = {}
    indirect: Set[str] = set()
    for func in program.functions():
        callees: Set[str] = set()
        for inst in func.instructions():
            callee = getattr(inst, "callee", None)
            if callee is not None and callee in defined and callee != func.name:
                callees.add(callee)
            if isinstance(inst, CallIndirect):
                indirect.add(func.name)
        edges[func.name] = sorted(callees)
    return edges, indirect


def _condensed_components(edges: Dict[str, List[str]]) -> List[List[str]]:
    """Tarjan SCCs of the direct call graph, emitted children-first
    (reverse topological order), iteratively — corpus call chains can
    exceed the interpreter recursion limit."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    for root in sorted(edges):
        if root in index:
            continue
        work: List[Tuple[str, Iterable[str]]] = [(root, iter(edges[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(edges[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


class TransitiveKeys:
    """Closure keys for every defined function of one program.

    ``key(name)`` is the function's transitive cache key; it changes iff
    the canonical content of some function its exploration can possibly
    inline changed (direct callees transitively; plus the whole
    registration pool when an indirect call site is reachable and
    resolution is enabled).
    """

    def __init__(self, program: Program, resolve_function_pointers: bool = False,
                 fingerprints: Optional[Dict[str, str]] = None):
        self.program = program
        # `fingerprints` lets a caller reuse prints computed at module-
        # cache time (they exclude uids, so they survive renumbering);
        # anything that doesn't cover exactly the defined functions is
        # recomputed — stale prints would poison every derived key.
        if fingerprints is not None and set(fingerprints) == {
            func.name for func in program.functions()
        }:
            self.fingerprints = fingerprints
        else:
            self.fingerprints = function_fingerprints(program)
        edges, self._indirect_sites = _direct_call_edges(program)
        self._closure_keys: Dict[str, str] = {}
        self._closure_indirect: Dict[str, bool] = {}
        self._fold(edges)
        self.pool_stamp = ""
        if resolve_function_pointers:
            self.pool_stamp = self._pool_stamp()

    def _fold(self, edges: Dict[str, List[str]]) -> None:
        comp_of: Dict[str, int] = {}
        components = _condensed_components(edges)
        for i, members in enumerate(components):
            for name in members:
                comp_of[name] = i
        comp_key: Dict[int, str] = {}
        comp_indirect: Dict[int, bool] = {}
        # children-first order: every successor component is already keyed
        for i, members in enumerate(components):
            child_keys: Set[str] = set()
            indirect = any(name in self._indirect_sites for name in members)
            for name in members:
                for callee in edges[name]:
                    j = comp_of[callee]
                    if j != i:
                        child_keys.add(comp_key[j])
                        indirect = indirect or comp_indirect[j]
            member_fps = sorted(
                f"{name}={self.fingerprints[name]}" for name in members
            )
            comp_key[i] = _sha("scc", *member_fps, *sorted(child_keys))
            comp_indirect[i] = indirect
        for name in edges:
            i = comp_of[name]
            self._closure_keys[name] = comp_key[i]
            self._closure_indirect[name] = comp_indirect[i]

    def _pool_stamp(self) -> str:
        """One stamp over the whole indirect-dispatch pool: every
        registration tuple plus each registered target's closure key.
        The engine resolves per (struct, field) slot, so this is
        conservative — any pool change invalidates every
        indirect-dispatching closure — but never misses a devirtualized
        edge."""
        parts: List[str] = []
        for reg in self.program.registrations():
            struct = reg.struct_type.name if reg.struct_type is not None else "?"
            target_key = self._closure_keys.get(reg.function, "undefined")
            parts.append(f"{struct}.{reg.field}={reg.function}:{target_key}")
        return _sha("pool", *sorted(parts))

    def closure_has_indirect_call(self, name: str) -> bool:
        return self._closure_indirect.get(name, False)

    def key(self, name: str) -> str:
        """The transitive cache key of ``name`` (raises KeyError for
        undefined functions — those have no content to address)."""
        base = self._closure_keys[name]
        if self.pool_stamp and self._closure_indirect[name]:
            return _sha("tk", base, self.pool_stamp)
        return base


def spec_fingerprint(checker_spec: str) -> str:
    """Canonical form of a checker spec: the resolved checker-name list,
    so ``"default"`` and ``"npd,uva,ml"`` share cache entries."""
    from ..typestate.checkers import _expand_spec

    return ",".join(_expand_spec(checker_spec))


def engine_config_fingerprint(config) -> str:
    """The P2-semantics-affecting knobs, folded into layer-(c) keys.
    Budgets and exploration parameters change which paths (and so which
    possible bugs) exist; validation/worker/cache knobs do not."""
    return _sha(
        "cfg",
        repr(
            (
                config.alias_aware,
                config.max_paths_per_entry,
                config.max_steps_per_entry,
                config.max_call_depth,
                config.max_block_visits,
                config.merge_callee_exits,
                config.max_callee_exits_per_call,
                config.max_recursion_occurrences,
                config.optimize_ir,
                config.resolve_function_pointers,
                config.max_indirect_targets,
                config.prune,
                config.alias_tier,
                config.taint_borders,
            )
        ),
    )


def presolve_config_fingerprint(config) -> str:
    """The P1.5-semantics-affecting knobs, folded into layer-(b) keys —
    deliberately narrower than :func:`engine_config_fingerprint`, so
    relevance masks survive a path-budget change that forces P2 to
    re-run.  ``alias_tier`` participates because P1.7 sharpening changes
    which blocks the masks call dead (soundly, but the bytes differ);
    ``taint_borders`` because border arming widens the xtaint checker's
    trigger mask, which feeds the relevance masks."""
    return _sha(
        "pcfg",
        repr((config.resolve_function_pointers, config.optimize_ir,
              config.alias_tier, config.taint_borders)),
    )
