"""Incremental analysis: a content-addressed summary cache with
callgraph-closure invalidation (warm-start PATA).

The subsystem splits into four modules:

* :mod:`.fingerprint` — key derivation: canonical-print function
  fingerprints, SCC-condensed transitive closure keys, the
  indirect-dispatch pool stamp, checker-spec and config fingerprints;
* :mod:`.store` — the on-disk object store: checksummed reads, staged
  single-writer atomic commits, versioned header;
* :mod:`.coords` — stable instruction coordinates and outcome
  rehydration across process boundaries (uids are process-local);
* :mod:`.engine` — orchestration: :class:`IncrementalContext` drives
  plan/load/commit inside :meth:`repro.core.pata.PATA.analyze`;
  :func:`compile_with_cache` is the frontend (layer-0) cache.

Cache layers (see :mod:`.engine` for the key table): compiled modules,
P1 collector facts, P1.5 relevance masks, per-entry P2 outcomes.
Corruption, version skew, and stale coordinates all degrade to warned
misses — a cache can make a run faster, never wrong.
"""

from .coords import CoordIndex, StaleEntry, renumber_program
from .engine import (
    CachedRelevance,
    IncrementalContext,
    IncrementalPlan,
    compile_with_cache,
    open_incremental,
)
from .fingerprint import (
    TransitiveKeys,
    engine_config_fingerprint,
    function_fingerprints,
    presolve_config_fingerprint,
    spec_fingerprint,
)
from .store import CACHE_FORMAT, CacheStore, open_store

__all__ = [
    "CACHE_FORMAT",
    "CacheStore",
    "CachedRelevance",
    "CoordIndex",
    "IncrementalContext",
    "IncrementalPlan",
    "StaleEntry",
    "TransitiveKeys",
    "compile_with_cache",
    "engine_config_fingerprint",
    "function_fingerprints",
    "open_incremental",
    "open_store",
    "presolve_config_fingerprint",
    "renumber_program",
    "spec_fingerprint",
]
