"""The on-disk half of the incremental cache: a content-addressed object
store with a versioned header, atomic commits, and checksummed reads.

Layout under ``cache_dir``::

    meta.json                  # {"format": N, "engine": "x.y.z"} header
    objects/ab/abcdef....bin   # one object per key (sha256 hex)

Every object file is ``MAGIC ‖ sha256(payload) ‖ payload``; a read
re-hashes the payload and any mismatch (truncation, bit rot, a torn
write from a crashed run) is **a miss with a one-line warning — never a
crash and never a wrong result**.  Writes are staged in memory and only
flushed by :meth:`CacheStore.commit` — the *single-writer* protocol: the
parent process commits once after the deterministic merge, worker
processes open the store read-only.  Each flush writes to a tempfile in
the objects tree and ``os.replace``\\ s it into place, so a concurrent
reader sees either the old object or the new one, never a torn file.

The engine version and cache-format version are folded into every key
(:meth:`CacheStore.object_key`), so objects written by an incompatible
engine simply never match — ``meta.json`` records the versions for
humans and lets an engine flag the mismatch loudly.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from .. import __version__ as ENGINE_VERSION

log = logging.getLogger("repro.incremental")

#: bump when the pickled payload schema changes incompatibly
#: (2: P1.7 partition layer + sharpened relevance-mask payloads;
#: 3: P1.8 must-alias-facts layer + taint-sharpened relevance masks;
#: 4: P2.6 xtaint module-summary layer + TaintFlow records in cached
#: outcomes' access lists)
CACHE_FORMAT = 4
_MAGIC = b"PATACHE1"
_DIGEST_BYTES = 32


class CacheStore:
    """One open cache directory in ``"ro"`` or ``"rw"`` mode.

    ``get``/``put`` speak *object keys* (already-derived hex keys from
    :meth:`object_key`); values are arbitrary picklable objects.  In
    ``rw`` mode, ``put`` stages; nothing touches disk until ``commit``.
    """

    def __init__(self, cache_dir: str, mode: str = "ro"):
        if mode not in ("ro", "rw"):
            raise ValueError(f"cache mode must be 'ro' or 'rw', not {mode!r}")
        self.root = Path(cache_dir)
        self.mode = mode
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self._staged: Dict[str, bytes] = {}
        #: keys whose on-disk object verified during this handle's reads
        #: — lets `put` skip re-reading them without trusting mere
        #: file existence (a corrupt object must be re-written)
        self._known_good: set = set()
        self._objects = self.root / "objects"
        if mode == "rw":
            self._objects.mkdir(parents=True, exist_ok=True)
        self._check_header()

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def object_key(*parts: str) -> str:
        """Derive an object key from labelled parts.  The engine and
        format versions participate, so a cache directory can hold
        objects from several engine versions side by side without any
        possibility of cross-version payload confusion."""
        h = hashlib.sha256()
        for part in (f"format={CACHE_FORMAT}", f"engine={ENGINE_VERSION}", *parts):
            h.update(part.encode("utf-8", "surrogatepass"))
            h.update(b"\x00")
        return h.hexdigest()

    # -- header --------------------------------------------------------------

    def _check_header(self) -> None:
        meta_path = self.root / "meta.json"
        try:
            meta = json.loads(meta_path.read_text())
        except FileNotFoundError:
            return
        except Exception as exc:
            log.warning("cache %s: unreadable meta.json (%s); continuing — "
                        "object checksums still protect every read", self.root, exc)
            return
        if meta.get("format") != CACHE_FORMAT or meta.get("engine") != ENGINE_VERSION:
            log.warning(
                "cache %s was written by engine %s (format %s); this is engine "
                "%s (format %s) — existing entries will read as misses",
                self.root, meta.get("engine"), meta.get("format"),
                ENGINE_VERSION, CACHE_FORMAT,
            )

    # -- read path -----------------------------------------------------------

    def _path_of(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.bin"

    def get(self, key: str) -> Optional[Any]:
        """The object stored under ``key``, or None (a miss).  Corrupt,
        truncated, or unpicklable objects are misses with a warning."""
        staged = self._staged.get(key)
        if staged is not None:
            self.hits += 1
            return pickle.loads(staged[len(_MAGIC) + _DIGEST_BYTES:])
        try:
            blob = self._path_of(key).read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            log.warning("cache %s: unreadable object %s (%s); treating as a miss",
                        self.root, key[:12], exc)
            self.misses += 1
            return None
        payload = self._verify(key, blob)
        if payload is None:
            self.misses += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception as exc:
            log.warning("cache %s: undecodable object %s (%s); treating as a miss",
                        self.root, key[:12], exc)
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        self._known_good.add(key)
        return value

    def _verify(self, key: str, blob: bytes) -> Optional[bytes]:
        if len(blob) < len(_MAGIC) + _DIGEST_BYTES or not blob.startswith(_MAGIC):
            log.warning("cache %s: corrupt object %s (bad magic/truncated); "
                        "treating as a miss", self.root, key[:12])
            self.corrupt += 1
            return None
        digest = blob[len(_MAGIC):len(_MAGIC) + _DIGEST_BYTES]
        payload = blob[len(_MAGIC) + _DIGEST_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            log.warning("cache %s: corrupt object %s (checksum mismatch); "
                        "treating as a miss", self.root, key[:12])
            self.corrupt += 1
            return None
        return payload

    def contains(self, key: str) -> bool:
        """Whether ``key`` would hit, without counting a hit/miss or
        decoding the payload (checksum still verified)."""
        if key in self._staged or key in self._known_good:
            return True
        try:
            blob = self._path_of(key).read_bytes()
        except OSError:
            return False
        if self._verify(key, blob) is None:
            return False
        self._known_good.add(key)
        return True

    # -- write path (single writer) -------------------------------------------

    def put(self, key: str, value: Any) -> None:
        """Stage ``value`` under ``key``; a later :meth:`commit` flushes.
        No-op in ``ro`` mode, and for keys whose on-disk object
        *verifies* (same key ⇒ same content, by construction) — mere
        file existence is not enough, or a corrupt object would never
        heal."""
        if self.mode != "rw":
            return
        if self.contains(key):
            return
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._staged[key] = _MAGIC + hashlib.sha256(payload).digest() + payload

    def commit(self) -> int:
        """Atomically flush every staged object (tempfile + rename, one
        object at a time) and refresh ``meta.json``.  Returns the number
        of objects written.  The cache stays consistent under crashes:
        an interrupted commit leaves fully-written objects and tempfiles
        that later runs ignore."""
        if self.mode != "rw" or not self._staged:
            return 0
        written = 0
        for key, blob in self._staged.items():
            target = self._path_of(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=str(target.parent), suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp, target)
                written += 1
            except OSError as exc:
                log.warning("cache %s: failed to write object %s (%s)",
                            self.root, key[:12], exc)
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        self._staged.clear()
        meta_path = self.root / "meta.json"
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump({"format": CACHE_FORMAT, "engine": ENGINE_VERSION}, handle)
            os.replace(tmp, meta_path)
        except OSError as exc:
            log.warning("cache %s: failed to write meta.json (%s)", self.root, exc)
        return written


def open_store(cache_dir: Optional[str], cache_mode: str) -> Optional[CacheStore]:
    """CacheStore for the configured (dir, mode), or None when caching is
    off or the directory cannot be opened (warned, never fatal)."""
    if not cache_dir or cache_mode not in ("ro", "rw"):
        return None
    try:
        return CacheStore(cache_dir, cache_mode)
    except Exception as exc:
        log.warning("cache disabled: cannot open %s in mode %s (%s)",
                    cache_dir, cache_mode, exc)
        return None
