"""Orchestration glue between the cache primitives and the PATA pipeline.

:class:`IncrementalContext` is what :meth:`repro.core.pata.PATA.analyze`
actually talks to.  Opened once per analysis (when the config enables
caching and the checker set is spec-addressable), it:

* derives every function's transitive key (:mod:`.fingerprint`) and the
  program's coordinate index (:mod:`.coords`) once;
* seeds the P1 collector with cached may-return facts (**layer a**);
* partitions the entry list into cache hits, cached skips, and dirty
  entries (**layers b and c**), rehydrating each hit's outcome onto the
  current program;
* after the dirty entries are explored, stages all three layers and
  flushes them with the store's single :meth:`~.store.CacheStore.commit`
  — the parent process is the only store client: worker processes never
  open it (the parent ships them its collector facts and relevance
  masks directly, see :mod:`repro.core.parallel`).

Layer keys, and what each deliberately excludes:

=========  ======================================================  =================================
layer      key ingredients                                         survives
=========  ======================================================  =================================
modules    source sha + filename + frontend tag                    any non-frontend config change
facts      function transitive key                                 checker-spec *and* config changes
partition  module closure (every transitive key)                   checker-spec *and* config changes
masks      entry transitive key + spec + presolve-config fp        P2 budget changes
outcomes   entry transitive key + spec + engine-config fp          edits outside the entry's closure
xsummary   module closure + spec + engine-config fp                nothing (any edit rebuilds)
=========  ======================================================  =================================

Every key also folds the engine + cache-format versions (see
:meth:`~.store.CacheStore.object_key`).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..ir import Function, Program
from .coords import CoordIndex, StaleEntry, outcome_coords, rehydrate_outcome, renumber_program
from .fingerprint import (
    TransitiveKeys,
    _sha,
    engine_config_fingerprint,
    presolve_config_fingerprint,
    spec_fingerprint,
)
from .store import CacheStore, open_store

log = logging.getLogger("repro.incremental")


def _facts_key(name: str, tkey: str) -> str:
    return CacheStore.object_key("facts", name, tkey)


def _mask_key(name: str, tkey: str, spec_fp: str, presolve_fp: str) -> str:
    return CacheStore.object_key("mask", name, tkey, spec_fp, presolve_fp)


def _outcome_key(name: str, tkey: str, spec_fp: str, engine_fp: str) -> str:
    return CacheStore.object_key("outcome", name, tkey, spec_fp, engine_fp)


def _module_key(filename: str, source: str) -> str:
    return CacheStore.object_key("module", filename, _sha("src", source))


def _partition_key(closure_pairs: List[str]) -> str:
    """P1.7 may-alias partition layer: one object per *module closure* —
    the sorted name=transitive-key pairs — because the unification pass
    reads the whole program.  Any edit anywhere misses and rebuilds."""
    return CacheStore.object_key("partition", *closure_pairs)


def _flow_key(closure_pairs: List[str], resolve_fp: bool) -> str:
    """P1.8 must-alias-facts layer: like the partition, one object per
    module closure — the facts embed their own callgraph and the
    occurrence walk reads every function.  Indirect-call resolution
    changes the disqualification rules and the embedded pool, so the
    flag folds into the key."""
    return CacheStore.object_key("flowfacts", repr(resolve_fp), *closure_pairs)


def _xsummary_key(closure_pairs: List[str], spec_fp: str, engine_fp: str) -> str:
    """P2.6 interface-summary layer: one object per module closure — the
    summaries are a projection of every module's merged taint flows, so
    an edit anywhere rebuilds them.  The spec and engine fingerprints
    participate because the flows depend on which checkers are armed and
    on the exploration budgets (same ingredients as the outcome layer:
    the summaries are exactly a re-grouping of outcome records)."""
    return CacheStore.object_key("xsummary", spec_fp, engine_fp, *closure_pairs)


class _FlowBundle:
    """Adapter giving a flat TaintFlow list the ``(bugs, accesses)``
    shape that :func:`~.coords.outcome_coords` and
    :func:`~.coords.rehydrate_outcome` walk — flows are rehydrated in
    place, so the summaries referencing them heal too."""

    def __init__(self, flows):
        self.bugs: List = []
        self.accesses = flows


# Program-wide *bundle* objects: the fully-warm fast path.  A warm run
# over N functions would otherwise pay N small reads (and their pathlib
# + unpickle fixed costs) per layer; the bundles collapse each layer to
# one read, keyed over every transitive key at once, so *any* edit
# anywhere misses the bundle and falls back to the granular objects.


def _facts_bundle_key(closure_pairs: List[str]) -> str:
    return CacheStore.object_key("facts-bundle", *closure_pairs)


def _plan_bundle_key(closure_pairs: List[str], entry_names: List[str],
                     spec_fp: str, engine_fp: str) -> str:
    return CacheStore.object_key(
        "plan-bundle", spec_fp, engine_fp, *closure_pairs, "entries:", *entry_names
    )


@dataclass
class IncrementalPlan:
    """The per-entry partition one warm-start run works from."""

    #: entry name -> rehydrated cached outcome ((b) relevant + (c) hit)
    cached: Dict[str, object] = field(default_factory=dict)
    #: entries whose cached relevance mask says "skip outright"
    skipped: List[str] = field(default_factory=list)
    #: entries this run must explore, in entry-list order
    dirty: List[Function] = field(default_factory=list)
    #: dead-block uid sets for dirty entries whose mask hit anyway
    masks: Dict[str, FrozenSet[int]] = field(default_factory=dict)
    #: per-entry armed checker names (None = arming unsupported, the
    #: explorer dispatches every checker), for the same dirty entries
    armed: Dict[str, Optional[FrozenSet[str]]] = field(default_factory=dict)
    #: True when some dirty entry has no cached mask — the run must
    #: build the live P1.5 pre-analysis
    needs_relevance: bool = True


class CachedRelevance:
    """A drop-in for :class:`~repro.presolve.prune.RelevancePreAnalysis`
    backed entirely by cached layer-(b) masks: same ``dead_blocks`` and
    ``armed_names`` surface the explorer consumes, none of the
    summary-index build cost.  Only constructed when *every* entry it
    will be asked about has a cached mask (anything else falls back to
    the live pre-analysis)."""

    supported = True

    def __init__(
        self,
        masks: Dict[str, FrozenSet[int]],
        armed: Optional[Dict[str, Optional[FrozenSet[str]]]] = None,
    ):
        self._masks = masks
        self._armed = armed or {}

    def dead_blocks(self, entry: Function) -> FrozenSet[int]:
        return self._masks.get(entry.name, frozenset())

    def armed_names(self, entry: Function) -> Optional[FrozenSet[str]]:
        return self._armed.get(entry.name)


class IncrementalContext:
    """One analysis run's view of the cache (see module docstring)."""

    def __init__(self, store: CacheStore, program: Program, config, checker_spec: str):
        from ..cfg import mark_interface_functions

        # Fingerprints print the `interface` flag, so the marking pass
        # must run before key derivation (the collector re-runs it
        # idempotently a moment later).
        mark_interface_functions(program)
        self.store = store
        self.program = program
        self.config = config
        self.keys = TransitiveKeys(
            program,
            config.resolve_function_pointers,
            fingerprints=getattr(program, "_pata_fingerprints", None),
        )
        self.spec_fp = spec_fingerprint(checker_spec)
        self.engine_fp = engine_config_fingerprint(config)
        self.presolve_fp = presolve_config_fingerprint(config)
        self.index = CoordIndex(program)
        self.facts_reused = 0
        self.masks_reused = 0
        self.stale_entries = 0
        #: sorted "name=transitive-key" pairs — the program-wide stamp
        #: every bundle key is derived from
        self._closure_pairs = sorted(
            f"{name}={self.keys.key(name)}" for name in self.keys.fingerprints
        )
        self._facts_bundled = False
        self._plan_bundled = False
        self._entry_names: List[str] = []
        self._last_plan: Optional[IncrementalPlan] = None

    # -- layer a: collector facts -------------------------------------------

    def cached_facts(self) -> Dict[str, Tuple[bool, bool]]:
        """name -> (may_return_negative, may_return_zero) for every
        function whose facts are cached under its current transitive key.
        Sound to seed: the facts were computed over byte-identical
        content, and the collector's fixpoint only flips False->True."""
        bundle = self.store.get(_facts_bundle_key(self._closure_pairs))
        if isinstance(bundle, dict) and set(bundle) == set(self.keys.fingerprints):
            self._facts_bundled = True
            self.facts_reused = len(bundle)
            return bundle
        facts: Dict[str, Tuple[bool, bool]] = {}
        for name in self.keys.fingerprints:
            value = self.store.get(_facts_key(name, self.keys.key(name)))
            if isinstance(value, tuple) and len(value) == 2:
                facts[name] = value
        self.facts_reused = len(facts)
        return facts

    # -- layer p: P1.7 may-alias partition -----------------------------------

    def cached_partition(self):
        """The whole-program :class:`~repro.pointsto.steensgaard.
        MayAliasPartition` cached under this program's module closure, or
        ``None`` on a miss (including any shape surprise — a corrupt
        payload degrades to rebuilding the pass, never to a crash)."""
        from ..pointsto.steensgaard import MayAliasPartition

        payload = self.store.get(_partition_key(self._closure_pairs))
        if isinstance(payload, MayAliasPartition):
            return payload
        return None

    def stage_partition(self, partition) -> None:
        """Stage the freshly built partition for the next commit (put
        already skips keys staged or on disk, so warm runs write
        nothing)."""
        if partition is not None and self.store.mode == "rw":
            self.store.put(_partition_key(self._closure_pairs), partition)

    # -- layer f: P1.8 must-alias facts --------------------------------------

    def cached_flow_facts(self):
        """The :class:`~repro.pointsto.flow_tier.MustAliasFacts` cached
        under this program's module closure, or ``None`` on a miss (any
        shape surprise degrades to rebuilding the pass)."""
        from ..pointsto.flow_tier import MustAliasFacts

        payload = self.store.get(
            _flow_key(self._closure_pairs, self.config.resolve_function_pointers)
        )
        if isinstance(payload, MustAliasFacts):
            return payload
        return None

    def stage_flow_facts(self, facts) -> None:
        """Stage freshly computed facts for the next commit."""
        if facts is not None and self.store.mode == "rw":
            self.store.put(
                _flow_key(self._closure_pairs, self.config.resolve_function_pointers),
                facts,
            )

    # -- layer x: P2.6 interface summaries ------------------------------------

    def cached_xtaint_summaries(self):
        """module -> :class:`~repro.xtaint.summary.ModuleSummary` cached
        under this program's module closure, rehydrated onto the current
        program, or ``None`` on a miss (shape surprises and stale
        coordinates degrade to rebuilding from the merged flows)."""
        from ..xtaint import ModuleSummary, all_flows

        payload = self.store.get(
            _xsummary_key(self._closure_pairs, self.spec_fp, self.engine_fp)
        )
        if not isinstance(payload, dict) or "summaries" not in payload:
            return None
        summaries = payload["summaries"]
        if not isinstance(summaries, dict) or not all(
            isinstance(s, ModuleSummary) for s in summaries.values()
        ):
            return None
        bundle = _FlowBundle(all_flows(summaries))
        try:
            rehydrate_outcome(bundle, payload.get("coords", {}), self.index)
        except StaleEntry as exc:
            log.warning("cache: stale xtaint summaries (%s); rebuilding", exc)
            self.stale_entries += 1
            return None
        return summaries

    def stage_xtaint_summaries(self, summaries) -> None:
        """Stage freshly built summaries for the next commit."""
        if not summaries or self.store.mode != "rw":
            return
        from ..xtaint import all_flows

        key = _xsummary_key(self._closure_pairs, self.spec_fp, self.engine_fp)
        if self.store.contains(key):
            return
        try:
            coords = outcome_coords(_FlowBundle(all_flows(summaries)), self.index)
        except StaleEntry as exc:  # pragma: no cover - defensive
            log.warning("cache: not storing xtaint summaries (%s)", exc)
            return
        self.store.put(key, {"summaries": summaries, "coords": coords})

    # -- layers b + c: entry partition --------------------------------------

    def plan(self, entry_list: List[Function]) -> IncrementalPlan:
        self._entry_names = [entry.name for entry in entry_list]
        bundled = self._plan_from_bundle(entry_list)
        if bundled is not None:
            return bundled
        plan = IncrementalPlan()
        missing_mask = False
        for entry in entry_list:
            tkey = self.keys.key(entry.name)
            relevant = True
            if self.config.prune:
                mask = self.store.get(
                    _mask_key(entry.name, tkey, self.spec_fp, self.presolve_fp)
                )
                if isinstance(mask, dict) and "relevant" in mask and "armed" in mask:
                    relevant = bool(mask["relevant"])
                    if not relevant:
                        plan.skipped.append(entry.name)
                        continue
                    armed = mask["armed"]
                    plan.armed[entry.name] = (
                        frozenset(armed) if armed is not None else None
                    )
                    try:
                        plan.masks[entry.name] = CoordIndex.resolve_block_coords(
                            entry, mask.get("dead", ())
                        )
                    except StaleEntry:
                        missing_mask = True
                else:
                    missing_mask = True
            outcome = self._load_outcome(entry, tkey)
            if outcome is not None:
                plan.cached[entry.name] = outcome
            else:
                plan.dirty.append(entry)
        plan.needs_relevance = self.config.prune and missing_mask
        self.masks_reused = len(plan.masks) + len(plan.skipped)
        self._last_plan = plan
        return plan

    def _plan_from_bundle(self, entry_list: List[Function]) -> Optional[IncrementalPlan]:
        """The fully-warm fast path: one read covering layers b and c for
        every entry at once.  The bundle key folds every closure key, so
        it only ever hits when *nothing* is dirty — any shape or
        rehydration surprise falls back silently to the granular plan."""
        bundle = self.store.get(
            _plan_bundle_key(
                self._closure_pairs, self._entry_names, self.spec_fp, self.engine_fp
            )
        )
        if not isinstance(bundle, dict):
            return None
        skipped = bundle.get("skipped")
        outcomes = bundle.get("outcomes")
        if not isinstance(skipped, (list, tuple)) or not isinstance(outcomes, dict):
            return None
        skipped_set = set(skipped)
        if (skipped_set | set(outcomes)) != set(self._entry_names) or (
            skipped_set & set(outcomes)
        ):
            return None
        plan = IncrementalPlan(needs_relevance=False)
        for entry in entry_list:
            if entry.name in skipped_set:
                plan.skipped.append(entry.name)
                continue
            outcome = self._rehydrate_payload(entry.name, outcomes[entry.name])
            if outcome is None:
                return None
            plan.cached[entry.name] = outcome
        self._plan_bundled = True
        self.masks_reused = len(plan.skipped) + len(plan.cached)
        self._last_plan = plan
        return plan

    def _load_outcome(self, entry: Function, tkey: str):
        payload = self.store.get(
            _outcome_key(entry.name, tkey, self.spec_fp, self.engine_fp)
        )
        return self._rehydrate_payload(entry.name, payload)

    def _rehydrate_payload(self, name: str, payload):
        if not isinstance(payload, dict) or "outcome" not in payload:
            return None
        outcome = payload["outcome"]
        try:
            rehydrate_outcome(outcome, payload.get("coords", {}), self.index)
        except StaleEntry as exc:
            # The transitive key should make this unreachable; if key
            # derivation ever misses a dependency, degrade to a miss
            # rather than report against the wrong instructions.
            log.warning(
                "cache: stale outcome for entry %s (%s); re-analyzing", name, exc
            )
            self.stale_entries += 1
            return None
        # A skipped entry's phase timing is 0 by definition — the stored
        # wall time belongs to the run that produced it.
        outcome.stats.wall_seconds = 0.0
        outcome.stats.cached = True
        return outcome

    # -- commit (parent process, single writer) ------------------------------

    def commit(
        self,
        collector,
        relevance,
        analyzed: List[Function],
        outcomes: Dict[str, object],
        skipped_names: List[str],
    ) -> int:
        """Stage layers a/b/c for everything this run computed, then
        flush atomically.  ``put`` already skips keys that are staged or
        on disk, so warm runs write nothing."""
        if self.store.mode != "rw":
            return 0
        all_facts: Dict[str, Tuple[bool, bool]] = {
            name: (info.may_return_negative, info.may_return_zero)
            for name, info in collector.functions.items()
            if name in self.keys.fingerprints
        }
        if not self._facts_bundled:
            for name, value in all_facts.items():
                self.store.put(_facts_key(name, self.keys.key(name)), value)
            if set(all_facts) == set(self.keys.fingerprints):
                self.store.put(_facts_bundle_key(self._closure_pairs), all_facts)
        if self.config.prune and relevance is not None:
            from ..presolve import RelevancePreAnalysis

            if isinstance(relevance, RelevancePreAnalysis):
                for entry in analyzed:
                    dead = relevance.dead_blocks(entry)
                    armed = relevance.armed_names(entry)
                    self.store.put(
                        _mask_key(
                            entry.name, self.keys.key(entry.name),
                            self.spec_fp, self.presolve_fp,
                        ),
                        {"relevant": True,
                         "dead": self.index.block_coords(entry, dead),
                         "armed": None if armed is None else sorted(armed)},
                    )
                for name in skipped_names:
                    if name not in self.keys.fingerprints:
                        continue
                    self.store.put(
                        _mask_key(
                            name, self.keys.key(name), self.spec_fp, self.presolve_fp
                        ),
                        {"relevant": False, "dead": [], "armed": []},
                    )
        for entry in analyzed:
            outcome = outcomes.get(entry.name)
            if outcome is None or outcome.stats.cached:
                continue
            key = _outcome_key(
                entry.name, self.keys.key(entry.name), self.spec_fp, self.engine_fp
            )
            if self.store.contains(key):
                continue
            try:
                coords = outcome_coords(outcome, self.index)
            except StaleEntry as exc:  # pragma: no cover - defensive
                log.warning("cache: not storing entry %s (%s)", entry.name, exc)
                continue
            self.store.put(key, {"outcome": outcome, "coords": coords})
        if not self._plan_bundled:
            self._stage_plan_bundle(outcomes, skipped_names)
        return self.store.commit()

    def _stage_plan_bundle(self, outcomes: Dict[str, object],
                           skipped_names: List[str]) -> None:
        """Assemble the plan bundle from this run's fresh outcomes plus
        any granular cache hits, but only when every non-skipped entry is
        covered — a partial bundle would be a wrong answer on the next
        fully-warm read."""
        if not self._entry_names:
            return
        cached = self._last_plan.cached if self._last_plan is not None else {}
        skipped_set = set(skipped_names)
        payload: Dict[str, dict] = {}
        for name in self._entry_names:
            if name in skipped_set:
                continue
            outcome = outcomes.get(name)
            if outcome is None:
                outcome = cached.get(name)
            if outcome is None:
                return
            try:
                payload[name] = {
                    "outcome": outcome,
                    "coords": outcome_coords(outcome, self.index),
                }
            except StaleEntry:  # pragma: no cover - defensive
                return
        self.store.put(
            _plan_bundle_key(
                self._closure_pairs, self._entry_names, self.spec_fp, self.engine_fp
            ),
            {
                "skipped": [n for n in self._entry_names if n in skipped_set],
                "outcomes": payload,
            },
        )


def open_incremental(program: Program, config, checker_spec: Optional[str],
                     store: Optional[CacheStore] = None):
    """The :class:`IncrementalContext` for one analysis, or ``None`` with
    a one-line warning when caching is configured but cannot apply
    (live checker objects, per-entry wall-clock budgets, unopenable
    directory).  Mirrors the parallel fallback contract: degraded modes
    warn, they never crash and never change results.

    ``store`` bypasses directory resolution with a caller-owned store
    (any object speaking the :class:`~.store.CacheStore` surface — the
    resident session's in-memory store rides this); the caller keeps
    ownership and its commit discipline."""
    if store is None and not getattr(config, "cache_dir", None):
        return None
    if checker_spec is None:
        log.warning(
            "incremental cache disabled: custom checker objects cannot be "
            "fingerprinted; pass a checker_spec string"
        )
        return None
    if config.entry_time_limit is not None:
        log.warning(
            "incremental cache disabled: entry_time_limit makes per-entry "
            "results wall-clock-dependent, so they cannot be reused"
        )
        return None
    if store is None:
        store = open_store(config.cache_dir, config.cache_mode)
    if store is None:
        return None
    try:
        return IncrementalContext(store, program, config, checker_spec)
    except Exception as exc:
        log.warning("incremental cache disabled: %s", exc)
        return None


# -- layer 0: frontend module cache ------------------------------------------


def compile_with_cache(sources, store: Optional[CacheStore]) -> Program:
    """Compile ``(filename, source)`` pairs, reusing cached modules for
    unchanged files.  Every uid in the assembled program is renumbered
    from the live process counters afterwards (cached modules carry a
    dead process's uids; fresh ones are renumbered harmlessly).  The
    caller owns the store's commit.

    Each payload also carries the module's function fingerprints so a
    warm :class:`TransitiveKeys` need not re-print unchanged functions.
    They are computed (and pickled) *before* interface marking; marking
    resolves registrations across modules, so per-module objects cannot
    soundly cache it.  The marked few are re-printed after assembly."""
    from ..cfg import mark_interface_functions
    from ..ir.printer import canonical_function_print, canonical_module_environment
    from ..lang import compile_source
    from .fingerprint import module_fingerprints

    program = Program()
    fingerprints: Dict[str, str] = {}
    for filename, source in sources:
        key = _module_key(filename, source) if store is not None else None
        payload = store.get(key) if store is not None else None
        module = payload.get("module") if isinstance(payload, dict) else payload
        fps = payload.get("fingerprints") if isinstance(payload, dict) else None
        if module is None or not hasattr(module, "functions"):
            module = compile_source(source, filename)
            fps = None
        if not isinstance(fps, dict):
            fps = module_fingerprints(module)
        if store is not None:
            store.put(key, {"module": module, "fingerprints": fps})
        program.add_module(module)
        fingerprints.update(fps)
    renumber_program(program)
    mark_interface_functions(program)
    for module in program.modules:
        marked = [func for func in module.functions.values()
                  if func.is_interface and not func.is_declaration]
        if marked:
            env = canonical_module_environment(module)
            for func in marked:
                fingerprints[func.name] = _sha(
                    "fn", env, canonical_function_print(func)
                )
    program._pata_fingerprints = fingerprints
    return program
