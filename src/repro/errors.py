"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed IR: a verifier or builder invariant was violated."""


class LexError(ReproError):
    """Invalid token in mini-C source."""

    def __init__(self, message, filename="<input>", line=0, column=0):
        super().__init__(f"{filename}:{line}:{column}: {message}")
        self.filename = filename
        self.line = line
        self.column = column


class ParseError(ReproError):
    """Syntactically invalid mini-C source."""

    def __init__(self, message, filename="<input>", line=0, column=0):
        super().__init__(f"{filename}:{line}:{column}: {message}")
        self.filename = filename
        self.line = line
        self.column = column


class SemaError(ReproError):
    """Semantically invalid mini-C source (unknown name, bad field, ...)."""

    def __init__(self, message, filename="<input>", line=0):
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


class AnalysisError(ReproError):
    """Internal failure inside an analysis pass."""


class BudgetExceeded(ReproError):
    """An analysis budget (paths, depth, time) was exhausted.

    Raised internally and always caught by the analysis drivers; exposed so
    tests can assert budget behaviour.
    """


class SolverError(ReproError):
    """The SMT-lite solver was given a malformed constraint system."""
