"""Saber-regime baseline: Andersen points-to → value-flow graph →
source-sink leak reachability; memory leaks only (§6).

The memory budget models the paper's observation that Saber "consumes too
much memory when checking [the Linux kernel] and finally aborts" — the
points-to solver raises once its set-entry budget is exceeded, and the
tool reports ``status="oom"``.
"""

from __future__ import annotations

from typing import List, Optional

from ..ir import Program
from ..pointsto import AndersenPointsTo, MemoryBudgetExceeded
from ..typestate import BugKind
from ..vfg import SaberLeakDetector, ValueFlowGraph
from .base import BaselineTool, ToolFinding, _OOMSignal

#: Default points-to budget: comfortably above the IoT-profile corpora
#: (~1-5k set entries at scale 1.0), well below the Linux-profile one
#: (~80k — the shared-pool convergence grows quadratically with module
#: count; see repro.corpus.patterns.filler_pool).
DEFAULT_PTS_BUDGET = 30_000


class SaberLike(BaselineTool):
    """The Saber regime; see the module docstring."""

    name = "saber-like"
    supported_kinds = (BugKind.ML,)

    def __init__(self, max_pts_entries: Optional[int] = DEFAULT_PTS_BUDGET):
        self.max_pts_entries = max_pts_entries

    def _run(self, program: Program) -> List[ToolFinding]:
        try:
            points_to = AndersenPointsTo(program, self.max_pts_entries).solve()
            vfg = ValueFlowGraph(program, points_to)
            detector = SaberLeakDetector(program, vfg)
            leaks = detector.detect()
        except MemoryBudgetExceeded as exc:
            raise _OOMSignal(str(exc))
        return [
            ToolFinding(BugKind.ML, leak.file, leak.line, leak.message, leak.function)
            for leak in leaks
        ]
