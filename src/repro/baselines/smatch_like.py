"""Smatch-regime baseline: intra-procedural, flow-sensitive dataflow with
per-variable states, edge refinement at branches, *joins at merge points*
(path-insensitive), no aliasing, no SMT validation (§6).

The merge-point joins are what separate this from PATA: information from
one branch leaks into the other after the join, producing both false
positives (impossible state combinations) and false negatives (lost
null-on-one-path facts get widened to MAYBE and suppressed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg import predecessors, reverse_postorder
from ..ir import (
    Alloc,
    BinOp,
    Branch,
    Call,
    DeclLocal,
    Free,
    Function,
    Gep,
    Load,
    Malloc,
    MemSet,
    Move,
    PointerType,
    Program,
    Ret,
    Store,
    Var,
    is_null_const,
)
from ..typestate import BugKind
from .base import BaselineTool, ToolFinding

# Null lattice: TOP (unknown) < {NULL, NONNULL} < MAYBE.
_TOP, _NULL, _NONNULL, _MAYBE = "top", "null", "nonnull", "maybe"
# Init lattice: TOP < {UNINIT, INIT} < MAYBE_UNINIT.
_UNINIT, _INIT, _MAYBE_UNINIT = "uninit", "init", "maybe-uninit"


def _join(a: str, b: str, maybe: str) -> str:
    if a == _TOP:
        return b
    if b == _TOP or a == b:
        return a
    return maybe


class SmatchLike(BaselineTool):
    """The Smatch regime; see the module docstring."""

    name = "smatch-like"

    def _run(self, program: Program) -> List[ToolFinding]:
        findings: List[ToolFinding] = []
        for func in program.functions():
            findings.extend(_FunctionAnalysis(func).run())
        return findings


class _FunctionAnalysis:
    def __init__(self, func: Function):
        self.func = func
        self.findings: List[ToolFinding] = []
        self._reported: Set[Tuple[str, int]] = set()
        self._cmp_defs: Dict[str, BinOp] = {}

    def run(self) -> List[ToolFinding]:
        if self.func.is_declaration:
            return []
        order = reverse_postorder(self.func)
        preds = predecessors(self.func)
        branch_facts = self._edge_facts()
        # state per block: (null_states, init_states, live_allocs)
        in_states: Dict[int, Tuple[dict, dict, frozenset]] = {}
        out_states: Dict[int, Tuple[dict, dict, frozenset]] = {}
        for round_no in range(6):
            changed = False
            for block in order:
                null_s: Dict[str, str] = {}
                init_s: Dict[str, str] = {}
                allocs: Optional[Set[str]] = None
                for pred in preds[block]:
                    pstate = out_states.get(pred.uid)
                    if pstate is None:
                        continue
                    pn, pi, pa = pstate
                    pn = dict(pn)
                    fact = branch_facts.get((pred.uid, block.uid))
                    if fact is not None:
                        pn[fact[0]] = fact[1]
                    for name, value in pn.items():
                        null_s[name] = _join(null_s.get(name, _TOP), value, _MAYBE)
                    for name, value in pi.items():
                        init_s[name] = _join(init_s.get(name, _TOP), value, _MAYBE_UNINIT)
                    allocs = set(pa) if allocs is None else (allocs | set(pa))
                state = (null_s, init_s, allocs or set())
                in_states[block.uid] = state
                out = self._transfer(block, state, report=(round_no == 5))
                if out_states.get(block.uid) != out:
                    out_states[block.uid] = out
                    changed = True
            if not changed and round_no >= 1:
                # One extra reporting pass over the fixpoint.
                for block in order:
                    self._transfer(block, in_states[block.uid], report=True)
                return self.findings
        for block in order:
            if block.uid in in_states:
                self._transfer(block, in_states[block.uid], report=True)
        return self.findings

    def _edge_facts(self) -> Dict[Tuple[int, int], Tuple[str, str]]:
        """(pred uid, succ uid) -> (var, refined null state)."""
        facts: Dict[Tuple[int, int], Tuple[str, str]] = {}
        for block in self.func.blocks:
            for inst in block.instructions:
                if isinstance(inst, BinOp) and inst.is_comparison:
                    self._cmp_defs[inst.dst.name] = inst
            term = block.terminator
            if not isinstance(term, Branch) or not isinstance(term.cond, Var):
                continue
            cmp = self._cmp_defs.get(term.cond.name)
            if cmp is None:
                continue
            lhs, rhs, op = cmp.lhs, cmp.rhs, cmp.op
            if isinstance(rhs, Var) and not isinstance(lhs, Var):
                lhs, rhs = rhs, lhs
            if not isinstance(lhs, Var):
                continue
            if not (is_null_const(rhs) or (isinstance(lhs.type, PointerType) and getattr(rhs, "value", None) == 0)):
                continue
            if op == "eq":
                facts[(block.uid, term.then_block.uid)] = (lhs.name, _NULL)
                facts[(block.uid, term.else_block.uid)] = (lhs.name, _NONNULL)
            elif op == "ne":
                facts[(block.uid, term.then_block.uid)] = (lhs.name, _NONNULL)
                facts[(block.uid, term.else_block.uid)] = (lhs.name, _NULL)
        return facts

    def _transfer(self, block, state, report: bool):
        null_s = dict(state[0])
        init_s = dict(state[1])
        allocs = set(state[2])
        for inst in block.instructions:
            if isinstance(inst, Move):
                if is_null_const(inst.src):
                    null_s[inst.dst.name] = _NULL
                elif isinstance(inst.src, Var):
                    null_s[inst.dst.name] = null_s.get(inst.src.name, _TOP)
                    init_s[inst.dst.name] = _INIT
                    self._check_uva(inst, inst.src, init_s, report)
                else:
                    null_s[inst.dst.name] = _NONNULL
                    init_s[inst.dst.name] = _INIT
            elif isinstance(inst, (Load, Store, Gep)):
                ptr = inst.ptr if not isinstance(inst, Gep) else inst.base
                self._check_npd(inst, ptr.name, null_s, report)
                dst = inst.defined_var()
                if dst is not None:
                    null_s[dst.name] = _TOP
                    init_s[dst.name] = _INIT
            elif isinstance(inst, DeclLocal):
                init_s[inst.var.name] = _UNINIT
            elif isinstance(inst, BinOp):
                for operand in (inst.lhs, inst.rhs):
                    if isinstance(operand, Var):
                        self._check_uva(inst, operand, init_s, report)
                init_s[inst.dst.name] = _INIT
            elif isinstance(inst, Malloc):
                allocs.add(inst.dst.name)
                null_s[inst.dst.name] = _MAYBE if inst.may_fail else _NONNULL
                init_s[inst.dst.name] = _INIT
            elif isinstance(inst, Alloc):
                null_s[inst.dst.name] = _NONNULL
            elif isinstance(inst, Free):
                allocs.discard(inst.ptr.name)
            elif isinstance(inst, Call):
                for arg in inst.args:
                    if isinstance(arg, Var):
                        self._check_uva(inst, arg, init_s, report)
                        allocs.discard(arg.name)  # callee may take ownership
                if inst.dst is not None:
                    null_s[inst.dst.name] = _TOP
                    init_s[inst.dst.name] = _INIT
            elif isinstance(inst, (Store, MemSet)):
                pass
        term = block.terminator
        if isinstance(term, Ret) and report:
            returned = term.value.name if isinstance(term.value, Var) else None
            for name in sorted(allocs):
                if name == returned:
                    continue
                if not self._stored_anywhere(name):
                    self._report(
                        BugKind.ML, term,
                        f"'{name.split('.')[-1]}' allocated but not freed before return",
                    )
        if isinstance(term, Ret) and isinstance(term.value, Var) and report:
            self._check_uva(term, term.value, init_s, report)
        return (null_s, init_s, frozenset(allocs))

    def _stored_anywhere(self, name: str) -> bool:
        for block in self.func.blocks:
            for inst in block.instructions:
                if isinstance(inst, Store) and isinstance(inst.src, Var) and inst.src.name == name:
                    return True
                if isinstance(inst, Move) and isinstance(inst.src, Var) and inst.src.name == name and inst.dst.is_global:
                    return True
        return False

    def _check_npd(self, inst, name: str, null_s: Dict[str, str], report: bool) -> None:
        if report and null_s.get(name) == _NULL:
            self._report(BugKind.NPD, inst, f"'{name.split('.')[-1]}' is NULL when dereferenced")
            null_s[name] = _MAYBE

    def _check_uva(self, inst, var: Var, init_s: Dict[str, str], report: bool) -> None:
        if report and init_s.get(var.name) in (_UNINIT, _MAYBE_UNINIT):
            self._report(BugKind.UVA, inst, f"'{var.name.split('.')[-1]}' may be used uninitialized")
            init_s[var.name] = _INIT

    def _report(self, kind: BugKind, inst, message: str) -> None:
        key = (message, inst.loc.line)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            ToolFinding(kind, inst.loc.filename, inst.loc.line, message, self.func.name)
        )
