"""CSA-regime baseline (Clang Static Analyzer): path-sensitive symbolic
exploration with bounded inlining, but — unlike PATA — every defined
function is analyzed as a top-level entry, inlining is shallow, aliasing
is per-variable (the analyzer's region store is approximated by direct
assignment syncing), and there is no SMT path validation (§6).

Consequences reproduced from Table 8: the largest found-bug count of the
baselines, a high false-positive rate (~80% in the paper: infeasible
paths are never discharged), and misses of deep inter-procedural /
alias-dependent bugs.
"""

from __future__ import annotations

from typing import List

from ..core import AnalysisConfig, PathExplorer
from ..ir import Program
from ..typestate import BugKind, default_checkers
from .base import BaselineTool, ToolFinding


class CSALike(BaselineTool):
    """The Clang Static Analyzer regime; see the module docstring."""

    name = "csa-like"

    def __init__(self, max_call_depth: int = 3, max_paths: int = 400):
        self.max_call_depth = max_call_depth
        self.max_paths = max_paths

    def _run(self, program: Program) -> List[ToolFinding]:
        config = AnalysisConfig(
            alias_aware=False,        # region store ≈ per-variable + copy sync
            validate_paths=False,     # no constraint discharge
            max_call_depth=self.max_call_depth,
            max_paths_per_entry=self.max_paths,
            max_steps_per_entry=60_000,
        )
        explorer = PathExplorer(program, config, default_checkers())
        for func in program.functions():
            explorer.explore(func)
        findings: List[ToolFinding] = []
        for bug in explorer.possible_bugs:
            findings.append(
                ToolFinding(
                    bug.kind,
                    bug.sink.loc.filename,
                    bug.sink.loc.line,
                    bug.message,
                    bug.entry_function,
                )
            )
        return findings
