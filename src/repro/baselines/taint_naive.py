"""Grep-regime taint baseline: per-function source/sink co-occurrence,
plus a module-granular cross-module tier.

The naive recipe auditors actually run first: flag any function that both
calls a user-input intrinsic (``copy_from_user`` family, by name) *and*
contains a sensitive sink (variable array index, variable divisor,
variable allocation size or copy length).  Flow-insensitive, path-
insensitive, alias-unaware, no sanitization reasoning — so every
range-checked sibling is a false positive and any flow crossing a
function boundary is missed.

The **cross-module tier** is the same recipe grepped across translation
units: any global *written anywhere* in a source-calling function is
"tainted", and any *other-module* function reading it that contains a
sink is flagged.  No value tracking — a function that calls an intrinsic
but stores only a constant into the global still taints it, which is
exactly the near-miss false positive the P2.6 summaries avoid (the
``cross-module:`` message prefix lets the harness count these FPs
separately).  The measuring stick the alias-aware SMT-discharged
checkers (:mod:`repro.taint`, :mod:`repro.xtaint`) are compared against
in ``make bench-taint`` / ``make bench-xtaint``; deliberately **not**
part of :func:`~repro.baselines.all_baselines` (Table 8's column order
is fixed).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..ir import BinOp, Call, Function, Gep, Malloc, MemSet, Move, Program, Store, Var
from ..presolve.events import TAINT_SOURCE_HINTS
from ..typestate import BugKind
from .base import BaselineTool, ToolFinding

#: message prefix marking cross-module-tier findings, so harnesses can
#: count their false positives separately from the per-function tier's
CROSS_MODULE_PREFIX = "cross-module: "


def _scan(func: Function) -> Tuple[bool, List, Set[str], Set[str]]:
    """(has_source, sinks, globals written, globals read) of one
    function — one linear walk shared by both tiers."""
    has_source = False
    sinks: List[Tuple[object, str]] = []
    writes: Set[str] = set()
    reads: Set[str] = set()
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Call) and any(
                hint in inst.callee for hint in TAINT_SOURCE_HINTS
            ):
                has_source = True
            elif isinstance(inst, Gep) and isinstance(inst.index, Var):
                sinks.append((inst, inst.index.display_name()))
            elif (
                isinstance(inst, BinOp)
                and inst.op in ("div", "mod")
                and isinstance(inst.rhs, Var)
            ):
                sinks.append((inst, inst.rhs.display_name()))
            elif isinstance(inst, Malloc) and isinstance(inst.size, Var):
                sinks.append((inst, inst.size.display_name()))
            elif isinstance(inst, MemSet) and isinstance(inst.size, Var):
                sinks.append((inst, inst.size.display_name()))
            if isinstance(inst, Move):
                if inst.dst.is_global:
                    writes.add(inst.dst.name)
                if isinstance(inst.src, Var) and inst.src.is_global:
                    reads.add(inst.src.name)
            elif isinstance(inst, Store) and isinstance(inst.ptr, Var) and inst.ptr.is_global:
                writes.add(inst.ptr.name)
    return has_source, sinks, writes, reads


class TaintNaive(BaselineTool):
    """The grep regime; see the module docstring."""

    name = "taint-naive"
    supported_kinds = (BugKind.TAINT,)

    def _run(self, program: Program) -> List[ToolFinding]:
        findings: List[ToolFinding] = []
        scanned = []  # (module name, func, scan tuple)
        #: global name -> modules where a source-calling function writes it
        tainted_globals: Dict[str, Set[str]] = {}
        for module in program.modules:
            for func in module.defined_functions():
                scan = _scan(func)
                scanned.append((module.name, func, scan))
                has_source, _, writes, _ = scan
                if has_source:
                    for name in writes:
                        tainted_globals.setdefault(name, set()).add(module.name)

        seen: Set[Tuple[str, int]] = set()

        def emit(inst, func: Function, message: str) -> None:
            key = (inst.loc.filename, inst.loc.line)
            if key in seen:
                return
            seen.add(key)
            findings.append(
                ToolFinding(
                    kind=BugKind.TAINT,
                    file=inst.loc.filename,
                    line=inst.loc.line,
                    message=message,
                    function=func.name,
                )
            )

        # Tier 1: per-function co-occurrence (the historical recipe).
        for _, func, (has_source, sinks, _, _) in scanned:
            if not has_source:
                continue
            for inst, subject in sinks:
                emit(inst, func, f"user input may reach sink '{subject}'")
        # Tier 2: cross-module — a sink-containing function reading a
        # global some *other* module's source-calling function writes.
        for module_name, func, (_, sinks, _, reads) in scanned:
            if not sinks:
                continue
            hot = [
                name for name in sorted(reads)
                if any(w != module_name for w in tainted_globals.get(name, ()))
            ]
            if not hot:
                continue
            via = ", ".join(hot)
            for inst, subject in sinks:
                emit(inst, func,
                     f"{CROSS_MODULE_PREFIX}user input may reach sink "
                     f"'{subject}' via global(s) {via}")
        return findings
