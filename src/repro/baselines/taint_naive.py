"""Grep-regime taint baseline: per-function source/sink co-occurrence.

The naive recipe auditors actually run first: flag any function that both
calls a user-input intrinsic (``copy_from_user`` family, by name) *and*
contains a sensitive sink (variable array index, variable divisor,
variable allocation size or copy length).  Flow-insensitive, path-
insensitive, alias-unaware, no sanitization reasoning — so every
range-checked sibling is a false positive and any flow crossing a
function boundary is missed.  The measuring stick the alias-aware
SMT-discharged checker (:mod:`repro.taint`) is compared against in
``make bench-taint``; deliberately **not** part of
:func:`~repro.baselines.all_baselines` (Table 8's column order is fixed).
"""

from __future__ import annotations

from typing import List

from ..ir import BinOp, Call, Gep, Malloc, MemSet, Program, Var
from ..presolve.events import TAINT_SOURCE_HINTS
from ..typestate import BugKind
from .base import BaselineTool, ToolFinding


class TaintNaive(BaselineTool):
    """The grep regime; see the module docstring."""

    name = "taint-naive"
    supported_kinds = (BugKind.TAINT,)

    def _run(self, program: Program) -> List[ToolFinding]:
        findings: List[ToolFinding] = []
        for func in program.functions():
            if func.is_declaration:
                continue
            has_source = False
            sinks = []  # (inst, subject)
            for block in func.blocks:
                for inst in block.instructions:
                    if isinstance(inst, Call) and any(
                        hint in inst.callee for hint in TAINT_SOURCE_HINTS
                    ):
                        has_source = True
                    elif isinstance(inst, Gep) and isinstance(inst.index, Var):
                        sinks.append((inst, inst.index.display_name()))
                    elif (
                        isinstance(inst, BinOp)
                        and inst.op in ("div", "mod")
                        and isinstance(inst.rhs, Var)
                    ):
                        sinks.append((inst, inst.rhs.display_name()))
                    elif isinstance(inst, Malloc) and isinstance(inst.size, Var):
                        sinks.append((inst, inst.size.display_name()))
                    elif isinstance(inst, MemSet) and isinstance(inst.size, Var):
                        sinks.append((inst, inst.size.display_name()))
            if not has_source:
                continue
            seen = set()
            for inst, subject in sinks:
                key = (inst.loc.filename, inst.loc.line)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    ToolFinding(
                        kind=BugKind.TAINT,
                        file=inst.loc.filename,
                        line=inst.loc.line,
                        message=f"user input may reach sink '{subject}'",
                        function=func.name,
                    )
                )
        return findings
