"""Re-implementations of the seven compared tools' analysis regimes (§6)
plus the PATA-NA ablation (§5.4)."""

from .base import BaselineTool, ToolFinding, ToolResult
from .cppcheck_like import CppcheckLike
from .coccinelle_like import CoccinelleLike
from .smatch_like import SmatchLike
from .csa_like import CSALike
from .infer_like import InferLike
from .saber_like import DEFAULT_PTS_BUDGET, SaberLike
from .svf_null import SVFNull
from .pata_na import PataNA
from .taint_naive import TaintNaive
from .eraser_like import EraserLike

__all__ = [
    "BaselineTool", "ToolFinding", "ToolResult",
    "CppcheckLike", "CoccinelleLike", "SmatchLike", "CSALike", "InferLike",
    "SaberLike", "SVFNull", "PataNA", "TaintNaive", "EraserLike",
    "DEFAULT_PTS_BUDGET",
]


def all_baselines():
    """The seven compared tools in Table 8's column order.  ``TaintNaive``
    and ``EraserLike`` are deliberately excluded: they benchmark the
    taint and race checkers (``make bench-taint`` / ``make bench-race``),
    not the paper's comparison."""
    return [
        CppcheckLike(),
        CoccinelleLike(),
        SmatchLike(),
        CSALike(),
        InferLike(),
        SaberLike(),
        SVFNull(),
    ]
