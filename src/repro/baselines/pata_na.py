"""PATA-NA — the non-alias ablation of Table 6 (§5.4).

The full PATA pipeline with alias relationships disabled: typestates are
kept per variable (synchronized only across direct assignments, Fig. 8a)
and path validation maps each variable version to its own SMT symbol
(Fig. 9b).  The paper reports PATA-NA finds a subset of PATA's real bugs
with a much higher false-positive rate — alias-implied facts are
invisible both to the checkers and to the feasibility filter.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import AnalysisConfig, AnalysisResult, PATA
from ..ir import Program
from .base import BaselineTool, ToolFinding


class PataNA(BaselineTool):
    """The PATA-NA ablation as a baseline tool; see the module docstring."""

    name = "pata-na"

    def __init__(self, config: Optional[AnalysisConfig] = None):
        base = config or AnalysisConfig()
        self.config = base.for_pata_na()
        self.last_result: Optional[AnalysisResult] = None

    def _run(self, program: Program) -> List[ToolFinding]:
        result = PATA(config=self.config).analyze(program)
        self.last_result = result
        return [
            ToolFinding(r.kind, r.sink_file, r.sink_line, r.message, r.entry_function)
            for r in result.reports
        ]
