"""Lockset-only race baseline (the Eraser regime).

The classic dynamic-race recipe transplanted to static per-function
scanning: walk every function straight-line, maintain a *syntactic*
lockset (textual lock expressions), record each access to a global-
rooted location with the lockset held, and report any cross-function
pair on the same location where at least one side writes and the
locksets share no lock.  No path sensitivity and no feasibility
reasoning — accesses serialized by a mode flag (the
``race_bait_flag_guarded`` corpus pattern) are reported anyway, which is
exactly what PATA's stage-2 pair validation discharges.  The measuring
stick for ``make bench-race``; deliberately **not** part of
:func:`~repro.baselines.all_baselines` (Table 8's column order is
fixed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir import AddrOf, Gep, Instruction, Load, LockOp, MemSet, Move, Program, Store, Var
from ..typestate import BugKind
from .base import BaselineTool, ToolFinding

#: (key, is_write, inst, function, lockset)
_Access = Tuple[str, bool, Instruction, str, frozenset]


class EraserLike(BaselineTool):
    """The lockset-only regime; see the module docstring."""

    name = "eraser-like"
    supported_kinds = (BugKind.RACE,)

    def _run(self, program: Program) -> List[ToolFinding]:
        accesses: List[_Access] = []
        for func in program.functions():
            if func.is_declaration:
                continue
            accesses.extend(self._scan_function(func))
        return self._match(accesses)

    # -- per-function scan ---------------------------------------------

    def _scan_function(self, func) -> List[_Access]:
        # env maps a pointer variable to the textual path of its pointee
        # ("*@g_box", "*@g_rc.count"); None = points at nothing shared.
        env: Dict[str, Optional[str]] = {}
        lockset: set = set()
        out: List[_Access] = []

        def record(key: Optional[str], is_write: bool, inst: Instruction) -> None:
            if key and "@" in key:
                out.append((key, is_write, inst, func.name, frozenset(lockset)))

        def pointee(var: Var) -> Optional[str]:
            known = env.get(var.name)
            if known:
                return known
            if var.is_global and var.is_aggregate:
                return f"*{var.name}"  # the global IS the object's address
            return None

        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, LockOp):
                    key = env.get(inst.lock.name) or inst.lock.name
                    if inst.acquire:
                        lockset.add(key)
                    else:
                        lockset.discard(key)
                elif isinstance(inst, AddrOf):
                    env[inst.dst.name] = inst.var.name if inst.var.is_global else None
                elif isinstance(inst, Gep):
                    base = pointee(inst.base)
                    env[inst.dst.name] = f"{base}.{inst.field}" if base else None
                elif isinstance(inst, Load):
                    addr = pointee(inst.ptr)
                    record(addr, False, inst)
                    env[inst.dst.name] = f"*{addr}" if addr else None
                elif isinstance(inst, Store):
                    record(pointee(inst.ptr), True, inst)
                elif isinstance(inst, MemSet):
                    record(pointee(inst.ptr), True, inst)
                elif isinstance(inst, Move):
                    src = inst.src
                    if isinstance(src, Var):
                        if src.is_global and not src.is_aggregate:
                            record(src.name, False, inst)
                            env[inst.dst.name] = f"*{src.name}"
                        else:
                            env[inst.dst.name] = env.get(src.name) or pointee(src)
                    if inst.dst.is_global and not inst.dst.is_aggregate:
                        record(inst.dst.name, True, inst)
                else:
                    # Scalar globals read as plain operands (guards,
                    # arithmetic, call arguments).
                    for op in inst.operands():
                        if isinstance(op, Var) and op.is_global and not op.is_aggregate:
                            record(op.name, False, inst)
            term = block.terminator
            if term is not None:
                # Ret values and branch conditions read globals too.
                for op in (getattr(term, "value", None), getattr(term, "cond", None)):
                    if isinstance(op, Var) and op.is_global and not op.is_aggregate:
                        record(op.name, False, term)
        return out

    # -- cross-function lockset matching -------------------------------

    def _match(self, accesses: List[_Access]) -> List[ToolFinding]:
        by_key: Dict[str, List[_Access]] = {}
        for acc in accesses:
            by_key.setdefault(acc[0], []).append(acc)
        findings: List[ToolFinding] = []
        seen: set = set()
        for key in sorted(by_key):
            group = sorted(by_key[key], key=lambda a: a[2].uid)
            for i, a in enumerate(group):
                for b in group[i + 1:]:
                    if a[3] == b[3]:
                        continue  # same function: one thread
                    if not (a[1] or b[1]):
                        continue  # read/read
                    if not a[4].isdisjoint(b[4]):
                        continue  # a common lock protects the pair
                    site = b[2]  # the later access, like PATA's sink
                    loc_key = (site.loc.filename, site.loc.line)
                    if loc_key in seen:
                        continue
                    seen.add(loc_key)
                    findings.append(
                        ToolFinding(
                            kind=BugKind.RACE,
                            file=site.loc.filename,
                            line=site.loc.line,
                            message=(
                                f"possible data race on '{key}' "
                                f"({a[3]} vs {b[3]}, no common lock)"
                            ),
                            function=b[3],
                        )
                    )
        return findings
