"""Infer-regime baseline: inter-procedural function *summaries* computed
bottom-up over the call graph, then a per-function, path-insensitive
consumption pass (biabduction approximated by may-facts) (§6).

Summaries per function:

* ``may_return_null`` — some path returns NULL or an unchecked fallible
  allocation;
* ``derefs_param[i]`` — parameter ``i`` is dereferenced without a
  dominating null check (a precondition, in biabduction terms);
* ``frees_param[i]`` / ``returns_fresh_alloc`` — ownership facts for the
  leak checker.

Reproduced weaknesses (per the paper): no path conditions on callee
return values — a caller that null-checks via a separate flag still gets
a report; aliasing only through direct copies; error-path leaks that
free on *some* path are missed (path-insensitive ownership).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..cfg import CallGraph, dominators
from ..ir import (
    BinOp,
    Branch,
    Call,
    DeclLocal,
    Free,
    Function,
    Gep,
    Load,
    Malloc,
    Move,
    PointerType,
    Program,
    Ret,
    Store,
    Var,
    is_null_const,
)
from ..typestate import BugKind
from .base import BaselineTool, ToolFinding
from .cppcheck_like import blocks_reachable_from, deref_sites, null_tests


@dataclass
class _Summary:
    may_return_null: bool = False
    returns_fresh_alloc: bool = False
    derefs_params: Set[int] = field(default_factory=set)
    frees_params: Set[int] = field(default_factory=set)


class InferLike(BaselineTool):
    """The Infer regime; see the module docstring."""

    name = "infer-like"

    def _run(self, program: Program) -> List[ToolFinding]:
        summaries = self._compute_summaries(program)
        findings: List[ToolFinding] = []
        for func in program.functions():
            findings.extend(_consume(func, program, summaries))
        return findings

    def _compute_summaries(self, program: Program) -> Dict[str, _Summary]:
        summaries: Dict[str, _Summary] = {}
        for _ in range(3):  # bottom-up fixpoint, bounded
            changed = False
            for func in program.functions():
                summary = _summarize(func, summaries)
                if summaries.get(func.name) != summary:
                    summaries[func.name] = summary
                    changed = True
            if not changed:
                break
        return summaries


def _summarize(func: Function, summaries: Dict[str, _Summary]) -> _Summary:
    summary = _Summary()
    param_names = {p.name: i for i, p in enumerate(func.params)}
    null_checked: Set[str] = {name for name, _, _ in null_tests(func)}
    fallible: Set[str] = set()
    fresh: Set[str] = set()
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Malloc):
                if inst.may_fail:
                    fallible.add(inst.dst.name)
                fresh.add(inst.dst.name)
            elif isinstance(inst, Move) and isinstance(inst.src, Var):
                if inst.src.name in fallible:
                    fallible.add(inst.dst.name)
                if inst.src.name in fresh:
                    fresh.add(inst.dst.name)
            elif isinstance(inst, (Load, Store, Gep)):
                ptr = inst.base if isinstance(inst, Gep) else inst.ptr
                index = param_names.get(ptr.name)
                if index is not None and ptr.name not in null_checked:
                    summary.derefs_params.add(index)
            elif isinstance(inst, Free):
                index = param_names.get(inst.ptr.name)
                if index is not None:
                    summary.frees_params.add(index)
            elif isinstance(inst, Call):
                callee = summaries.get(inst.callee)
                if callee is not None and inst.dst is not None:
                    if callee.may_return_null:
                        fallible.add(inst.dst.name)
                    if callee.returns_fresh_alloc:
                        fresh.add(inst.dst.name)
        term = block.terminator
        if isinstance(term, Ret) and term.value is not None:
            if is_null_const(term.value):
                summary.may_return_null = True
            elif isinstance(term.value, Var):
                if term.value.name in fallible:
                    summary.may_return_null = True
                if term.value.name in fresh:
                    summary.returns_fresh_alloc = True
    return summary


def _consume(func: Function, program: Program, summaries: Dict[str, _Summary]) -> List[ToolFinding]:
    findings: List[ToolFinding] = []
    reported: Set = set()

    def report(kind: BugKind, inst, message: str) -> None:
        key = (kind, inst.uid)
        if key in reported:
            return
        reported.add(key)
        findings.append(ToolFinding(kind, inst.loc.filename, inst.loc.line, message, func.name))

    maybe_null: Dict[str, object] = {}
    checked: Set[str] = set()
    # Null-branch dereferences: biabduction derives "p != NULL" as the
    # precondition of a deref; a deref exclusively inside p's NULL arm
    # violates it outright.
    for ptr_name, null_block, nonnull_block in null_tests(func):
        null_region = blocks_reachable_from(null_block)
        nonnull_region = blocks_reachable_from(nonnull_block)
        exclusive = null_region - nonnull_region
        for deref_name, inst, block in deref_sites(func):
            if deref_name == ptr_name and block.uid in exclusive:
                report(
                    BugKind.NPD, inst,
                    f"'{ptr_name.split('.')[-1]}' is NULL on this branch and dereferenced",
                )
    allocations: Dict[str, object] = {}
    freed: Set[str] = set()
    escaped: Set[str] = set()
    uninit: Set[str] = set()
    for name, _, _ in null_tests(func):
        checked.add(name)
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Call):
                summary = summaries.get(inst.callee)
                if inst.dst is not None and summary is not None and summary.may_return_null:
                    maybe_null[inst.dst.name] = inst
                if inst.dst is not None and summary is not None and summary.returns_fresh_alloc:
                    allocations[inst.dst.name] = inst
                if summary is not None:
                    for i, arg in enumerate(inst.args):
                        if not isinstance(arg, Var):
                            continue
                        if i in summary.derefs_params and arg.name in maybe_null and arg.name not in checked:
                            report(
                                BugKind.NPD, inst,
                                f"'{arg.name.split('.')[-1]}' may be NULL and callee "
                                f"'{inst.callee}' dereferences it",
                            )
                        if i in summary.frees_params:
                            freed.add(arg.name)
                for arg in inst.args:
                    if isinstance(arg, Var):
                        escaped.add(arg.name)
                        if arg.name in uninit:
                            report(BugKind.UVA, inst, f"'{arg.name.split('.')[-1]}' used uninitialized")
                            uninit.discard(arg.name)
            elif isinstance(inst, Malloc):
                if inst.may_fail:
                    maybe_null[inst.dst.name] = inst
                allocations[inst.dst.name] = inst
            elif isinstance(inst, Move):
                if isinstance(inst.src, Var):
                    if inst.src.name in maybe_null:
                        maybe_null[inst.dst.name] = maybe_null[inst.src.name]
                    if inst.src.name in allocations:
                        if inst.dst.is_global:
                            escaped.add(inst.src.name)
                        else:
                            # Direct copies transfer ownership to the new name.
                            allocations[inst.dst.name] = allocations.pop(inst.src.name)
                    if inst.src.name in uninit:
                        report(BugKind.UVA, inst, f"'{inst.src.name.split('.')[-1]}' used uninitialized")
                        uninit.discard(inst.src.name)
                uninit.discard(inst.dst.name)
            elif isinstance(inst, DeclLocal):
                uninit.add(inst.var.name)
            elif isinstance(inst, (Load, Store, Gep)):
                ptr = inst.base if isinstance(inst, Gep) else inst.ptr
                if ptr.name in maybe_null and ptr.name not in checked:
                    report(
                        BugKind.NPD, inst,
                        f"'{ptr.name.split('.')[-1]}' from a fallible call is dereferenced unchecked",
                    )
                    checked.add(ptr.name)
                if isinstance(inst, Store) and isinstance(inst.src, Var):
                    escaped.add(inst.src.name)
            elif isinstance(inst, BinOp):
                for operand in (inst.lhs, inst.rhs):
                    if isinstance(operand, Var) and operand.name in uninit:
                        report(BugKind.UVA, inst, f"'{operand.name.split('.')[-1]}' used uninitialized")
                        uninit.discard(operand.name)
                uninit.discard(inst.dst.name)
        term = block.terminator
        if isinstance(term, Ret) and isinstance(term.value, Var):
            escaped.add(term.value.name)
    # Path-insensitive ownership: only never-freed, never-escaping
    # allocations are leaks (error-path leaks are missed — §6(2)).
    for name, inst in allocations.items():
        if name not in freed and name not in escaped:
            report(BugKind.ML, inst, f"'{name.split('.')[-1]}' is never freed")
    return findings
