"""Coccinelle-regime baseline: purely syntactic semantic-patch matching,
NPD patterns only (§6 — "we just use its existing semantic patches to
detect null-pointer dereferences").

The patch reproduced here is the classic ``if (!p) { ... *p ... }``
pattern: a dereference *exclusively inside* the null-taken region of a
test.  Very low false-positive rate, very low recall — no dataflow, no
inter-procedural reasoning, no reassignment awareness beyond the region
exclusivity test.
"""

from __future__ import annotations

from typing import List, Set

from ..ir import Function, Program
from ..typestate import BugKind
from .base import BaselineTool, ToolFinding
from .cppcheck_like import blocks_reachable_from, deref_sites, null_tests


class CoccinelleLike(BaselineTool):
    """The Coccinelle regime; see the module docstring."""

    name = "coccinelle-like"
    supported_kinds = (BugKind.NPD,)

    def _run(self, program: Program) -> List[ToolFinding]:
        findings: List[ToolFinding] = []
        for func in program.functions():
            findings.extend(self._match_function(func))
        return findings

    def _match_function(self, func: Function) -> List[ToolFinding]:
        findings = []
        seen: Set[int] = set()
        for ptr_name, null_block, nonnull_block in null_tests(func):
            null_region = blocks_reachable_from(null_block)
            nonnull_region = blocks_reachable_from(nonnull_block)
            exclusive = null_region - nonnull_region
            for deref_name, inst, block in deref_sites(func):
                if deref_name != ptr_name or block.uid not in exclusive:
                    continue
                if inst.uid in seen:
                    continue
                seen.add(inst.uid)
                findings.append(
                    ToolFinding(
                        BugKind.NPD,
                        inst.loc.filename,
                        inst.loc.line,
                        f"'{ptr_name}' dereferenced inside its NULL branch",
                        func.name,
                    )
                )
        return findings
