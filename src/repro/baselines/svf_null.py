"""SVF-Null baseline: the paper replaces PATA's path-based alias analysis
with SVF's flow-sensitive points-to analysis and detects null-pointer
dereferences with it (§6).

Implementation: a per-function flow-sensitive null-state dataflow (like
the Smatch regime) whose state is *shared across may-aliases according to
flow-sensitive points-to sets*.  The two characteristic failure modes of
Table 8 fall out:

* interface-function parameters have empty points-to sets, so the
  aliases that matter for the Fig. 1/Fig. 3 bugs are invisible (misses);
* may-alias is coarse — any two pointers sharing one object share null
  states, merging states of pointers that differ on the analyzed path
  (false positives).

Shares the points-to memory budget (OOM on the Linux-profile corpus).

Since P1.8 the flow-sensitive pass itself lives in the engine
(:class:`repro.pointsto.flow_sensitive.FlowSensitivePointsTo`) and this
baseline consumes it in its default *legacy* mode — ``strong_updates``
off — which is byte-for-byte the dataflow this module used to own.  The
engine's strong-update mode is opt-in and never taken here, so baseline
findings are pinned regardless of ``--alias-tier``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..cfg import predecessors, reverse_postorder
from ..ir import (
    Alloc,
    BinOp,
    Branch,
    Call,
    Function,
    Gep,
    Load,
    Malloc,
    Move,
    PointerType,
    Program,
    Store,
    Var,
    is_null_const,
)
from ..pointsto import AndersenPointsTo, FlowSensitivePointsTo, MemoryBudgetExceeded
from ..typestate import BugKind
from .base import BaselineTool, ToolFinding, _OOMSignal
from .saber_like import DEFAULT_PTS_BUDGET
from .smatch_like import _MAYBE, _NONNULL, _NULL, _TOP, _join


class SVFNull(BaselineTool):
    """The SVF-Null regime; see the module docstring."""

    name = "svf-null"
    supported_kinds = (BugKind.NPD,)

    def __init__(self, max_pts_entries: Optional[int] = DEFAULT_PTS_BUDGET):
        self.max_pts_entries = max_pts_entries

    def _run(self, program: Program) -> List[ToolFinding]:
        try:
            base = AndersenPointsTo(program, self.max_pts_entries).solve()
            fspta = FlowSensitivePointsTo(base)
        except MemoryBudgetExceeded as exc:
            raise _OOMSignal(str(exc))
        findings: List[ToolFinding] = []
        for func in program.functions():
            findings.extend(self._check_function(func, base, fspta))
        return findings

    def _check_function(
        self, func: Function, base: AndersenPointsTo, fspta: FlowSensitivePointsTo
    ) -> List[ToolFinding]:
        if func.is_declaration:
            return []
        findings: List[ToolFinding] = []
        reported: Set[int] = set()
        order = reverse_postorder(func)
        preds = predecessors(func)
        cmp_defs: Dict[str, BinOp] = {}
        edge_facts: Dict[Tuple[int, int], Tuple[str, str]] = {}
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, BinOp) and inst.is_comparison:
                    cmp_defs[inst.dst.name] = inst
            term = block.terminator
            if isinstance(term, Branch) and isinstance(term.cond, Var):
                cmp = cmp_defs.get(term.cond.name)
                if cmp is None:
                    continue
                lhs, rhs = cmp.lhs, cmp.rhs
                if isinstance(rhs, Var) and not isinstance(lhs, Var):
                    lhs, rhs = rhs, lhs
                if isinstance(lhs, Var) and (
                    is_null_const(rhs)
                    or (isinstance(lhs.type, PointerType) and getattr(rhs, "value", None) == 0)
                ):
                    if cmp.op == "eq":
                        edge_facts[(block.uid, term.then_block.uid)] = (lhs.name, _NULL)
                        edge_facts[(block.uid, term.else_block.uid)] = (lhs.name, _NONNULL)
                    elif cmp.op == "ne":
                        edge_facts[(block.uid, term.then_block.uid)] = (lhs.name, _NONNULL)
                        edge_facts[(block.uid, term.else_block.uid)] = (lhs.name, _NULL)

        out_states: Dict[int, Dict[str, str]] = {}
        for round_no in range(6):
            changed = False
            for block in order:
                state: Dict[str, str] = {}
                for pred in preds[block]:
                    pstate = dict(out_states.get(pred.uid, {}))
                    fact = edge_facts.get((pred.uid, block.uid))
                    if fact is not None:
                        pstate[fact[0]] = fact[1]
                        # Share the refinement with may-aliases: this is the
                        # points-to-based alias sync — and the coarse-merge
                        # false-positive source.
                        for other, other_state in list(pstate.items()):
                            if other != fact[0] and fspta.may_alias_at(func, pred.uid, other, fact[0]):
                                pstate[other] = fact[1]
                    for name, value in pstate.items():
                        state[name] = _join(state.get(name, _TOP), value, _MAYBE)
                report = round_no == 5
                out = self._transfer(func, block, state, fspta, findings, reported, report)
                if out_states.get(block.uid) != out:
                    out_states[block.uid] = out
                    changed = True
            if not changed and round_no >= 1:
                for block in order:
                    in_state: Dict[str, str] = {}
                    for pred in preds[block]:
                        pstate = dict(out_states.get(pred.uid, {}))
                        fact = edge_facts.get((pred.uid, block.uid))
                        if fact is not None:
                            pstate[fact[0]] = fact[1]
                        for name, value in pstate.items():
                            in_state[name] = _join(in_state.get(name, _TOP), value, _MAYBE)
                    self._transfer(func, block, in_state, fspta, findings, reported, True)
                break
        return findings

    def _transfer(self, func, block, state, fspta, findings, reported, report) -> Dict[str, str]:
        state = dict(state)
        for inst in block.instructions:
            if isinstance(inst, Move):
                if is_null_const(inst.src):
                    state[inst.dst.name] = _NULL
                elif isinstance(inst.src, Var):
                    state[inst.dst.name] = state.get(inst.src.name, _TOP)
                else:
                    state[inst.dst.name] = _NONNULL
            elif isinstance(inst, (Load, Gep, Store)):
                ptr = inst.base if isinstance(inst, Gep) else inst.ptr
                if report and state.get(ptr.name) == _NULL and inst.uid not in reported:
                    reported.add(inst.uid)
                    findings.append(
                        ToolFinding(
                            BugKind.NPD,
                            inst.loc.filename,
                            inst.loc.line,
                            f"'{ptr.name.split('.')[-1]}' may be NULL (points-to aliasing)",
                            func.name,
                        )
                    )
                    state[ptr.name] = _MAYBE
                dst = inst.defined_var()
                if dst is not None:
                    state[dst.name] = _TOP
            elif isinstance(inst, Malloc):
                state[inst.dst.name] = _MAYBE if inst.may_fail else _NONNULL
            elif isinstance(inst, Alloc):
                state[inst.dst.name] = _NONNULL
            elif isinstance(inst, Call) and inst.dst is not None:
                state[inst.dst.name] = _TOP
        return state
