"""Common surface of the compared static tools (§6).

Each baseline reproduces the *analysis regime* of one published tool —
path sensitivity, aliasing approach, inter-procedurality — over the same
IR substrate as PATA, so Table 8's comparison is apples-to-apples on our
corpora.  A baseline returns :class:`ToolResult`; the ``status`` field
can be ``"oom"`` (Saber/SVF on the Linux-profile corpus) or
``"compile_error"`` (tools whose build integration fails on some OS, as
the paper reports for Smatch/CSA/Infer).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..ir import Program
from ..typestate import BugKind


@dataclass
class ToolFinding:
    kind: BugKind
    file: str
    line: int
    message: str
    function: str = ""

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass
class ToolResult:
    tool: str
    findings: List[ToolFinding] = field(default_factory=list)
    time_seconds: float = 0.0
    status: str = "ok"  # "ok" | "oom" | "compile_error" | "unsupported"

    def by_kind(self, kind: BugKind) -> List[ToolFinding]:
        return [f for f in self.findings if f.kind is kind]


class BaselineTool:
    """Base class: implement :meth:`_run`; timing and status handling are
    shared."""

    name = "tool"
    #: bug kinds this tool can detect at all
    supported_kinds = (BugKind.NPD, BugKind.UVA, BugKind.ML)

    def analyze(self, program: Program) -> ToolResult:
        started = time.monotonic()
        result = ToolResult(tool=self.name)
        try:
            result.findings = self._run(program)
        except MemoryError:
            result.status = "oom"
        except _OOMSignal:
            result.status = "oom"
        result.time_seconds = time.monotonic() - started
        return result

    def _run(self, program: Program) -> List[ToolFinding]:  # pragma: no cover
        raise NotImplementedError


class _OOMSignal(Exception):
    """Raised internally when a tool's memory budget model trips."""
