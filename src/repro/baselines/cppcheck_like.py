"""Cppcheck-regime baseline: intra-procedural, path-insensitive pattern
checks, no aliasing, no path validation (§6).

Like the real tool it "checks source files without code compilation" —
the evaluation harness therefore hands it *every* corpus file, including
ones excluded from PATA's compilation configuration; that is how Cppcheck
finds the handful of bugs PATA misses in Table 8 while missing all the
inter-procedural and alias-dependent ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..cfg import reachable_blocks
from ..ir import (
    Alloc,
    BinOp,
    Branch,
    Call,
    DeclLocal,
    Free,
    Function,
    Gep,
    Load,
    Malloc,
    Move,
    PointerType,
    Program,
    Ret,
    Store,
    Var,
    is_null_const,
)
from ..typestate import BugKind
from .base import BaselineTool, ToolFinding


def null_tests(func: Function) -> List[Tuple[str, object, object]]:
    """(pointer name, null-arm block, nonnull-arm block) triples."""
    cmp_defs: Dict[str, BinOp] = {}
    tests = []
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, BinOp) and inst.is_comparison:
                cmp_defs[inst.dst.name] = inst
        term = block.terminator
        if isinstance(term, Branch) and isinstance(term.cond, Var):
            cmp = cmp_defs.get(term.cond.name)
            if cmp is None:
                continue
            lhs, rhs, op = cmp.lhs, cmp.rhs, cmp.op
            if isinstance(rhs, Var) and not isinstance(lhs, Var):
                lhs, rhs = rhs, lhs
            if not isinstance(lhs, Var):
                continue
            is_null_cmp = is_null_const(rhs) or (
                isinstance(lhs.type, PointerType) and getattr(rhs, "value", None) == 0
            )
            if not is_null_cmp:
                continue
            if op == "eq":
                tests.append((lhs.name, term.then_block, term.else_block))
            elif op == "ne":
                tests.append((lhs.name, term.else_block, term.then_block))
    return tests


def deref_sites(func: Function) -> List[Tuple[str, object, object]]:
    """(pointer name, instruction, block) for every dereference."""
    sites = []
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Load):
                sites.append((inst.ptr.name, inst, block))
            elif isinstance(inst, Store):
                sites.append((inst.ptr.name, inst, block))
            elif isinstance(inst, Gep):
                sites.append((inst.base.name, inst, block))
    return sites


def blocks_reachable_from(start) -> Set[int]:
    """Blocks reachable from ``start`` (inclusive), by uid."""
    seen = {start.uid}
    work = [start]
    while work:
        block = work.pop()
        for succ in block.successors():
            if succ.uid not in seen:
                seen.add(succ.uid)
                work.append(succ)
    return seen


class CppcheckLike(BaselineTool):
    """The Cppcheck regime; see the module docstring."""

    name = "cppcheck-like"

    def _run(self, program: Program) -> List[ToolFinding]:
        findings: List[ToolFinding] = []
        for func in program.functions():
            findings.extend(self._check_npd(func))
            findings.extend(self._check_uva(func))
            findings.extend(self._check_ml(func))
        return findings

    def _check_npd(self, func: Function) -> List[ToolFinding]:
        findings = []
        seen: Set[Tuple[str, int]] = set()
        for ptr_name, null_block, _ in null_tests(func):
            region = blocks_reachable_from(null_block)
            for deref_name, inst, block in deref_sites(func):
                if deref_name != ptr_name or block.uid not in region:
                    continue
                key = (ptr_name, inst.uid)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    ToolFinding(
                        BugKind.NPD,
                        inst.loc.filename,
                        inst.loc.line,
                        f"possible null dereference of '{ptr_name}' (checked against NULL)",
                        func.name,
                    )
                )
        return findings

    def _check_uva(self, func: Function) -> List[ToolFinding]:
        """Linear-order (block-list order) use-before-def — crude like the
        real tool's value-flow flags; produces false positives when the
        initializing path is not textually first."""
        findings = []
        defined: Set[str] = set()
        declared: Dict[str, DeclLocal] = {}
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, DeclLocal):
                    declared[inst.var.name] = inst
                elif isinstance(inst, Move):
                    if isinstance(inst.src, Var) and inst.src.name in declared and inst.src.name not in defined:
                        findings.append(self._uva_finding(inst, inst.src.name, func))
                        defined.add(inst.src.name)
                    defined.add(inst.dst.name)
                elif isinstance(inst, BinOp):
                    for operand in (inst.lhs, inst.rhs):
                        if isinstance(operand, Var) and operand.name in declared and operand.name not in defined:
                            findings.append(self._uva_finding(inst, operand.name, func))
                            defined.add(operand.name)
                    defined.add(inst.dst.name)
                elif isinstance(inst, Call):
                    for arg in inst.args:
                        if isinstance(arg, Var) and arg.name in declared and arg.name not in defined:
                            findings.append(self._uva_finding(inst, arg.name, func))
                            defined.add(arg.name)
                    if inst.dst is not None:
                        defined.add(inst.dst.name)
                else:
                    dst = inst.defined_var()
                    if dst is not None:
                        defined.add(dst.name)
        return findings

    def _uva_finding(self, inst, name: str, func: Function) -> ToolFinding:
        short = name.split(".")[-1]
        return ToolFinding(
            BugKind.UVA,
            inst.loc.filename,
            inst.loc.line,
            f"variable '{short}' may be used uninitialized",
            func.name,
        )

    def _check_ml(self, func: Function) -> List[ToolFinding]:
        # Direct-copy closure per name: Cppcheck's value flow follows plain
        # assignments (but not memory), so MOVE chains share one fate.
        copies: Dict[str, Set[str]] = {}
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, Move) and isinstance(inst.src, Var):
                    copies.setdefault(inst.src.name, set()).add(inst.dst.name)
        findings = []
        for block in func.blocks:
            for inst in block.instructions:
                if not isinstance(inst, Malloc):
                    continue
                names: Set[str] = {inst.dst.name}
                work = [inst.dst.name]
                while work:
                    for succ in copies.get(work.pop(), ()):
                        if succ not in names:
                            names.add(succ)
                            work.append(succ)
                freed = escaped = False
                for other_block in func.blocks:
                    for other in other_block.instructions:
                        if isinstance(other, Free) and other.ptr.name in names:
                            freed = True
                        elif isinstance(other, Store) and isinstance(other.src, Var) and other.src.name in names:
                            escaped = True
                        elif isinstance(other, Call):
                            if any(isinstance(a, Var) and a.name in names for a in other.args):
                                escaped = True
                        elif isinstance(other, Move) and isinstance(other.src, Var) and other.src.name in names and other.dst.is_global:
                            escaped = True
                    term = other_block.terminator
                    if isinstance(term, Ret) and isinstance(term.value, Var) and term.value.name in names:
                        escaped = True
                if not freed and not escaped:
                    findings.append(
                        ToolFinding(
                            BugKind.ML,
                            inst.loc.filename,
                            inst.loc.line,
                            "allocated memory is never freed in this function",
                            func.name,
                        )
                    )
        return findings
