"""Information collector — phase P1 of the PATA architecture (Fig. 10).

Scans every compiled module and records per-function facts in a database
used by the later phases:

* definition position & signature (for cross-file call resolution);
* interface registrations (→ analysis entry points, Fig. 1);
* whether a function may return a negative constant or zero on some path
  (precomputed for the underflow / div-zero checkers of §5.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..cfg import CallGraph, mark_interface_functions
from ..ir import Const, Function, Move, Program, Ret, Var


@dataclass
class FunctionInfo:
    name: str
    filename: str
    line: int
    is_static: bool
    is_interface: bool
    num_params: int
    num_blocks: int
    num_instructions: int
    may_return_negative: bool = False
    may_return_zero: bool = False


class InformationCollector:
    """Builds the function database over a whole program.

    ``cached_facts`` (optional, from the incremental cache's layer a)
    maps function names to previously computed ``(may_return_negative,
    may_return_zero)`` pairs.  Seeding is sound — cached facts were
    computed over byte-identical function content (the transitive key
    certifies that), and the closure fixpoint below only ever flips
    facts False→True — so the seeded fixpoint converges to exactly the
    unseeded result, just in fewer rounds.
    """

    def __init__(self, program: Program, cached_facts: Optional[Dict[str, tuple]] = None):
        self.program = program
        mark_interface_functions(program)
        self.callgraph = CallGraph(program)
        self.functions: Dict[str, FunctionInfo] = {}
        self._collect()
        if cached_facts:
            for name, (neg, zero) in cached_facts.items():
                info = self.functions.get(name)
                if info is not None:
                    info.may_return_negative = info.may_return_negative or bool(neg)
                    info.may_return_zero = info.may_return_zero or bool(zero)
        self._close_return_facts()

    def _collect(self) -> None:
        for func in self.program.functions():
            neg, zero = _direct_return_constants(func)
            self.functions[func.name] = FunctionInfo(
                name=func.name,
                filename=func.filename,
                line=func.line,
                is_static=func.is_static,
                is_interface=func.is_interface,
                num_params=len(func.params),
                num_blocks=len(func.blocks),
                num_instructions=func.instruction_count(),
                may_return_negative=neg,
                may_return_zero=zero,
            )

    def _close_return_facts(self, max_rounds: Optional[int] = None) -> None:
        """Propagate may-return facts through direct tail-ish returns
        (``return helper(...)``) to a fixpoint.

        Each round moves facts one call level, so a fixed round count
        would silently under-approximate through chains deeper than it
        (the old ``rounds=3`` missed ``may_return_negative`` through a
        depth-5 chain).  Facts only flip False→True, so the fixpoint is
        reached after at most ``len(functions)`` productive rounds; the
        cap is a generous backstop, never the convergence mechanism.
        """
        if max_rounds is None:
            max_rounds = max(64, 2 * len(self.functions))
        for _ in range(max_rounds):
            changed = False
            for func in self.program.functions():
                info = self.functions[func.name]
                for block in func.blocks:
                    term = block.terminator
                    if not isinstance(term, Ret) or not isinstance(term.value, Var):
                        continue
                    # return of a call result: find the defining call in block
                    for inst in reversed(block.instructions):
                        if getattr(inst, "dst", None) == term.value and hasattr(inst, "callee"):
                            callee = self.functions.get(inst.callee)
                            if callee is None:
                                break
                            if callee.may_return_negative and not info.may_return_negative:
                                info.may_return_negative = True
                                changed = True
                            if callee.may_return_zero and not info.may_return_zero:
                                info.may_return_zero = True
                                changed = True
                            break
            if not changed:
                break

    # -- indirect-call resolution (§7 extension) -------------------------------

    def indirect_targets(self, struct_name: Optional[str], field: str) -> List[str]:
        """Candidate targets of an indirect call through ``field`` of
        ``struct_name`` — a type-based resolution in the spirit of
        multi-layer type analysis: functions registered to exactly that
        (struct, field) slot, falling back to same-field registrations
        when the struct type is unknown."""
        exact: List[str] = []
        by_field: List[str] = []
        for reg in self.program.registrations():
            if reg.field != field:
                continue
            by_field.append(reg.function)
            if struct_name is not None and reg.struct_type is not None and reg.struct_type.name == struct_name:
                exact.append(reg.function)
        chosen = exact if exact else (by_field if struct_name is None else exact)
        # Preserve registration order, drop duplicates.
        seen = set()
        out = []
        for name in chosen:
            if name not in seen:
                seen.add(name)
                out.append(name)
        return out

    # -- queries ------------------------------------------------------------

    def shared_heap_sites(self) -> frozenset:
        """Uids of malloc instructions whose objects escape their
        allocating function (per the Saber-style VFG escape analysis) —
        the heap objects the race detector treats as *shared*.  Computed
        lazily and cached: only the race checker asks, and the VFG walk
        is not free."""
        cached = getattr(self, "_shared_heap_sites", None)
        if cached is None:
            from ..vfg import escaping_malloc_sites

            cached = escaping_malloc_sites(self.program)
            self._shared_heap_sites = cached
        return cached

    def entry_functions(self) -> List[Function]:
        """PATA's analysis roots (AnalyzeCode, Fig. 6 line 1)."""
        return self.callgraph.entry_functions()

    def lookup(self, name: str) -> Optional[FunctionInfo]:
        return self.functions.get(name)

    def is_defined(self, name: str) -> bool:
        return name in self.functions

    def may_return_negative(self, name: str) -> bool:
        info = self.functions.get(name)
        return bool(info and info.may_return_negative)

    def may_return_zero(self, name: str) -> bool:
        info = self.functions.get(name)
        return bool(info and info.may_return_zero)

    def database_size(self) -> int:
        return len(self.functions)


def _direct_return_constants(func: Function) -> tuple:
    """(may_return_negative, may_return_zero) from Ret of constants and
    constant moves flowing straight into the returned variable."""
    neg = zero = False
    const_defs: Dict[str, int] = {}
    for block in func.blocks:
        for inst in block.instructions:
            if isinstance(inst, Move) and isinstance(inst.src, Const):
                const_defs[inst.dst.name] = inst.src.value
        term = block.terminator
        if isinstance(term, Ret) and term.value is not None:
            value = None
            if isinstance(term.value, Const):
                value = term.value.value
            elif isinstance(term.value, Var):
                value = const_defs.get(term.value.name)
            if value is not None:
                neg = neg or value < 0
                zero = zero or value == 0
    return neg, zero
