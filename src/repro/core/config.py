"""Analysis configuration and budgets.

PATA explores control-flow paths exhaustively in principle; in practice
(P2 of §4) it bounds loops/recursion (unrolled once) and merges callee
exit paths with identical externally visible effects.  The knobs below
control those budgets; the defaults are tuned so the bundled corpora
analyze in seconds while exercising every mechanism.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

#: the precision-tier ladder, in rung order
_ALIAS_TIERS = {"off": 0, "steens": 1, "flow": 2}


@dataclass
class AnalysisConfig:
    #: track alias relationships (False reproduces PATA-NA, Table 6)
    alias_aware: bool = True
    #: run stage-2 path validation (False leaves all possible bugs)
    validate_paths: bool = True
    #: complete paths explored per entry function
    max_paths_per_entry: int = 2000
    #: instruction executions per entry function (hard stop)
    max_steps_per_entry: int = 400_000
    #: maximum inlined call depth
    max_call_depth: int = 16
    #: per-path revisits of one basic block (2 = paper's unroll-once)
    max_block_visits: int = 2
    #: merge callee exit paths with identical externally visible effects
    #: (§4 P2 "combines the information of its code paths")
    merge_callee_exits: bool = True
    #: distinct callee exit states continued per call site (return merging)
    max_callee_exits_per_call: int = 48
    #: functions may appear at most this many times on the call stack
    #: (2 = one recursive re-entry, the paper's unroll-once for recursion)
    max_recursion_occurrences: int = 1
    #: wall-clock guard per entry function, seconds (None = off)
    entry_time_limit: Optional[float] = None
    #: run the semantics-preserving IR cleanup passes (constant folding,
    #: jump threading, unreachable-block removal) before analysis
    optimize_ir: bool = False
    #: resolve function-pointer calls through interface registrations —
    #: the paper's §7 future work ("introduce existing function-pointer
    #: analysis"), off by default to match PATA as published
    resolve_function_pointers: bool = False
    #: candidate targets explored per indirect call site when resolving
    max_indirect_targets: int = 4
    #: alias precision-tier ladder: ``"off"`` (per-path graphs only),
    #: ``"steens"`` (the P1.7 whole-program Steensgaard pre-pass and its
    #: three sound consumers: the per-path singleton fast path, trace
    #: translation over partition cells, and shared-access sharpening of
    #: the relevance masks), or ``"flow"`` (additionally the P1.8
    #: flow-sensitive pass with strong updates: per-entry-closure skip
    #: sets, strong-update symbol resolution in trace translation, and
    #: taint-source sharpening).  Reports are byte-identical across all
    #: tiers; only speed changes.  Legacy values are normalized: ``True``
    #: / ``"on"`` mean ``"steens"``, ``False`` means ``"off"``.
    alias_tier: str = "flow"
    #: run the checker-relevance pre-analysis (P1.5) and its two sound
    #: pruning layers: skip entry functions whose transitive region holds
    #: no event for any enabled checker, and stop paths entering CFG
    #: regions from which no armed checker's sink is reachable.  Pruning
    #: is report-preserving — with the same config the report set is
    #: byte-identical either way (``--no-prune`` is the CLI escape hatch)
    prune: bool = True
    #: solver budgets (stage 2)
    solver_max_search_nodes: int = 20000
    #: worker processes for entry-function analysis (the paper's P2 runs
    #: one thread per entry, §4): 1 = in-process sequential, 0 = one per
    #: CPU (os.cpu_count()), N > 1 = exactly N processes
    workers: int = 1
    #: entries per dispatched work batch (0 = auto: size the batches so
    #: each worker pulls ~``parallel_dispatch_factor`` of them, which
    #: balances queue-round-trip amortization against work stealing).
    #: Batches are the streaming executor's unit of dispatch *and* of
    #: result pickling, so this also bounds peak result-message size
    parallel_batch_size: int = 0
    #: with auto batch sizing, the target number of batches each worker
    #: pulls over the run; higher = finer-grained stealing, more queue
    #: round trips
    parallel_dispatch_factor: int = 4
    #: multiprocessing start method for worker processes: None = fork
    #: where the platform has it (workers inherit the program zero-copy),
    #: else spawn (workers unpickle the program once at initialization);
    #: "spawn" forces the portable path — useful for differential testing
    parallel_start_method: Optional[str] = None
    #: border-source inference (P2.6): treat the parameters of interface
    #: functions no extern caller ever invokes as tainted — the firmware
    #: border-binary heuristic.  Off by default; only the ``xtaint``
    #: checker consults it, and with an empty border set (every interface
    #: function has a caller) enabling it preserves reports exactly.
    taint_borders: bool = False
    #: incremental-cache directory (None = caching off).  See
    #: :mod:`repro.incremental`; results are byte-identical with the
    #: cache on, off, or partially populated.
    cache_dir: Optional[str] = None
    #: "off" (ignore cache_dir), "ro" (read, never write — what worker
    #: processes use), or "rw" (read, and commit new summaries at the
    #: end of the run; the parent process is the single writer)
    cache_mode: str = "off"

    def __post_init__(self) -> None:
        # Tier back-compat: the knob was a bool through PR 7 ("on" on the
        # CLI).  Normalize once here so every consumer sees a tier string
        # and old configs/pickles keep meaning what they meant.
        tier = self.alias_tier
        if tier is True or tier == "on":
            tier = "steens"
        elif tier is False:
            tier = "off"
        if tier not in _ALIAS_TIERS:
            raise ValueError(
                f"alias_tier must be one of {sorted(_ALIAS_TIERS)} "
                f"(or legacy True/False/'on'), got {self.alias_tier!r}"
            )
        self.alias_tier = tier

    def alias_tier_level(self) -> int:
        """The tier as a comparable rung: 0 = off, 1 = steens, 2 = flow."""
        return _ALIAS_TIERS[self.alias_tier]

    def cache_active(self) -> bool:
        """Whether this run consults the incremental cache at all."""
        return self.cache_dir is not None and self.cache_mode in ("ro", "rw")

    def resolved_workers(self) -> int:
        """The effective worker count (``0`` expands to the CPU count)."""
        if self.workers == 0:
            return os.cpu_count() or 1
        return max(1, self.workers)

    def resolved_batch_size(self, entry_count: int, workers: int) -> int:
        """The effective entries-per-batch for a parallel run.

        ``0`` auto-sizes: enough batches that each worker pulls about
        ``parallel_dispatch_factor`` of them, so one slow batch steals at
        most ``1/factor`` of a worker's fair share of wall-clock, while a
        tiny entry list still dispatches one entry per batch (maximum
        stealing) rather than one fat shard per worker.
        """
        if self.parallel_batch_size > 0:
            return self.parallel_batch_size
        factor = max(1, self.parallel_dispatch_factor)
        return max(1, -(-entry_count // (max(1, workers) * factor)))

    def for_pata_na(self) -> "AnalysisConfig":
        """The ablation of Table 6: no alias relationships in typestate
        tracking or path validation."""
        clone = AnalysisConfig(**vars(self))
        clone.alias_aware = False
        return clone
