"""Bug filter — phase P3 (Fig. 10): deduplication + alias-aware path
validation (§3.3).

Repeated bugs (identical problematic-instruction pairs) are already
dropped on the fly by the engine; this stage translates each surviving
possible bug's recorded path into SMT-lite constraints (Table 3, one
symbol per alias set) and drops the bug when the conjunction is
definitely unsatisfiable.  UNKNOWN verdicts keep the bug — only a proven
contradiction may silence a finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..smt import SolveResult, Solver, translate_trace, translate_trace_pair
from ..typestate import PossibleBug
from .report import BugReport


@dataclass
class FilterStats:
    validated: int = 0
    dropped_false: int = 0
    constraints_aware: int = 0
    constraints_unaware: int = 0
    unknown_verdicts: int = 0


@dataclass
class FilterResult:
    reports: List[BugReport] = field(default_factory=list)
    stats: FilterStats = field(default_factory=FilterStats)


class BugFilter:
    """Stage-2 driver: translates each possible bug's path and keeps only satisfiable ones."""

    def __init__(
        self,
        validate_paths: bool = True,
        solver_max_search_nodes: int = 20000,
        alias_aware: bool = True,
        partition=None,
        flow_facts=None,
    ):
        self.validate_paths = validate_paths
        self.alias_aware = alias_aware
        #: P1.7 partition: lets the translators keep proven singletons
        #: node-free during trace replay (same constraints up to symbol
        #: renaming; see :class:`repro.smt.translate.PathTranslator`)
        self.partition = partition
        #: P1.8 facts: per-bug-entry skip sets — a strict superset of
        #: the partition singletons, resolved from the bug's entry
        #: closure (memoized; pair bugs resolve each trace's own entry)
        self.flow_facts = flow_facts
        self._skip_memo: dict = {}
        self.solver = Solver(max_search_nodes=solver_max_search_nodes)

    def _skip_for(self, entry_name: str):
        """The per-entry skip set for trace replay, or ``None`` to fall
        back to the partition's whole-program singletons (unknown entry
        names — defensive; every bug's entry is a program function)."""
        if self.flow_facts is None:
            return None
        if entry_name in self._skip_memo:
            return self._skip_memo[entry_name]
        skip = (
            self.flow_facts.skip_names_for_entry(entry_name)
            if entry_name in self.flow_facts.occurs
            else None
        )
        self._skip_memo[entry_name] = skip
        return skip

    def run(self, possible_bugs: List[PossibleBug]) -> FilterResult:
        result = FilterResult()
        for bug in possible_bugs:
            verdict, model = self._validate(bug, result.stats)
            if verdict:
                result.reports.append(BugReport.from_possible(bug, model))
            else:
                result.stats.dropped_false += 1
        return result

    def _validate(self, bug: PossibleBug, stats: FilterStats) -> Tuple[bool, Optional[dict]]:
        if not self.validate_paths or not bug.trace:
            return True, None
        stats.validated += 1
        if bug.second_trace:
            # Pair finding (race or cross-module taint matches): both
            # paths must be jointly feasible — a guard contradiction
            # across them discharges it.  The matcher encodes both
            # entries as "<a> vs <b>"; each trace replays under its own
            # entry's skip set.  A P2.6 pair additionally carries the
            # sink's out-of-range atom, interpreted on the second
            # (sink-side) trace — race pairs carry None here.
            entry_a, sep, entry_b = bug.entry_function.partition(" vs ")
            translation = translate_trace_pair(
                bug.trace, bug.second_trace, alias_aware=self.alias_aware,
                partition=self.partition,
                skip_names_a=self._skip_for(entry_a) if sep else None,
                skip_names_b=self._skip_for(entry_b) if sep else None,
                extra_requirement_b=bug.extra_requirement)
        else:
            translation = translate_trace(
                bug.trace, bug.extra_requirement, alias_aware=self.alias_aware,
                partition=self.partition,
                skip_names=self._skip_for(bug.entry_function))
        stats.constraints_aware += translation.aware_constraints
        stats.constraints_unaware += translation.unaware_constraints
        solution = self.solver.solve(translation.atoms)
        if solution.result is SolveResult.UNKNOWN:
            stats.unknown_verdicts += 1
        return solution.feasible, solution.model
